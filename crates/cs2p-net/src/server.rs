//! The Prediction Engine HTTP server (§6, server-side deployment).
//!
//! The paper's Node.js server answers one prediction POST per player per
//! 6-second epoch; at the ROADMAP's target scale that is thousands of
//! concurrent viewers, so the serving layer is shaped like a production
//! service rather than a demo:
//!
//! - **Sharded session store** ([`crate::store::SessionStore`]): per-viewer
//!   HMM filter state lives in N shards keyed by `hash(session_id)`, each
//!   behind its own lock, with TTL/LRU eviction under a capacity bound.
//!   Requests for different sessions proceed in parallel; requests for the
//!   same session stay serialized.
//! - **Bounded worker pool**: a fixed set of worker threads pulls
//!   ready-to-read connections from a bounded queue
//!   ([`crate::pool::BoundedQueue`]). When the queue is full the server
//!   answers `503` + `Retry-After` instead of queueing unboundedly, and
//!   every connection carries read/write timeouts.
//! - **Graceful drain**: `shutdown()` stops accepting (the blocking
//!   acceptor is woken by a loopback connect, not a sleep poll), lets the
//!   workers finish every request already read or readable, then joins all
//!   threads — bounded time, zero dropped in-flight requests.
//!
//! Connection readiness is discovered with non-blocking `peek` (std-only;
//! no epoll available), so one poller thread multiplexes idle keep-alive
//! connections while workers only ever touch connections with bytes
//! waiting. Telemetry flows through `cs2p-obs` under the `serve.*` names
//! (see OBSERVABILITY.md). The pre-PR thread-per-connection server is
//! preserved as [`crate::legacy`] for the `serve_throughput` benchmark.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionLevel, AdmissionSnapshot};
use crate::http::{
    read_request_buffered, write_response, write_response_buffered, IoScratch, Request, Response,
};
use crate::ops::OpsAdmission;
use crate::ops::{FaultRow, OpsQuality, OpsSnapshot, QualityRow};
use crate::persist::{
    self, PersistConfig, PersistedPending, PersistedSession, SessionPersist, WalBatch, WalRecord,
    WalStats,
};
use crate::pool::BoundedQueue;
use crate::protocol::{
    parse_features_query, BatchEntryResult, BatchPredictRequest, BatchPredictResponse, Degradation,
    Health, PredictRequest, PredictResponse, SessionLog, MAX_BATCH_ENTRIES,
};
use crate::quality::{ape, QualityConfig, QualityMonitor};
use crate::recorder::SessionRecorder;
use crate::store::{SessionStore, ShardGuard};
use crate::transport::{DeadlineReader, IoHalf, TransportWrapper};
use cs2p_core::engine::{ClusterModel, EngineConfig, TrainSummary};
use cs2p_core::{
    ClientModel, Dataset, FeatureVector, ModelRegistry, ModelVersion, PredictionEngine,
};
use cs2p_ml::hmm::{FilterState, HmmFilter};
use cs2p_obs::{Clock, MonotonicClock, TraceScope};
use parking_lot::Mutex;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Cap on the requested prediction horizon.
const MAX_HORIZON: usize = 32;
/// How long a worker spin-peeks for the next keep-alive request before
/// handing the connection back to the poller.
const LINGER: Duration = Duration::from_micros(300);
/// Poller wakeup granularity for idle connections (shutdown and new
/// connections are condvar-signalled and do not wait for this).
const POLL_INTERVAL: Duration = Duration::from_millis(1);
/// Requests a worker serves from one connection before re-queueing it,
/// so a chatty pipelining client cannot starve the queue.
const MAX_REQUESTS_PER_TURN: u32 = 32;
/// Cap on per-session recorded observations (a marathon session cannot
/// grow its training record unboundedly; later epochs are dropped).
const MAX_RECORDED_EPOCHS: usize = 1024;
/// Epoch length stamped on recorded sessions (the paper's 6-second
/// epoch; the wire protocol carries no timing, so this is nominal).
const RECORD_EPOCH_SECONDS: u32 = 6;

/// Online model-refresh knobs (see [`ServeConfig::refresh`]).
///
/// The server holds its engine in a versioned `cs2p_core::ModelRegistry`.
/// A refresh snapshots the completed-session window
/// ([`crate::recorder::SessionRecorder`]), retrains with `train_config`
/// (warm-starting every cluster from the live version), and publishes the
/// result as the next [`ModelVersion`] — a brief pointer swap. Sessions
/// already in flight stay pinned to the version they registered on, so
/// their HMM filter state never crosses models.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Training configuration used by every refresh.
    pub train_config: EngineConfig,
    /// Model versions kept fetchable for pinned readers (min 1).
    pub retain: usize,
    /// Background refresh period, measured on [`ServeConfig::clock`]
    /// (swap in a `ManualClock` for deterministic tests). `None` disables
    /// the background trigger; [`ServerHandle::refresh_models`] still
    /// works.
    pub interval: Option<Duration>,
    /// A refresh is skipped (no-op) until the recorder holds at least
    /// this many completed sessions.
    pub min_sessions: usize,
    /// Completed-session window size (oldest dropped beyond this).
    pub recorder_capacity: usize,
    /// Completed sessions with fewer observed epochs are not recorded.
    pub recorder_min_epochs: usize,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            train_config: EngineConfig::default(),
            retain: 4,
            interval: None,
            min_sessions: 20,
            recorder_capacity: 10_000,
            recorder_min_epochs: 2,
        }
    }
}

/// Tuning knobs for [`serve_with`]. `Default` is sized for tests and
/// small deployments; every limit is explicit so the load tests can
/// force eviction and backpressure deterministically.
#[derive(Clone)]
pub struct ServeConfig {
    /// Session-store shards (parallelism of session-state access).
    pub n_shards: usize,
    /// Worker threads handling requests.
    pub n_workers: usize,
    /// Bounded request-queue depth; beyond this the server answers 503.
    pub queue_depth: usize,
    /// Session capacity bound across all shards (LRU beyond this).
    pub max_sessions: usize,
    /// Evict sessions idle for more than this many store accesses
    /// (logical TTL — reproducible in tests; `None` disables).
    pub session_ttl_requests: Option<u64>,
    /// Concurrent connection cap; beyond this new connections get 503.
    pub max_connections: usize,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-response socket write timeout.
    pub write_timeout: Duration,
    /// Value of the `Retry-After` header on 503 responses.
    pub retry_after_seconds: u64,
    /// Slow-peer deadline: total time one request may take to arrive once
    /// its first byte has been read (distinct from the idle keep-alive
    /// wait, which never arms it, and from `read_timeout`, which a
    /// byte-dribbling peer never trips). A violator's connection is cut
    /// and `serve.fault.slow_peer_aborts` bumped. `None` disables.
    pub slow_peer_deadline: Option<Duration>,
    /// Time source for the slow-peer deadline — swap in a
    /// [`cs2p_obs::ManualClock`] for deterministic tests.
    pub clock: Arc<dyn Clock>,
    /// Per-connection transport hook (fault injection, middleboxes).
    /// `None` keeps the statically-dispatched `TcpStream` path.
    pub transport_wrapper: Option<Arc<dyn TransportWrapper>>,
    /// Online model-refresh configuration (registry retention, recorder
    /// bounds, background trigger).
    pub refresh: RefreshConfig,
    /// Online prediction-quality monitoring (APE sketches, drift alarm;
    /// see [`crate::quality`]). The alarm runs on [`ServeConfig::clock`].
    pub quality: QualityConfig,
    /// Overload degradation ladder (see [`crate::admission`]). The
    /// default is disabled — the pre-ladder blanket-503 contract — so
    /// turning the ladder on is an explicit operational decision
    /// ([`AdmissionConfig::watermarks`] for the enabled defaults).
    pub admission: AdmissionConfig,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("n_shards", &self.n_shards)
            .field("n_workers", &self.n_workers)
            .field("queue_depth", &self.queue_depth)
            .field("max_sessions", &self.max_sessions)
            .field("session_ttl_requests", &self.session_ttl_requests)
            .field("max_connections", &self.max_connections)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("retry_after_seconds", &self.retry_after_seconds)
            .field("slow_peer_deadline", &self.slow_peer_deadline)
            .field("transport_wrapper", &self.transport_wrapper.is_some())
            .field("refresh", &self.refresh)
            .field("quality", &self.quality)
            .field("admission", &self.admission)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        ServeConfig {
            n_shards: 8,
            n_workers: workers,
            queue_depth: 256,
            max_sessions: 100_000,
            session_ttl_requests: None,
            max_connections: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retry_after_seconds: 1,
            slow_peer_deadline: Some(Duration::from_secs(30)),
            clock: Arc::new(MonotonicClock::new()),
            transport_wrapper: None,
            refresh: RefreshConfig::default(),
            quality: QualityConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The 1-step-ahead prediction the server is waiting to score against
/// the measurement the player reports on its *next* `/predict`.
#[derive(Debug, Clone, Copy)]
struct PendingPrediction {
    /// Predicted next-epoch throughput, Mbps.
    value: f64,
    /// Whether it was the session's initial (cluster-median) prediction.
    initial: bool,
}

/// A prediction's quality outcome, carried out of the shard lock: the
/// scored `(was_initial, ape)` pair for the previous prediction, or a
/// mark that its measurement left APE undefined. The monitor is only
/// touched after every shard lock is dropped (see
/// [`AppState::score_deferred`]).
#[derive(Debug, Clone, Copy, Default)]
struct DeferredScore {
    scored: Option<(bool, f64)>,
    unscorable: bool,
}

/// Per-session server-side state. The session is *pinned*: it holds the
/// exact engine snapshot (and its version) it registered on, so a model
/// hot-swap never moves its HMM filter state onto a different model —
/// filter posteriors are only meaningful against the model that produced
/// them. The `Arc` keeps the snapshot alive even after the registry GCs
/// the version; eviction drops the pin naturally.
#[derive(Debug, Clone)]
struct SessionState {
    /// Version of `engine` (echoed in every response).
    version: ModelVersion,
    /// The engine snapshot this session is pinned to.
    engine: Arc<PredictionEngine>,
    /// Index into the pinned engine's model list, or `None` for global.
    model: Option<usize>,
    /// Whether registration found a cluster model (vs. the global
    /// fallback) — stamped on responses and quality sketches.
    cluster_hit: bool,
    filter: FilterState,
    /// Registration features, kept for the completed-session record.
    features: FeatureVector,
    /// Measured throughputs reported so far (capped at
    /// [`MAX_RECORDED_EPOCHS`]); drained into the recorder on completion.
    observed: Vec<f64>,
    /// The last 1-step prediction served, awaiting the next measurement
    /// (the online accuracy loop — see [`crate::quality`]).
    pending: Option<PendingPrediction>,
}

/// The HTTP endpoints over a prediction engine — the part of the server
/// that is pure request → response. Shared with [`crate::legacy`] so the
/// benchmark compares serving architectures, not handler code.
pub(crate) struct AppState {
    registry: ModelRegistry,
    sessions: SessionStore<SessionState>,
    recorder: Arc<SessionRecorder>,
    logs: Mutex<Vec<SessionLog>>,
    predictions_served: AtomicU64,
    /// Online accuracy monitor (APE sketches, drift alarm). `Arc` so
    /// the store's eviction sink can count evicted-with-pending
    /// predictions as unmatched.
    monitor: Arc<QualityMonitor>,
    /// Sessions the recorder must hold before a drift-triggered refresh
    /// does anything (mirrors [`RefreshConfig::min_sessions`]).
    refresh_min_sessions: usize,
    /// Back-reference to the serving layer for `/ops` connection/queue
    /// gauges. `Weak` breaks the `Shared → AppState` cycle; unset under
    /// the legacy server (its gauges read as zero).
    server: OnceLock<Weak<Shared>>,
    /// Durability layer (WAL + snapshots + registry bundles); `None` for
    /// an in-memory server (the default, and always for [`crate::legacy`]).
    persist: Option<Arc<SessionPersist>>,
    /// The overload degradation ladder (see [`crate::admission`]).
    /// `Arc` so the store's eviction sink can retire the evicted
    /// session's fallback measurement history.
    admission: Arc<AdmissionController>,
}

impl AppState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: PredictionEngine,
        refresh: &RefreshConfig,
        quality: QualityConfig,
        admission: AdmissionConfig,
        clock: Arc<dyn Clock>,
        n_shards: usize,
        max_sessions: usize,
        ttl: Option<u64>,
    ) -> Self {
        let registry = ModelRegistry::new(engine, refresh.train_config.clone(), refresh.retain);
        let sessions = SessionStore::new(n_shards, max_sessions, ttl);
        Self::assemble(registry, sessions, refresh, quality, admission, clock, None)
    }

    /// Builds the app state around an already-constructed registry and
    /// session store — the seam [`ServerHandle::open_or_recover`] uses to
    /// start from recovered state instead of empty state.
    fn assemble(
        mut registry: ModelRegistry,
        mut sessions: SessionStore<SessionState>,
        refresh: &RefreshConfig,
        quality: QualityConfig,
        admission: AdmissionConfig,
        clock: Arc<dyn Clock>,
        persist: Option<Arc<SessionPersist>>,
    ) -> Self {
        let (_, engine) = registry.current();
        let recorder = Arc::new(SessionRecorder::new(
            engine.schema().clone(),
            RECORD_EPOCH_SECONDS,
            refresh.recorder_capacity,
            refresh.recorder_min_epochs,
        ));
        let monitor = Arc::new(QualityMonitor::new(quality, Arc::clone(&clock)));
        let admission = Arc::new(AdmissionController::new(admission, clock));
        if let Some(p) = &persist {
            registry.set_persistence(p.registry_sink());
        }
        let sink = Arc::clone(&recorder);
        let sink_monitor = Arc::clone(&monitor);
        let sink_persist = persist.clone();
        let sink_admission = Arc::clone(&admission);
        // An evicted viewer is a completed session: drain its record. A
        // prediction still awaiting its measurement will never be
        // scored — count it so coverage stays honest.
        sessions.set_eviction_sink(Box::new(move |id, state: SessionState| {
            if state.pending.is_some() {
                sink_monitor.note_unmatched();
            }
            // The sink runs under the owning shard's lock, so this Remove
            // lands in the WAL ordered with the mutation that evicted it.
            if let Some(p) = &sink_persist {
                p.log(&WalRecord::Remove { id });
            }
            // The session is gone; its fallback measurement history is
            // dead weight in the side table.
            sink_admission.fallback_tracker().remove(id);
            sink.record(state.features, state.observed);
        }));
        AppState {
            registry,
            sessions,
            recorder,
            logs: Mutex::new(Vec::new()),
            predictions_served: AtomicU64::new(0),
            monitor,
            refresh_min_sessions: refresh.min_sessions,
            server: OnceLock::new(),
            persist,
            admission,
        }
    }

    /// The session's durable image (see [`PersistedSession`]).
    fn persisted_of(state: &SessionState) -> PersistedSession {
        PersistedSession {
            version: state.version.0,
            model: state.model,
            cluster_hit: state.cluster_hit,
            filter: state.filter.clone(),
            features: state.features.0.clone(),
            observed: state.observed.clone(),
            pending: state.pending.map(|p| PersistedPending {
                value: p.value,
                initial: p.initial,
            }),
        }
    }

    pub(crate) fn persist(&self) -> Option<&Arc<SessionPersist>> {
        self.persist.as_ref()
    }

    /// Runs the snapshot compaction if the cadence is due. Must be called
    /// outside every shard lock — the snapshot takes each (non-reentrant)
    /// shard lock itself.
    fn maybe_compact(&self) {
        if let Some(p) = &self.persist {
            if p.should_compact() {
                self.compact_now();
            }
        }
    }

    /// Rotates the WAL and writes a store snapshot now (recovery epilogue
    /// and ops hook). No-op on an in-memory server or when another
    /// compaction is in flight. Must run outside every shard lock.
    pub(crate) fn compact_now(&self) {
        let Some(p) = &self.persist else {
            return;
        };
        let result = p.compact_with(|| {
            let (tick, entries) = self.sessions.snapshot();
            let entries = entries
                .into_iter()
                .map(|(id, last_touch, state)| (id, last_touch, Self::persisted_of(&state)))
                .collect();
            (tick, entries)
        });
        if let Err(e) = result {
            cs2p_obs::event(
                cs2p_obs::Level::Warn,
                "serve.persist.compact_failed",
                vec![("error", e.to_string().into())],
            );
        }
    }

    /// Installs the back-reference to the serving layer (called once by
    /// [`serve_with`] after the `Shared` is built).
    pub(crate) fn install_server(&self, server: Weak<Shared>) {
        let _ = self.server.set(server);
    }

    pub(crate) fn monitor(&self) -> &QualityMonitor {
        &self.monitor
    }

    pub(crate) fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The `Retry-After` value for admission-layer 503s, read through
    /// the weak serving-layer back-reference (1 s under the legacy
    /// server, which never installs it).
    fn retry_after_seconds(&self) -> u64 {
        self.server
            .get()
            .and_then(Weak::upgrade)
            .map(|s| s.config.retry_after_seconds)
            .unwrap_or(1)
    }

    pub(crate) fn predictions_served(&self) -> u64 {
        self.predictions_served.load(Ordering::Relaxed)
    }

    pub(crate) fn logs(&self) -> Vec<SessionLog> {
        self.logs.lock().clone()
    }

    pub(crate) fn sessions_live(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn sessions_evicted(&self) -> u64 {
        self.sessions.evicted()
    }

    pub(crate) fn session_capacity(&self) -> usize {
        self.sessions.capacity()
    }

    pub(crate) fn force_evict(&self, session_id: u64) -> bool {
        self.sessions.force_evict(session_id)
    }

    pub(crate) fn model_version(&self) -> ModelVersion {
        self.registry.current_version()
    }

    pub(crate) fn recorded_sessions(&self) -> usize {
        self.recorder.len()
    }

    pub(crate) fn model_versions(&self) -> Vec<ModelVersion> {
        self.registry.versions()
    }

    pub(crate) fn model_snapshot(&self) -> (ModelVersion, Arc<PredictionEngine>) {
        self.registry.current()
    }

    /// Retrains from the recorder's completed-session window and swaps
    /// the result in. `None` (current version untouched) when the window
    /// holds fewer than `min_sessions` sessions or cannot support a model.
    pub(crate) fn refresh_models(
        &self,
        min_sessions: usize,
    ) -> Option<(ModelVersion, TrainSummary)> {
        if self.recorder.len() < min_sessions {
            return None;
        }
        let dataset = self.recorder.dataset()?;
        self.refresh_models_with(&dataset)
    }

    /// Retrains from an explicit dataset (operator push / tests) and
    /// swaps the result in. In-flight sessions keep their pinned version;
    /// sessions registering after the swap get the new one.
    pub(crate) fn refresh_models_with(
        &self,
        dataset: &Dataset,
    ) -> Option<(ModelVersion, TrainSummary)> {
        let start = Instant::now();
        let out = self.registry.retrain(dataset);
        if let Some((version, summary)) = &out {
            let pinned = self.sessions.count_values(|s| s.version != *version);
            if cs2p_obs::enabled() {
                cs2p_obs::counter_add("serve.model.swaps", 1);
                cs2p_obs::gauge_set("serve.model.version", version.0 as f64);
                cs2p_obs::gauge_set("serve.model.pinned_sessions", pinned as f64);
                cs2p_obs::observe("serve.model.refresh_us", start.elapsed().as_micros() as f64);
                cs2p_obs::event(
                    cs2p_obs::Level::Info,
                    "serve.model.swapped",
                    vec![
                        ("version", version.0.into()),
                        ("pinned_sessions", pinned.into()),
                        ("n_models", summary.n_models.into()),
                        ("warm_started", summary.warm_started.into()),
                        ("em_iterations", summary.em_iterations.into()),
                    ],
                );
            }
        }
        out
    }

    fn model_of(engine: &PredictionEngine, model: Option<usize>) -> &ClusterModel {
        match model {
            Some(i) => &engine.models()[i],
            None => engine.global_model(),
        }
    }

    /// Fires an alarm-triggered model refresh, at most one at a time.
    /// Called outside every shard lock (training is slow). A refresh
    /// already in flight, or too few recorded sessions, makes this a
    /// no-op — the alarm event itself has already been emitted.
    fn refresh_on_drift(&self) {
        if !self.monitor.begin_refresh() {
            return;
        }
        let _ = self.refresh_models(self.refresh_min_sessions);
        self.monitor.end_refresh();
    }

    /// Assembles the `/ops` snapshot (also [`ServerHandle::metrics_snapshot`]).
    pub(crate) fn ops_snapshot(&self) -> OpsSnapshot {
        // Serving-layer gauges come through the weak back-reference;
        // the legacy server never installs it, so they read zero there.
        let (accepted, rejected, live_connections, queue_depth) = self
            .server
            .get()
            .and_then(Weak::upgrade)
            .map(|s| {
                (
                    s.accepted.load(Ordering::Relaxed),
                    s.rejected.load(Ordering::Relaxed),
                    s.live_conns.load(Ordering::Relaxed) as u64,
                    s.queue.len() as u64,
                )
            })
            .unwrap_or((0, 0, 0, 0));
        let (windowed_samples, windowed_median_ape) = self.monitor.windowed();
        // Fault counters live on the global registry (they are bumped
        // on I/O paths with no AppState in scope); empty when disabled.
        let faults = if cs2p_obs::enabled() {
            cs2p_obs::Registry::global()
                .snapshot()
                .counters
                .into_iter()
                .filter(|(name, _)| name.starts_with("serve.fault."))
                .map(|(name, value)| FaultRow { name, value })
                .collect()
        } else {
            Vec::new()
        };
        let (_, engine) = self.registry.current();
        let admission = self.admission.snapshot();
        let store_pressure = self.sessions.pressure();
        OpsSnapshot {
            status: "ok".into(),
            model_version: self.registry.current_version().0,
            n_models: engine.models().len() as u64,
            sessions_live: self.sessions.len() as u64,
            sessions_evicted: self.sessions.evicted(),
            predictions_served: self.predictions_served.load(Ordering::Relaxed),
            logs: self.logs.lock().len() as u64,
            recorded_sessions: self.recorder.len() as u64,
            accepted,
            rejected,
            live_connections,
            queue_depth,
            request_latency_us: self.monitor.latency_snapshot(),
            quality: OpsQuality {
                matched: self.monitor.matched(),
                unmatched: self.monitor.unmatched(),
                drift_alarms: self.monitor.alarms(),
                windowed_samples: windowed_samples as u64,
                windowed_median_ape,
                ape: self
                    .monitor
                    .ape_snapshots()
                    .into_iter()
                    .map(|(key, snap)| QualityRow::from_snapshot(key, snap))
                    .collect(),
            },
            admission: OpsAdmission {
                level: admission.level.as_str().into(),
                pressure: self.admission.pressure(),
                transitions: admission.transitions,
                served_full: admission.served_full,
                served_degraded: admission.served_degraded,
                served_fallback: admission.served_fallback,
                shed: admission.shed,
                fallback_misses: admission.fallback_misses,
                store_occupancy: store_pressure.occupancy,
                store_eviction_rate: store_pressure.eviction_rate,
            },
            faults,
        }
    }

    pub(crate) fn handle(&self, req: &Request) -> Response {
        let _span = cs2p_obs::span("net.server.request");
        let resp = self.route(req);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("net.server.requests", 1);
            cs2p_obs::counter_add("net.server.bytes_in", req.body.len() as u64);
            cs2p_obs::counter_add("net.server.bytes_out", resp.body.len() as u64);
            if resp.status >= 400 {
                cs2p_obs::counter_add("net.server.errors", 1);
            }
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (
            req.method.as_str(),
            req.path.split('?').next().unwrap_or(""),
        ) {
            ("POST", "/predict") => self.handle_predict(req),
            ("POST", "/predict_batch") => self.handle_predict_batch(req),
            ("GET", "/model") => self.handle_model(req),
            ("POST", "/log") => self.handle_log(req),
            ("GET", "/logs") => {
                let logs = self.logs.lock();
                match serde_json::to_vec(&*logs) {
                    Ok(body) => Response::json(body),
                    Err(_) => Response::error(500, "serialization failed"),
                }
            }
            ("GET", "/stats") => {
                let stats = crate::protocol::LogStats::from_logs(&self.logs.lock());
                match serde_json::to_vec(&stats) {
                    Ok(body) => Response::json(body),
                    Err(_) => Response::error(500, "serialization failed"),
                }
            }
            ("GET", "/ops") => match serde_json::to_vec(&self.ops_snapshot()) {
                Ok(body) => Response::json(body),
                Err(_) => Response::error(500, "serialization failed"),
            },
            ("GET", "/ops/metrics") => {
                let text = self.ops_snapshot().to_prometheus();
                let mut resp = Response::new(200, bytes::Bytes::from(text.into_bytes()));
                resp.headers
                    .push(("content-type".into(), "text/plain; version=0.0.4".into()));
                resp
            }
            ("GET", "/healthz") => {
                let (_, engine) = self.registry.current();
                let health = Health {
                    status: "ok".into(),
                    n_models: engine.models().len(),
                    n_sessions: self.sessions.len(),
                    predictions_served: self.predictions_served.load(Ordering::Relaxed),
                    n_logs: self.logs.lock().len(),
                };
                Response::json(serde_json::to_vec(&health).unwrap())
            }
            ("POST" | "GET", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    /// Lock-free validation shared by `/predict` and `/predict_batch`:
    /// entries failing here never touch the session store.
    fn validate_predict(preq: &PredictRequest) -> Result<(), (u16, &'static str)> {
        if preq.horizon == 0 || preq.horizon > MAX_HORIZON {
            return Err((400, "horizon out of range"));
        }
        if let Some(w) = preq.measured_mbps {
            if !w.is_finite() || w < 0.0 {
                return Err((400, "measured throughput must be finite and nonnegative"));
            }
        }
        Ok(())
    }

    /// The per-entry prediction core, run under the owning shard's lock.
    /// Shared verbatim between the singleton and batched endpoints so a
    /// batch is bit-identical to its sequential expansion. Returns the
    /// response plus the deferred quality outcome — APE scoring happens
    /// *after* the shard lock drops, in both endpoints.
    /// Ensures a live session exists for `preq`, (re-)registering it from
    /// the request's features when needed. Returns whether a registration
    /// happened. Shared by the Full and Degraded prediction paths — both
    /// admit new sessions; only what they serve afterwards differs.
    fn ensure_session(
        &self,
        shard: &mut ShardGuard<'_, SessionState>,
        preq: &PredictRequest,
    ) -> Result<bool, (u16, &'static str)> {
        if shard.get_mut(preq.session_id).is_some() {
            return Ok(false);
        }
        // Never seen (or TTL/LRU-evicted): (re-)initialize from the
        // request's features, or tell the client to re-register. New
        // sessions pin the registry's current snapshot; the version
        // is fixed for the session's whole lifetime.
        let Some(features) = &preq.features else {
            return Err((404, "unknown session: send features to (re)register"));
        };
        let (version, engine) = self.registry.current();
        if features.len() != engine.schema().len() {
            return Err((400, "feature width mismatch"));
        }
        let fv = FeatureVector(features.clone());
        let lookup = engine.lookup_detailed(&fv);
        let model_idx = lookup.model_index;
        let cluster_hit = lookup.provenance.is_cluster_hit();
        let filter = lookup.model.hmm.filter().state();
        shard.insert(
            preq.session_id,
            SessionState {
                version,
                engine,
                model: model_idx,
                cluster_hit,
                filter,
                features: fv,
                observed: Vec::new(),
                pending: None,
            },
        );
        Ok(true)
    }

    fn predict_locked(
        &self,
        shard: &mut ShardGuard<'_, SessionState>,
        preq: &PredictRequest,
        wal: &mut WalBatch,
    ) -> Result<(PredictResponse, DeferredScore), (u16, &'static str)> {
        let registered = self.ensure_session(shard, preq)?;
        let tick = shard.now();
        let state = shard
            .get_mut(preq.session_id)
            .expect("session just ensured");

        // Resolve against the session's pinned snapshot, never the
        // registry's current one: the filter state is only meaningful
        // against the model that produced it.
        let engine = Arc::clone(&state.engine);
        let model = Self::model_of(&engine, state.model);
        let mut filter = HmmFilter::from_state(&model.hmm, state.filter.clone());
        // The measurement this request carries is the ground truth for
        // the 1-step prediction served last time: score it (outside the
        // shard lock). An actual of zero leaves APE undefined.
        let mut scored: Option<(bool, f64)> = None;
        let mut unscorable = false;
        if let Some(w) = preq.measured_mbps {
            if let Some(p) = state.pending.take() {
                match ape(p.value, w) {
                    Some(e) => scored = Some((p.initial, e)),
                    None => unscorable = true,
                }
            }
            filter.observe(w);
            if state.observed.len() < MAX_RECORDED_EPOCHS {
                state.observed.push(w);
            }
        }
        let initial = filter.epoch() == 0;
        let predictions_mbps: Vec<f64> = (1..=preq.horizon)
            .map(|k| {
                if initial && k == 1 {
                    model.initial_median
                } else {
                    filter.predict_ahead(k)
                }
            })
            .collect();
        state.filter = filter.state();
        state.pending = Some(PendingPrediction {
            value: predictions_mbps[0],
            initial,
        });
        let resp = PredictResponse {
            predictions_mbps,
            initial,
            cluster_sessions: model.n_sessions,
            cluster_hit: state.cluster_hit,
            model_version: state.version.0,
            degradation: None,
        };
        // Stage the mutation while the shard lock is still held, so the
        // WAL order agrees with this shard's mutation order; the caller
        // lands the whole staged group (one record here for `/predict`,
        // a shard group for `/predict_batch`) in a single WAL append
        // before the shard lock drops. Registrations carry the full
        // post-request state (one record covers register + first
        // measurement); updates carry absolute values so replaying a
        // record a fuzzy snapshot already includes is a no-op.
        if let Some(p) = &self.persist {
            let record = if registered {
                WalRecord::Register {
                    id: preq.session_id,
                    tick,
                    session: Self::persisted_of(state),
                }
            } else {
                WalRecord::Update {
                    id: preq.session_id,
                    tick,
                    measured: preq.measured_mbps,
                    observed_len: state.observed.len() as u64,
                    filter: state.filter.clone(),
                    pending: state.pending.map(|pp| PersistedPending {
                        value: pp.value,
                        initial: pp.initial,
                    }),
                }
            };
            p.stage(&record, wal);
        }
        Ok((resp, DeferredScore { scored, unscorable }))
    }

    /// The Degraded-level prediction core: registration still works (the
    /// cluster lookup is cheap and keeps re-registering clients alive),
    /// but the answer is the pinned model's cluster-prior median for
    /// every horizon step — no per-session filter read or update, no
    /// pending prediction, no WAL `Update`, no APE scoring. The carried
    /// measurement only feeds the fallback side table (in the caller).
    fn predict_degraded_locked(
        &self,
        shard: &mut ShardGuard<'_, SessionState>,
        preq: &PredictRequest,
        wal: &mut WalBatch,
    ) -> Result<(PredictResponse, DeferredScore), (u16, &'static str)> {
        let registered = self.ensure_session(shard, preq)?;
        let tick = shard.now();
        let state = shard
            .get_mut(preq.session_id)
            .expect("session just ensured");
        let engine = Arc::clone(&state.engine);
        let model = Self::model_of(&engine, state.model);
        let resp = PredictResponse {
            predictions_mbps: vec![model.initial_median; preq.horizon],
            initial: state.filter.epoch == 0,
            cluster_sessions: model.n_sessions,
            cluster_hit: state.cluster_hit,
            model_version: state.version.0,
            degradation: Some(Degradation::Degraded),
        };
        // Only a registration mutated anything worth persisting.
        if registered {
            if let Some(p) = &self.persist {
                p.stage(
                    &WalRecord::Register {
                        id: preq.session_id,
                        tick,
                        session: Self::persisted_of(state),
                    },
                    wal,
                );
            }
        }
        Ok((resp, DeferredScore::default()))
    }

    /// The Fallback-level prediction: answered purely from the session's
    /// own recent measurements via the admission side table — the paper's
    /// harmonic-mean baseline — with no model, registry, or shard-store
    /// access at all. The request's own measurement is recorded first
    /// (the baseline's observe-then-predict order); a session with no
    /// history yet cannot be answered and is shed.
    fn predict_fallback(&self, preq: &PredictRequest) -> Result<PredictResponse, Response> {
        let tracker = self.admission.fallback_tracker();
        if let Some(w) = preq.measured_mbps {
            tracker.record(preq.session_id, w);
        }
        let Some(v) = tracker.predict(preq.session_id) else {
            self.admission.note_fallback_miss();
            return Err(Response::service_unavailable(self.retry_after_seconds()));
        };
        Ok(PredictResponse {
            predictions_mbps: vec![v; preq.horizon],
            initial: false,
            cluster_sessions: 0,
            cluster_hit: false,
            model_version: 0,
            degradation: Some(Degradation::Fallback),
        })
    }

    /// Books one entry's deferred quality outcome: APE into the monitor's
    /// sketches (possibly tripping the drift alarm and its refresh), or
    /// an unmatched mark. Must run outside every shard lock.
    fn score_deferred(&self, resp: &PredictResponse, deferred: DeferredScore) {
        let mut alarm = false;
        if let Some((was_initial, e)) = deferred.scored {
            alarm = self
                .monitor
                .record_ape(resp.model_version, resp.cluster_hit, was_initial, e);
        } else if deferred.unscorable {
            self.monitor.note_unmatched();
        }
        if alarm && self.monitor.config().trigger_refresh {
            // Training is slow — it runs here, after the shard lock is
            // gone, on the worker that happened to trip the alarm.
            self.refresh_on_drift();
        }
    }

    fn handle_predict(&self, req: &Request) -> Response {
        let Ok(preq) = serde_json::from_slice::<PredictRequest>(&req.body) else {
            return Response::error(400, "malformed PredictRequest");
        };
        if let Err((status, msg)) = Self::validate_predict(&preq) {
            return Response::error(status, msg);
        }

        // The ladder level is read once per request, so one request never
        // mixes two levels. Only the prediction endpoints are gated —
        // /ops, /healthz, /model, and /log always answer.
        let level = self.admission.level();
        match level {
            AdmissionLevel::Shed => {
                self.admission.note_shed();
                return Response::service_unavailable(self.retry_after_seconds());
            }
            AdmissionLevel::Fallback => {
                let resp = match self.predict_fallback(&preq) {
                    Ok(resp) => resp,
                    Err(shed) => return shed,
                };
                self.admission.note_served(AdmissionLevel::Fallback);
                self.predictions_served.fetch_add(1, Ordering::Relaxed);
                if cs2p_obs::enabled() {
                    cs2p_obs::counter_add("predict.server.served", 1);
                }
                return Response::json(serde_json::to_vec(&resp).unwrap());
            }
            AdmissionLevel::Full | AdmissionLevel::Degraded => {}
        }

        let mut shard = self.sessions.lock(preq.session_id);
        let mut wal = WalBatch::default();
        let out = if level == AdmissionLevel::Degraded {
            self.predict_degraded_locked(&mut shard, &preq, &mut wal)
        } else {
            self.predict_locked(&mut shard, &preq, &mut wal)
        };
        if let Some(p) = &self.persist {
            p.log_staged(&mut wal);
        }
        drop(shard);
        let (resp, deferred) = match out {
            Ok(out) => out,
            Err((status, msg)) => return Response::error(status, msg),
        };
        self.score_deferred(&resp, deferred);
        // Every measurement an admitted request carries warms the
        // fallback side table, so a later brownout answers mid-stream
        // sessions immediately. Off with the ladder (no side-table cost
        // on the default path).
        if self.admission.enabled() {
            if let Some(w) = preq.measured_mbps {
                self.admission.fallback_tracker().record(preq.session_id, w);
            }
        }
        self.admission.note_served(level);

        self.predictions_served.fetch_add(1, Ordering::Relaxed);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("predict.server.served", 1);
            cs2p_obs::gauge_set("serve.sessions", self.sessions.len() as f64);
        }
        self.maybe_compact();
        Response::json(serde_json::to_vec(&resp).unwrap())
    }

    /// `POST /predict_batch`: many prediction entries in one frame.
    ///
    /// Entries are grouped by session-store shard and each shard lock is
    /// taken **once** per batch; within a group entries run in frame
    /// order, so same-session entries (which always share a shard) see
    /// exactly the sequential `/predict` semantics. Every entry gets its
    /// own status — an evicted session answers a per-entry 404 while the
    /// rest of the batch proceeds. Quality scoring is deferred until all
    /// shard locks are dropped and then runs in frame order, matching
    /// the sequential path's monitor-call order.
    fn handle_predict_batch(&self, req: &Request) -> Response {
        let Ok(breq) = serde_json::from_slice::<BatchPredictRequest>(&req.body) else {
            return Response::error(400, "malformed BatchPredictRequest");
        };
        let n = breq.entries.len();
        if n == 0 {
            return Response::error(400, "empty batch");
        }
        if n > MAX_BATCH_ENTRIES {
            return Response::error(400, "batch too large");
        }

        // One level per frame (read once), like the singleton endpoint.
        let level = self.admission.level();
        match level {
            AdmissionLevel::Shed => {
                self.admission.note_shed();
                return Response::service_unavailable(self.retry_after_seconds());
            }
            AdmissionLevel::Fallback => return self.handle_batch_fallback(&breq),
            AdmissionLevel::Full | AdmissionLevel::Degraded => {}
        }

        // Group entry indices by owning shard, in first-appearance order
        // (deterministic in the frame alone). The dense `seen` map keeps
        // grouping O(n) without hashing per entry twice.
        let n_shards = self.sessions.n_shards();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut group_of: Vec<Option<usize>> = vec![None; n_shards];
        for (i, entry) in breq.entries.iter().enumerate() {
            let shard_idx = self.sessions.shard_of(entry.session_id);
            match group_of[shard_idx] {
                Some(g) => groups[g].1.push(i),
                None => {
                    group_of[shard_idx] = Some(groups.len());
                    groups.push((shard_idx, vec![i]));
                }
            }
        }

        // Preallocated response builder: every slot is filled exactly
        // once, no reallocation while a shard lock is held.
        let mut results: Vec<Option<BatchEntryResult>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut deferred: Vec<DeferredScore> = vec![DeferredScore::default(); n];
        let mut ok_entries = 0u64;
        // One staging buffer reused across shard groups: each group's
        // records land in a single WAL append (one mutex acquisition per
        // group, not per entry), flushed before that group's shard lock
        // drops so WAL order matches the shard's mutation order.
        let mut wal = WalBatch::default();
        for (shard_idx, indices) in &groups {
            let mut shard = self.sessions.lock_shard(*shard_idx);
            for &i in indices {
                let preq = &breq.entries[i];
                let result = match Self::validate_predict(preq) {
                    Err((status, msg)) => BatchEntryResult::failed(status, msg),
                    Ok(()) => {
                        let out = if level == AdmissionLevel::Degraded {
                            self.predict_degraded_locked(&mut shard, preq, &mut wal)
                        } else {
                            self.predict_locked(&mut shard, preq, &mut wal)
                        };
                        match out {
                            Ok((resp, score)) => {
                                deferred[i] = score;
                                ok_entries += 1;
                                BatchEntryResult::ok(resp)
                            }
                            Err((status, msg)) => BatchEntryResult::failed(status, msg),
                        }
                    }
                };
                results[i] = Some(result);
            }
            if let Some(p) = &self.persist {
                p.log_staged(&mut wal);
            }
        }
        let results: Vec<BatchEntryResult> = results
            .into_iter()
            .map(|r| r.expect("every batch slot filled"))
            .collect();

        // Frame-order scoring, outside every shard lock — the same calls
        // in the same order as the sequential expansion of this batch.
        for (result, score) in results.iter().zip(deferred) {
            if let Some(resp) = &result.response {
                self.score_deferred(resp, score);
            }
        }

        for (entry, result) in breq.entries.iter().zip(&results) {
            if result.response.is_none() {
                continue;
            }
            self.admission.note_served(level);
            if self.admission.enabled() {
                if let Some(w) = entry.measured_mbps {
                    self.admission
                        .fallback_tracker()
                        .record(entry.session_id, w);
                }
            }
        }

        self.predictions_served
            .fetch_add(ok_entries, Ordering::Relaxed);
        let partial_failures = n as u64 - ok_entries;
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("predict.server.served", ok_entries);
            cs2p_obs::counter_add("serve.batch.requests", 1);
            cs2p_obs::counter_add("serve.batch.entries", n as u64);
            cs2p_obs::counter_add("serve.batch.shard_groups", groups.len() as u64);
            if partial_failures > 0 {
                cs2p_obs::counter_add("serve.batch.partial_failures", partial_failures);
            }
            cs2p_obs::gauge_set("serve.sessions", self.sessions.len() as f64);
        }
        self.maybe_compact();
        let bresp = BatchPredictResponse { results };
        // Direct writer: skips the serde Value tree, which at 64 entries
        // per frame costs thousands of small allocations.
        Response::json(bresp.to_json_bytes())
    }

    /// `POST /predict_batch` at Fallback level: every entry is answered
    /// from the side table (or fails with a per-entry 503), with no
    /// shard lock taken and no grouping needed.
    fn handle_batch_fallback(&self, breq: &BatchPredictRequest) -> Response {
        let mut ok_entries = 0u64;
        let results: Vec<BatchEntryResult> = breq
            .entries
            .iter()
            .map(|preq| match Self::validate_predict(preq) {
                Err((status, msg)) => BatchEntryResult::failed(status, msg),
                Ok(()) => match self.predict_fallback(preq) {
                    Ok(resp) => {
                        ok_entries += 1;
                        self.admission.note_served(AdmissionLevel::Fallback);
                        BatchEntryResult::ok(resp)
                    }
                    Err(_shed) => {
                        BatchEntryResult::failed(503, "no measurement history at fallback level")
                    }
                },
            })
            .collect();
        self.predictions_served
            .fetch_add(ok_entries, Ordering::Relaxed);
        let n = breq.entries.len() as u64;
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("predict.server.served", ok_entries);
            cs2p_obs::counter_add("serve.batch.requests", 1);
            cs2p_obs::counter_add("serve.batch.entries", n);
            if n > ok_entries {
                cs2p_obs::counter_add("serve.batch.partial_failures", n - ok_entries);
            }
        }
        Response::json(BatchPredictResponse { results }.to_json_bytes())
    }

    fn handle_model(&self, req: &Request) -> Response {
        let Some(features) = parse_features_query(&req.path) else {
            return Response::error(400, "missing features query");
        };
        let (_, engine) = self.registry.current();
        if features.len() != engine.schema().len() {
            return Response::error(400, "feature width mismatch");
        }
        let cm = ClientModel::for_client(&engine, &FeatureVector(features));
        match cm.to_json() {
            Ok(body) => Response::json(body.into_bytes()),
            Err(_) => Response::error(500, "serialization failed"),
        }
    }

    fn handle_log(&self, req: &Request) -> Response {
        let Ok(log) = serde_json::from_slice::<SessionLog>(&req.body) else {
            return Response::error(400, "malformed SessionLog");
        };
        // A log upload marks the session complete: retire it from the
        // store and drain its observations into the training recorder.
        let mut alarm = false;
        let removed = {
            let mut guard = self.sessions.lock(log.session_id);
            let removed = guard.remove(log.session_id);
            // Explicit removes bypass the eviction sink, so the retirement
            // is WAL'd here, still under the owning shard's lock.
            if removed.is_some() {
                if let Some(p) = &self.persist {
                    p.log(&WalRecord::Remove { id: log.session_id });
                }
            }
            removed
        };
        // A completed session's fallback history is dead weight.
        self.admission.fallback_tracker().remove(log.session_id);
        if let Some(state) = removed {
            // The session's in-band loop already scored every prediction
            // it could; the one still pending has no later measurement
            // and never will.
            if state.pending.is_some() {
                self.monitor.note_unmatched();
            }
            self.recorder.record(state.features, state.observed);
        } else {
            // No live session (completed offline, or evicted long ago):
            // the log's own (predicted, actual) pairs are the only
            // accuracy signal. Provenance and model version are unknown
            // here, so they land in the dedicated `log` sketch.
            for &(predicted, actual) in &log.throughput_pairs {
                let Some(p) = predicted else { continue };
                match ape(p, actual) {
                    Some(e) => alarm |= self.monitor.record_log_ape(e),
                    None => self.monitor.note_unmatched(),
                }
            }
        }
        self.logs.lock().push(log);
        if alarm && self.monitor.config().trigger_refresh {
            self.refresh_on_drift();
        }
        self.maybe_compact();
        Response::new(204, bytes::Bytes::new())
    }
}

/// Decrements the live-connection count when the connection dies,
/// whichever thread drops it.
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One client connection, handed between the poller and the workers.
/// The buffered halves run over [`IoHalf`] (hook-wrappable transports);
/// readiness polling always peeks the raw socket, so fault wrappers see
/// every byte a worker moves but never affect idle multiplexing.
struct Conn {
    stream: TcpStream,
    reader: BufReader<DeadlineReader>,
    writer: BufWriter<IoHalf>,
    nonblocking: bool,
    _slot: ConnSlot,
}

enum PollState {
    /// Bytes are waiting (or already buffered) — hand to a worker.
    Ready,
    /// No data yet; keep watching.
    Idle,
    /// Peer closed or the socket errored — drop the connection.
    Closed,
}

impl Conn {
    fn new(
        stream: TcpStream,
        conn_seq: u64,
        slot: ConnSlot,
        config: &ServeConfig,
    ) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        let (read_half, write_half) =
            IoHalf::pair(&stream, conn_seq, config.transport_wrapper.as_ref())?;
        let deadline_us = config
            .slow_peer_deadline
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64);
        let reader = BufReader::new(DeadlineReader::new(
            read_half,
            Arc::clone(&config.clock),
            deadline_us,
        ));
        let writer = BufWriter::new(write_half);
        Ok(Conn {
            stream,
            reader,
            writer,
            nonblocking: false,
            _slot: slot,
        })
    }

    fn set_blocking(&mut self) -> io::Result<()> {
        if self.nonblocking {
            self.stream.set_nonblocking(false)?;
            self.nonblocking = false;
        }
        Ok(())
    }

    fn set_nonblocking(&mut self) -> io::Result<()> {
        if !self.nonblocking {
            self.stream.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        Ok(())
    }

    /// Non-destructive readiness check (a 1-byte `peek`; nothing is
    /// consumed, so a later blocking read sees the full request).
    fn poll_ready(&mut self) -> PollState {
        if !self.reader.buffer().is_empty() {
            return PollState::Ready;
        }
        if self.set_nonblocking().is_err() {
            return PollState::Closed;
        }
        let mut byte = [0u8; 1];
        match self.stream.peek(&mut byte) {
            Ok(0) => PollState::Closed,
            Ok(_) => PollState::Ready,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => PollState::Idle,
            Err(_) => PollState::Closed,
        }
    }

    /// Spin-peeks (yielding) for up to `window` waiting for the next
    /// keep-alive request, so back-to-back requests skip the poller.
    fn wait_for_data(&mut self, window: Duration) -> PollState {
        let deadline = Instant::now() + window;
        loop {
            match self.poll_ready() {
                PollState::Idle => {
                    if Instant::now() >= deadline {
                        return PollState::Idle;
                    }
                    thread::yield_now();
                }
                state => return state,
            }
        }
    }
}

/// Everything the acceptor, poller, and workers share.
pub(crate) struct Shared {
    app: AppState,
    config: ServeConfig,
    queue: BoundedQueue<Conn>,
    /// Connections waiting to be watched by the poller (newly accepted,
    /// or returned by a worker after going idle).
    intake: StdMutex<Vec<Conn>>,
    intake_cv: Condvar,
    shutdown: AtomicBool,
    live_conns: Arc<AtomicUsize>,
    rejected: AtomicU64,
    accepted: AtomicU64,
}

impl Shared {
    fn intake_lock(&self) -> std::sync::MutexGuard<'_, Vec<Conn>> {
        self.intake
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Answers 503 + `Retry-After` without reading the request (the
    /// request stays unread, so framing cannot desync) and closes.
    fn reject(&self, mut conn: Conn) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.rejected", 1);
        let _ = conn.set_blocking();
        let _ = write_response(
            &mut conn.writer,
            &Response::service_unavailable(self.config.retry_after_seconds),
        );
    }
}

/// Snapshot of the serving counters (also returned by
/// [`ServerHandle::shutdown`], whose final values are exact because all
/// workers have drained by then).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Successful `/predict` responses.
    pub predictions_served: u64,
    /// Sessions currently resident in the store.
    pub sessions_live: usize,
    /// Sessions evicted by TTL or LRU since startup.
    pub sessions_evicted: u64,
    /// The store's total capacity bound.
    pub session_capacity: usize,
    /// Connections answered with 503 backpressure.
    pub rejected: u64,
    /// Connections accepted.
    pub accepted: u64,
    /// The live model version (1 = the engine the server started with).
    pub model_version: u64,
    /// Completed sessions currently held by the training recorder.
    pub recorded_sessions: usize,
    /// Degradation-ladder counters (level, per-level serve counts, shed).
    pub admission: AdmissionSnapshot,
}

/// A running prediction server (see the module docs for the thread
/// architecture).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    poller_thread: Option<JoinHandle<()>>,
    refresh_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Opens a durably-persisted server from `dir`, recovering whatever
    /// state a previous incarnation committed there.
    ///
    /// Recovery replays the store snapshot plus every uncovered WAL
    /// generation: the recovered server holds the same sessions — same
    /// HMM filter posteriors, same pinned model versions, same LRU/TTL
    /// stamps, same store tick — as the committed prefix of the crashed
    /// run, so its predictions are bit-identical to a server that never
    /// crashed. Replay truncates at the first torn or corrupt record and
    /// never panics on arbitrary bytes. A fresh (or empty) directory
    /// bootstraps from `engine`, persisting it as model version 1; after
    /// a successful recovery `engine` is unused — the persisted registry
    /// wins. Sessions pinned to a version whose bundle is gone (GC'd or
    /// corrupt) are dropped to the re-register path, never served from a
    /// mismatched model.
    ///
    /// The recovered server starts a fresh WAL generation and compacts
    /// immediately, so replay history stays bounded and any torn tail is
    /// orphaned. Durability counters land under `serve.persist.*`.
    pub fn open_or_recover(
        dir: &Path,
        engine: PredictionEngine,
        addr: &str,
        config: ServeConfig,
        persist_config: PersistConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let start = Instant::now();
        let recovered = persist::recover(dir, MAX_RECORDED_EPOCHS)?;
        let persist = Arc::new(SessionPersist::create(
            dir,
            Arc::clone(&config.clock),
            &persist_config,
        )?);

        let refresh = &config.refresh;
        let restored = match recovered.current_version {
            Some(current) => ModelRegistry::restore(
                recovered
                    .engines
                    .into_iter()
                    .map(|(v, e)| (ModelVersion(v), e))
                    .collect(),
                ModelVersion(current),
                refresh.train_config.clone(),
                refresh.retain,
            ),
            None => None,
        };
        let registry = match restored {
            Some(registry) => registry,
            None => {
                let registry =
                    ModelRegistry::new(engine, refresh.train_config.clone(), refresh.retain);
                // Persist the bootstrap version right away: sessions that
                // pin it must survive a crash that happens before the
                // first retrain ever publishes anything.
                let (v1, e1) = registry.current();
                use cs2p_core::registry::RegistryPersistence;
                persist.registry_sink().publish_version(v1, &e1);
                registry
            }
        };

        let mut dropped_sessions = 0u64;
        let mut entries: Vec<(u64, u64, SessionState)> =
            Vec::with_capacity(recovered.sessions.len());
        for (id, last_touch, ps) in recovered.sessions {
            match rehydrate_session(&registry, ps) {
                Some(session) => entries.push((id, last_touch, session)),
                None => dropped_sessions += 1,
            }
        }
        let sessions = SessionStore::restore(
            config.n_shards,
            config.max_sessions,
            config.session_ttl_requests,
            recovered.tick,
            entries,
        );
        let app = AppState::assemble(
            registry,
            sessions,
            refresh,
            config.quality.clone(),
            config.admission.clone(),
            Arc::clone(&config.clock),
            Some(persist),
        );
        if cs2p_obs::enabled() {
            cs2p_obs::observe(
                "serve.persist.recovery_us",
                start.elapsed().as_micros() as f64,
            );
            cs2p_obs::event(
                cs2p_obs::Level::Info,
                "serve.persist.recovered",
                vec![
                    ("wal_records", recovered.wal_records.into()),
                    ("clean", recovered.clean.into()),
                    ("sessions", app.sessions_live().into()),
                    ("dropped_sessions", dropped_sessions.into()),
                ],
            );
        }
        // Fold the replayed history into a fresh snapshot immediately:
        // bounds the next recovery and orphans any torn tail for good.
        app.compact_now();
        spawn_server(listener, local, app, config)
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// WAL counters of the durability layer; `None` on an in-memory
    /// server (one not opened via [`open_or_recover`](Self::open_or_recover)).
    pub fn persist_stats(&self) -> Option<WalStats> {
        self.shared.app.persist().map(|p| p.wal_stats())
    }

    /// Forces a WAL rotation + store snapshot now (ops hook). No-op on an
    /// in-memory server or when a compaction is already in flight.
    pub fn compact(&self) {
        self.shared.app.compact_now();
    }

    /// Total predictions served so far.
    pub fn predictions_served(&self) -> u64 {
        self.shared.app.predictions_served()
    }

    /// Session logs uploaded so far.
    pub fn logs(&self) -> Vec<SessionLog> {
        self.shared.app.logs()
    }

    /// Forcibly evicts a session mid-stream (chaos/ops hook): the next
    /// request for it gets the "unknown session" re-register path, just
    /// like a TTL/LRU eviction. Counted in `serve.fault.forced_evictions`
    /// (and as a regular eviction). Returns whether it was present.
    pub fn force_evict(&self, session_id: u64) -> bool {
        self.shared.app.force_evict(session_id)
    }

    /// The live model version new sessions will pin.
    pub fn model_version(&self) -> ModelVersion {
        self.shared.app.model_version()
    }

    /// Completed sessions currently held by the training recorder.
    pub fn recorded_sessions(&self) -> usize {
        self.shared.app.recorded_sessions()
    }

    /// Model versions the registry currently retains, ascending. Bounded
    /// by [`RefreshConfig::retain`] plus explicitly pinned versions — the
    /// soak tests assert swaps and evictions never leak versions here.
    pub fn model_versions(&self) -> Vec<ModelVersion> {
        self.shared.app.model_versions()
    }

    /// The live `(version, engine)` snapshot. The `Arc` stays valid (and
    /// bit-identical) across later swaps — what a pinned session holds,
    /// and what `refresh-bench` evaluates offline against held-out days.
    pub fn model_snapshot(&self) -> (ModelVersion, Arc<PredictionEngine>) {
        self.shared.app.model_snapshot()
    }

    /// Retrains from the completed sessions the server has recorded and
    /// hot-swaps the result in (warm-starting every cluster from the live
    /// version). In-flight sessions keep serving from the version they
    /// registered on; only new sessions see the new model. `None` — the
    /// live version untouched — when the recorder holds fewer than
    /// [`RefreshConfig::min_sessions`] sessions or the data cannot
    /// support a model.
    pub fn refresh_models(&self) -> Option<(ModelVersion, TrainSummary)> {
        self.shared
            .app
            .refresh_models(self.shared.config.refresh.min_sessions)
    }

    /// Like [`refresh_models`](Self::refresh_models) but trains from an
    /// explicit dataset (operator push, deterministic tests) instead of
    /// the recorder window.
    pub fn refresh_models_with(&self, dataset: &Dataset) -> Option<(ModelVersion, TrainSummary)> {
        self.shared.app.refresh_models_with(dataset)
    }

    /// The full operational snapshot — exactly the struct `GET /ops`
    /// serializes, without a socket round-trip. Includes request-latency
    /// and online-APE quantiles from the quality monitor (see
    /// [`crate::ops::OpsSnapshot`]).
    pub fn metrics_snapshot(&self) -> OpsSnapshot {
        self.shared.app.ops_snapshot()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            predictions_served: self.shared.app.predictions_served(),
            sessions_live: self.shared.app.sessions_live(),
            sessions_evicted: self.shared.app.sessions_evicted(),
            session_capacity: self.shared.app.session_capacity(),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            model_version: self.shared.app.model_version().0,
            recorded_sessions: self.shared.app.recorded_sessions(),
            admission: self.shared.app.admission().snapshot(),
        }
    }

    /// The degradation-ladder level requests are admitted at right now.
    pub fn admission_level(&self) -> AdmissionLevel {
        self.shared.app.admission().level()
    }

    /// Pins (or, with `None`, unpins) the degradation ladder — the
    /// deterministic overload-forcing hook the ladder tests and benches
    /// drive (see TESTING.md). Works even when the watermark machinery
    /// is disabled.
    pub fn force_admission_level(&self, level: Option<AdmissionLevel>) {
        self.shared.app.admission().force(level);
    }

    /// Point-in-time degradation-ladder counters.
    pub fn admission_snapshot(&self) -> AdmissionSnapshot {
        self.shared.app.admission().snapshot()
    }

    /// Gracefully drains and stops the server: stop accepting, finish
    /// every request already received or readable, join all threads.
    /// Completes in bounded time (worst case one read-timeout for a
    /// stalled peer) and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking acceptor with a throwaway loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wake the poller; it does a final ready sweep and exits.
        self.shared.intake_cv.notify_all();
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
        // The refresher polls the shutdown flag every POLL_INTERVAL; any
        // in-progress retrain finishes (bounded) before the join returns.
        if let Some(t) = self.refresh_thread.take() {
            let _ = t.join();
        }
        // Workers drain the queue, then see `None` and exit.
        self.shared.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // No worker is appending anymore: make the WAL tail durable. A
        // graceful shutdown therefore loses nothing; only a crash can.
        if let Some(p) = self.shared.app.persist() {
            let _ = p.flush();
        }
        // Anything a worker handed back after the poller left is idle by
        // definition — safe to close now that no thread will touch it.
        self.shared.intake_lock().clear();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts the server on `addr` (use port 0 for an ephemeral port) with
/// default [`ServeConfig`].
pub fn serve(engine: PredictionEngine, addr: &str) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServeConfig::default())
}

/// Starts the server on `addr` with explicit tuning knobs.
pub fn serve_with(
    engine: PredictionEngine,
    addr: &str,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let app = AppState::new(
        engine,
        &config.refresh,
        config.quality.clone(),
        config.admission.clone(),
        Arc::clone(&config.clock),
        config.n_shards,
        config.max_sessions,
        config.session_ttl_requests,
    );
    spawn_server(listener, addr, app, config)
}

/// Turns a recovered [`PersistedSession`] back into live session state,
/// re-resolving its engine pin from the recovered registry. `None` — the
/// session is dropped to the re-register path — when the pinned version's
/// bundle is gone or the persisted state is inconsistent with it (model
/// index out of range, posterior or feature width mismatch); recovery
/// must never panic, and `HmmFilter::from_state` would on a bad width.
fn rehydrate_session(registry: &ModelRegistry, ps: PersistedSession) -> Option<SessionState> {
    let version = ModelVersion(ps.version);
    let engine = registry.get(version)?;
    if ps.model.is_some_and(|i| i >= engine.models().len()) {
        return None;
    }
    if ps.features.len() != engine.schema().len() {
        return None;
    }
    let model = AppState::model_of(&engine, ps.model);
    if ps.filter.posterior.len() != model.hmm.n_states() {
        return None;
    }
    Some(SessionState {
        version,
        engine,
        model: ps.model,
        cluster_hit: ps.cluster_hit,
        filter: ps.filter,
        features: FeatureVector(ps.features),
        observed: ps.observed,
        pending: ps.pending.map(|p| PendingPrediction {
            value: p.value,
            initial: p.initial,
        }),
    })
}

/// Spawns the serving threads around an already-built [`AppState`] —
/// shared by [`serve_with`] (fresh state) and
/// [`ServerHandle::open_or_recover`] (recovered state).
fn spawn_server(
    listener: TcpListener,
    addr: SocketAddr,
    app: AppState,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let n_workers = config.n_workers.max(1);
    let shared = Arc::new(Shared {
        app,
        queue: BoundedQueue::new(config.queue_depth),
        config,
        intake: StdMutex::new(Vec::new()),
        intake_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        live_conns: Arc::new(AtomicUsize::new(0)),
        rejected: AtomicU64::new(0),
        accepted: AtomicU64::new(0),
    });
    shared.app.install_server(Arc::downgrade(&shared));

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("cs2p-accept".into())
        .spawn(move || run_acceptor(listener, accept_shared))?;
    let poll_shared = Arc::clone(&shared);
    let poller_thread = thread::Builder::new()
        .name("cs2p-poll".into())
        .spawn(move || run_poller(poll_shared))?;
    let workers = (0..n_workers)
        .map(|i| {
            let worker_shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("cs2p-worker-{i}"))
                .spawn(move || run_worker(worker_shared))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let refresh_thread = match shared.config.refresh.interval {
        Some(interval) => {
            let refresh_shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("cs2p-refresh".into())
                    .spawn(move || run_refresher(refresh_shared, interval))?,
            )
        }
        None => None,
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        poller_thread: Some(poller_thread),
        refresh_thread,
        workers,
    })
}

/// Blocking accept loop. Woken at shutdown by a loopback connect from
/// `shutdown()` — no sleep-polling.
fn run_acceptor(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing shutdown).
            return;
        }
        let conn_seq = shared.accepted.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.accepted", 1);
        let live = shared.live_conns.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = ConnSlot(Arc::clone(&shared.live_conns));
        let conn = match Conn::new(stream, conn_seq, slot, &shared.config) {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if live > shared.config.max_connections {
            shared.reject(conn);
            continue;
        }
        shared.intake_lock().push(conn);
        shared.intake_cv.notify_all();
    }
}

/// Multiplexes idle connections: new and returned connections arrive via
/// the intake, ready ones go to the worker queue (or get 503 when it is
/// full). Parks on the intake condvar; `POLL_INTERVAL` bounds how late a
/// newly readable connection is noticed.
fn run_poller(shared: Arc<Shared>) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        {
            let mut intake = shared.intake_lock();
            conns.append(&mut intake);
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].poll_ready() {
                PollState::Ready => {
                    let mut conn = conns.swap_remove(i);
                    progressed = true;
                    if conn.set_blocking().is_err() {
                        continue;
                    }
                    match shared.queue.try_push(conn) {
                        Ok(depth) => {
                            shared
                                .app
                                .admission()
                                .note_queue(depth, shared.config.queue_depth);
                            if cs2p_obs::enabled() {
                                cs2p_obs::gauge_set("serve.queue_depth", depth as f64);
                            }
                        }
                        Err(conn) => {
                            shared
                                .app
                                .admission()
                                .note_queue(shared.config.queue_depth, shared.config.queue_depth);
                            shared.reject(conn);
                        }
                    }
                }
                PollState::Closed => {
                    conns.swap_remove(i);
                    progressed = true;
                }
                PollState::Idle => i += 1,
            }
        }
        if shutting_down {
            // Ready connections were swept to the queue above; what is
            // left has no request outstanding, so it can close.
            conns.clear();
            shared.intake_lock().clear();
            return;
        }
        if !progressed {
            let intake = shared.intake_lock();
            if intake.is_empty() {
                match shared.intake_cv.wait_timeout(intake, POLL_INTERVAL) {
                    Ok((guard, _)) => drop(guard),
                    Err(poison) => drop(poison.into_inner()),
                }
            }
        }
    }
}

/// Background model-refresh loop: fires [`AppState::refresh_models`]
/// whenever `interval` has elapsed on the *injectable* clock (so tests
/// drive it with a `ManualClock`), checking the clock and the shutdown
/// flag every [`POLL_INTERVAL`] of real time. Training runs on this
/// thread, outside every request path — workers keep serving the old
/// version until the publish swap.
fn run_refresher(shared: Arc<Shared>, interval: Duration) {
    let interval_us = interval.as_micros().min(u64::MAX as u128) as u64;
    let mut last = shared.config.clock.now_micros();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let now = shared.config.clock.now_micros();
        if now.saturating_sub(last) >= interval_us {
            last = now;
            let _ = shared
                .app
                .refresh_models(shared.config.refresh.min_sessions);
        }
        thread::sleep(POLL_INTERVAL);
    }
}

/// Worker loop: pull a ready connection, serve its request(s), return it
/// to the poller when it goes idle. After `close()` the queue hands out
/// its backlog before `None`, so draining is automatic.
fn run_worker(shared: Arc<Shared>) {
    // Per-worker reusable I/O buffers: every request this worker serves
    // frames through the same line/response scratch, so the steady-state
    // hot path allocates nothing for framing.
    let mut scratch = IoScratch::new();
    while let Some(conn) = shared.queue.pop() {
        // Workers draining the queue is what lets the ladder recover:
        // every pop feeds the falling occupancy back to the controller.
        shared
            .app
            .admission()
            .note_queue(shared.queue.len(), shared.config.queue_depth);
        if cs2p_obs::enabled() {
            cs2p_obs::gauge_set("serve.queue_depth", shared.queue.len() as f64);
        }
        serve_turn(conn, &shared, &mut scratch);
    }
}

/// Serves requests from one ready connection until it goes idle, closes,
/// errors, or exhausts its fairness budget.
fn serve_turn(mut conn: Conn, shared: &Shared, scratch: &mut IoScratch) {
    let mut served: u32 = 0;
    loop {
        if conn.set_blocking().is_err() {
            return;
        }
        match read_request_buffered(&mut conn.reader, scratch) {
            Ok(Some(req)) => {
                // Request fully received: disarm the slow-peer deadline
                // before doing any (unbounded-by-it) handler work.
                conn.reader.get_mut().finish_request();
                // A client-supplied trace id scopes every span and event
                // this request produces (declared before the span so the
                // span's drop-record still sees it).
                let trace_id = req
                    .header("x-trace-id")
                    .and_then(|v| v.trim().parse::<u64>().ok());
                let _trace = trace_id.map(TraceScope::enter);
                let _span = cs2p_obs::span("serve.request");
                let start_us = shared.config.clock.now_micros();
                let resp = shared.app.handle(&req);
                let elapsed_us = shared.config.clock.now_micros().saturating_sub(start_us);
                shared.app.monitor().record_latency_us(elapsed_us as f64);
                shared.app.admission().note_latency(elapsed_us);
                if cs2p_obs::enabled() {
                    cs2p_obs::quantile_observe("serve.request.latency_us", elapsed_us as f64);
                }
                if write_response_buffered(&mut conn.writer, &resp, scratch).is_err() {
                    cs2p_obs::counter_add("serve.fault.write_errors", 1);
                    return;
                }
                served += 1;
            }
            Ok(None) => return, // peer closed keep-alive cleanly
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Unparseable framing (truncated/corrupted request).
                cs2p_obs::counter_add("serve.fault.bad_frames", 1);
                let _ = write_response_buffered(
                    &mut conn.writer,
                    &Response::error(400, &e.to_string()),
                    scratch,
                );
                return;
            }
            Err(_) => {
                // Read timeout, slow-peer abort, or peer reset mid-request.
                cs2p_obs::counter_add("serve.fault.read_errors", 1);
                return;
            }
        }

        // Pipelined bytes already buffered are in-flight work: serve them
        // (even during drain) before deciding what to do with the conn.
        let more_buffered = !conn.reader.buffer().is_empty();
        if !more_buffered {
            if shared.shutdown.load(Ordering::SeqCst) {
                return; // drained: every received request was answered
            }
            match conn.wait_for_data(LINGER) {
                PollState::Ready => {}
                PollState::Closed => return,
                PollState::Idle => {
                    // Hand the idle connection back to the poller.
                    shared.intake_lock().push(conn);
                    shared.intake_cv.notify_all();
                    return;
                }
            }
        }
        if served >= MAX_REQUESTS_PER_TURN {
            // Fairness: let queued connections go first. If the queue is
            // full, keep serving rather than rejecting an active conn.
            match shared.queue.try_push(conn) {
                Ok(_) => return,
                Err(back) => {
                    conn = back;
                    served = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};
    use cs2p_testkit::scenarios::tiny_engine;

    fn send(addr: SocketAddr, req: &Request) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, req).unwrap();
        read_response(&mut reader).unwrap()
    }

    fn predict(addr: SocketAddr, preq: &PredictRequest) -> PredictResponse {
        let body = serde_json::to_vec(preq).unwrap();
        let resp = send(addr, &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 200, "body: {:?}", resp.body);
        serde_json::from_slice(&resp.body).unwrap()
    }

    #[test]
    fn full_prediction_session_over_http() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        // First request: features, no measurement -> initial prediction.
        let r1 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: Some(vec![1]),
                measured_mbps: None,
                horizon: 3,
            },
        );
        assert!(r1.initial);
        assert_eq!(r1.predictions_mbps.len(), 3);
        assert!((r1.predictions_mbps[0] - 5.0).abs() < 0.5);

        // Midstream: send a measurement, get HMM predictions.
        let r2 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: None,
                measured_mbps: Some(5.1),
                horizon: 1,
            },
        );
        assert!(!r2.initial);
        assert!((r2.predictions_mbps[0] - 5.0).abs() < 0.5);

        assert_eq!(server.predictions_served(), 2);
        server.shutdown();
    }

    #[test]
    fn unknown_session_without_features_is_404() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let body = serde_json::to_vec(&PredictRequest {
            session_id: 9,
            features: None,
            measured_mbps: Some(1.0),
            horizon: 1,
        })
        .unwrap();
        let resp = send(server.addr(), &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 404, "unknown session must trigger re-init");
        server.shutdown();
    }

    #[test]
    fn model_endpoint_serves_client_model() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let resp = send(
            server.addr(),
            &Request::new("GET", "/model?features=0", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 200);
        let cm = ClientModel::from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!((cm.model.initial_median - 1.0).abs() < 0.5);
        assert!(resp.body.len() < 5 * 1024, "model payload exceeds 5 KB");
        server.shutdown();
    }

    #[test]
    fn log_upload_and_retrieval() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let log = SessionLog {
            session_id: 3,
            strategy: "CS2P+MPC".into(),
            qoe: 100.0,
            avg_bitrate_kbps: 1000.0,
            good_ratio: 1.0,
            rebuffer_seconds: 0.0,
            startup_delay_seconds: 0.5,
            throughput_pairs: vec![],
            bitrates_kbps: vec![],
        };
        let resp = send(
            server.addr(),
            &Request::new("POST", "/log", serde_json::to_vec(&log).unwrap()),
        );
        assert_eq!(resp.status, 204);
        assert_eq!(server.logs(), vec![log]);
        server.shutdown();
    }

    #[test]
    fn stats_endpoint_aggregates_logs() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        for (strategy, qoe) in [("CS2P+MPC", 100.0), ("CS2P+MPC", 300.0), ("HM+MPC", 50.0)] {
            let log = SessionLog {
                session_id: 1,
                strategy: strategy.into(),
                qoe,
                avg_bitrate_kbps: 1000.0,
                good_ratio: 1.0,
                rebuffer_seconds: 0.0,
                startup_delay_seconds: 0.5,
                throughput_pairs: vec![],
                bitrates_kbps: vec![],
            };
            let resp = send(
                server.addr(),
                &Request::new("POST", "/log", serde_json::to_vec(&log).unwrap()),
            );
            assert_eq!(resp.status, 204);
        }
        let resp = send(
            server.addr(),
            &Request::new("GET", "/stats", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 200);
        let stats: crate::protocol::LogStats = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(stats.strategies.len(), 2);
        assert_eq!(stats.strategies[0].n_sessions, 2);
        assert!((stats.strategies[0].mean_qoe - 200.0).abs() < 1e-12);
        server.shutdown();
    }

    #[test]
    fn healthz_reports_counters() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        predict(
            server.addr(),
            &PredictRequest {
                session_id: 5,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let resp = send(
            server.addr(),
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        );
        let health: Health = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.n_sessions, 1);
        assert_eq!(health.predictions_served, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_endpoint_404s_and_bad_method_405s() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let resp = send(
            server.addr(),
            &Request::new("GET", "/nope", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 404);
        let resp = send(
            server.addr(),
            &Request::new("DELETE", "/predict", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 405);
        server.shutdown();
    }

    #[test]
    fn keep_alive_connection_serves_many_requests() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for i in 0..5 {
            let preq = PredictRequest {
                session_id: 42,
                features: if i == 0 { Some(vec![1]) } else { None },
                measured_mbps: if i == 0 { None } else { Some(5.0) },
                horizon: 1,
            };
            let req = Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap());
            write_request(&mut writer, &req).unwrap();
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.predictions_served(), 5);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_get_responses() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // Write several requests back-to-back before reading anything.
        let n = 4;
        for i in 0..n {
            let preq = PredictRequest {
                session_id: 77,
                features: if i == 0 { Some(vec![0]) } else { None },
                measured_mbps: if i == 0 { None } else { Some(1.0) },
                horizon: 1,
            };
            write_request(
                &mut writer,
                &Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap()),
            )
            .unwrap();
        }
        for _ in 0..n {
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.predictions_served(), n as u64);
        server.shutdown();
    }

    fn predict_batch(
        addr: SocketAddr,
        entries: Vec<PredictRequest>,
    ) -> crate::protocol::BatchPredictResponse {
        let body = serde_json::to_vec(&BatchPredictRequest { entries }).unwrap();
        let resp = send(addr, &Request::new("POST", "/predict_batch", body));
        assert_eq!(resp.status, 200, "body: {:?}", resp.body);
        serde_json::from_slice(&resp.body).unwrap()
    }

    #[test]
    fn batch_matches_its_sequential_expansion() {
        // Same per-session request stream, once as sequential singles,
        // once as batch frames — predictions must be bit-identical.
        let entries_of_epoch = |epoch: usize| -> Vec<PredictRequest> {
            (0..6u64)
                .map(|sid| PredictRequest {
                    session_id: 100 + sid,
                    features: (epoch == 0).then(|| vec![(sid % 2) as u32]),
                    measured_mbps: (epoch > 0).then_some(1.0 + sid as f64 / 3.0),
                    horizon: 2,
                })
                .collect()
        };

        let sequential = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut expect: Vec<PredictResponse> = Vec::new();
        for epoch in 0..3 {
            for preq in entries_of_epoch(epoch) {
                expect.push(predict(sequential.addr(), &preq));
            }
        }
        let served = sequential.predictions_served();
        sequential.shutdown();

        let batched = serve_with(
            tiny_engine(),
            "127.0.0.1:0",
            ServeConfig {
                n_shards: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut got: Vec<PredictResponse> = Vec::new();
        for epoch in 0..3 {
            let bresp = predict_batch(batched.addr(), entries_of_epoch(epoch));
            for r in bresp.results {
                assert_eq!(r.status, 200, "error: {:?}", r.error);
                got.push(r.response.unwrap());
            }
        }
        assert_eq!(expect, got);
        assert_eq!(batched.predictions_served(), served);
        batched.shutdown();
    }

    #[test]
    fn batch_duplicate_session_entries_run_in_frame_order() {
        // Registration and two measurements for one session in a single
        // frame: the filter must advance exactly as three singles would.
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let entry = |features: Option<Vec<u32>>, measured: Option<f64>| PredictRequest {
            session_id: 9,
            features,
            measured_mbps: measured,
            horizon: 1,
        };
        let bresp = predict_batch(
            server.addr(),
            vec![
                entry(Some(vec![1]), None),
                entry(None, Some(5.2)),
                entry(None, Some(4.9)),
            ],
        );
        assert!(bresp.results.iter().all(|r| r.status == 200));
        assert!(bresp.results[0].response.as_ref().unwrap().initial);
        assert!(!bresp.results[1].response.as_ref().unwrap().initial);
        assert!(!bresp.results[2].response.as_ref().unwrap().initial);

        let control = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let expect = [
            predict(control.addr(), &entry(Some(vec![1]), None)),
            predict(control.addr(), &entry(None, Some(5.2))),
            predict(control.addr(), &entry(None, Some(4.9))),
        ];
        for (r, e) in bresp.results.iter().zip(&expect) {
            assert_eq!(r.response.as_ref().unwrap(), e);
        }
        control.shutdown();
        server.shutdown();
    }

    #[test]
    fn batch_partial_failures_answer_per_entry_statuses() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let bresp = predict_batch(
            server.addr(),
            vec![
                PredictRequest {
                    session_id: 1,
                    features: Some(vec![0]),
                    measured_mbps: None,
                    horizon: 1,
                },
                // Unknown session, no features: per-entry 404.
                PredictRequest {
                    session_id: 2,
                    features: None,
                    measured_mbps: Some(1.0),
                    horizon: 1,
                },
                // Invalid horizon: per-entry 400.
                PredictRequest {
                    session_id: 3,
                    features: Some(vec![0]),
                    measured_mbps: None,
                    horizon: 0,
                },
                // Feature width mismatch: per-entry 400.
                PredictRequest {
                    session_id: 4,
                    features: Some(vec![0, 1, 2]),
                    measured_mbps: None,
                    horizon: 1,
                },
            ],
        );
        let statuses: Vec<u16> = bresp.results.iter().map(|r| r.status).collect();
        assert_eq!(statuses, [200, 404, 400, 400]);
        assert!(bresp.results[1]
            .error
            .as_deref()
            .unwrap()
            .contains("unknown session"));
        // Only the successful entry counts as served.
        assert_eq!(server.predictions_served(), 1);
        server.shutdown();
    }

    #[test]
    fn empty_and_oversized_batches_are_400() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let body = serde_json::to_vec(&BatchPredictRequest { entries: vec![] }).unwrap();
        let resp = send(server.addr(), &Request::new("POST", "/predict_batch", body));
        assert_eq!(resp.status, 400, "empty batch must be a 400, not a 500");

        let too_many: Vec<PredictRequest> = (0..=MAX_BATCH_ENTRIES as u64)
            .map(|sid| PredictRequest {
                session_id: sid,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            })
            .collect();
        let body = serde_json::to_vec(&BatchPredictRequest { entries: too_many }).unwrap();
        let resp = send(server.addr(), &Request::new("POST", "/predict_batch", body));
        assert_eq!(resp.status, 400);
        assert_eq!(
            server.predictions_served(),
            0,
            "rejected batches serve nothing"
        );
        server.shutdown();
    }

    #[test]
    fn invalid_measurement_rejected() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        predict(
            server.addr(),
            &PredictRequest {
                session_id: 8,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let raw = br#"{"session_id":8,"features":null,"measured_mbps":-1.0,"horizon":1}"#;
        let resp = send(server.addr(), &Request::new("POST", "/predict", &raw[..]));
        assert_eq!(resp.status, 400);
        server.shutdown();
    }

    #[test]
    fn concurrent_sessions_have_independent_state() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|sid| {
                thread::spawn(move || {
                    let isp = (sid % 2) as u32;
                    let r = predict(
                        addr,
                        &PredictRequest {
                            session_id: 100 + sid,
                            features: Some(vec![isp]),
                            measured_mbps: None,
                            horizon: 1,
                        },
                    );
                    (isp, r.predictions_mbps[0])
                })
            })
            .collect();
        for h in handles {
            let (isp, pred) = h.join().unwrap();
            let expected = if isp == 0 { 1.0 } else { 5.0 };
            assert!((pred - expected).abs() < 0.5, "isp {isp}: {pred}");
        }
        server.shutdown();
    }

    #[test]
    fn connection_limit_yields_503_with_retry_after() {
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        // Occupy the only slot with a live keep-alive connection.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        // The second connection must be refused with backpressure.
        let resp = send(
            server.addr(),
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let stats = server.shutdown();
        assert!(stats.rejected >= 1);
    }

    #[test]
    fn lru_eviction_bounds_sessions_and_evicted_reregisters() {
        let config = ServeConfig {
            n_shards: 1,
            max_sessions: 2,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        for sid in 0..3 {
            predict(
                addr,
                &PredictRequest {
                    session_id: sid,
                    features: Some(vec![0]),
                    measured_mbps: None,
                    horizon: 1,
                },
            );
        }
        let stats = server.stats();
        assert!(stats.sessions_live <= 2, "live: {}", stats.sessions_live);
        assert_eq!(stats.sessions_evicted, 1);
        // Session 0 was LRU-evicted; without features it is unknown…
        let body = serde_json::to_vec(&PredictRequest {
            session_id: 0,
            features: None,
            measured_mbps: Some(1.0),
            horizon: 1,
        })
        .unwrap();
        let resp = send(addr, &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 404);
        // …and with features it cleanly re-registers.
        let r = predict(
            addr,
            &PredictRequest {
                session_id: 0,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        assert!(r.initial);
        server.shutdown();
    }

    #[test]
    fn shutdown_twice_via_drop_is_safe() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let stats = server.shutdown();
        assert_eq!(stats.predictions_served, 1);
        // The port is released: a fresh server can bind it again.
        let again = serve(tiny_engine(), &addr.to_string());
        if let Ok(s) = again {
            s.shutdown();
        }
    }

    #[test]
    fn responses_carry_model_version_and_sessions_stay_pinned_across_swap() {
        use cs2p_testkit::scenarios::{tiny_dataset, tiny_train_config};
        let config = ServeConfig {
            refresh: RefreshConfig {
                train_config: tiny_train_config(),
                ..RefreshConfig::default()
            },
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        let r1 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: Some(vec![1]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        assert_eq!(r1.model_version, 1);
        // Hot-swap a model trained on data drifted up by 2 Mbps.
        let (v2, summary) = server
            .refresh_models_with(&tiny_dataset(2.0))
            .expect("refresh trains");
        assert_eq!(v2, ModelVersion(2));
        assert!(summary.warm_started > 0, "refresh must warm-start");
        assert_eq!(server.model_version(), v2);
        assert_eq!(server.stats().model_version, 2);
        // The in-flight session stays pinned to v1 and its old regime…
        let r2 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: None,
                measured_mbps: Some(5.0),
                horizon: 1,
            },
        );
        assert_eq!(r2.model_version, 1, "midstream session must stay pinned");
        assert!((r2.predictions_mbps[0] - 5.0).abs() < 0.5);
        // …while a session registering after the swap gets v2's regime.
        let r3 = predict(
            addr,
            &PredictRequest {
                session_id: 2,
                features: Some(vec![1]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        assert_eq!(r3.model_version, 2);
        assert!((r3.predictions_mbps[0] - 7.0).abs() < 0.5);
        server.shutdown();
    }

    #[test]
    fn completed_sessions_feed_the_recorder_and_refresh_swaps() {
        use cs2p_testkit::scenarios::tiny_train_config;
        let config = ServeConfig {
            refresh: RefreshConfig {
                train_config: tiny_train_config(),
                min_sessions: 2,
                ..RefreshConfig::default()
            },
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        // Too few completed sessions: refresh is a no-op.
        assert!(server.refresh_models().is_none());
        for sid in [10u64, 11] {
            let isp = (sid % 2) as u32;
            let mbps = if isp == 0 { 1.0 } else { 5.0 };
            for epoch in 0..5 {
                predict(
                    addr,
                    &PredictRequest {
                        session_id: sid,
                        features: (epoch == 0).then(|| vec![isp]),
                        measured_mbps: (epoch > 0).then_some(mbps),
                        horizon: 1,
                    },
                );
            }
        }
        // One session completes via its /log upload, one via eviction.
        let log = SessionLog {
            session_id: 10,
            strategy: "CS2P+MPC".into(),
            qoe: 1.0,
            avg_bitrate_kbps: 1000.0,
            good_ratio: 1.0,
            rebuffer_seconds: 0.0,
            startup_delay_seconds: 0.5,
            throughput_pairs: vec![],
            bitrates_kbps: vec![],
        };
        let resp = send(
            addr,
            &Request::new("POST", "/log", serde_json::to_vec(&log).unwrap()),
        );
        assert_eq!(resp.status, 204);
        assert!(server.force_evict(11));
        assert_eq!(server.recorded_sessions(), 2);
        assert_eq!(server.stats().recorded_sessions, 2);
        let (version, _) = server.refresh_models().expect("enough sessions recorded");
        assert_eq!(version, ModelVersion(2));
        server.shutdown();
    }

    #[test]
    fn background_refresher_fires_on_the_injectable_clock() {
        use cs2p_testkit::scenarios::tiny_train_config;
        let clock = Arc::new(cs2p_obs::ManualClock::new());
        let config = ServeConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            refresh: RefreshConfig {
                train_config: tiny_train_config(),
                interval: Some(Duration::from_secs(60)),
                min_sessions: 2,
                ..RefreshConfig::default()
            },
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        for sid in [20u64, 21] {
            let isp = (sid % 2) as u32;
            let mbps = if isp == 0 { 1.0 } else { 5.0 };
            for epoch in 0..5 {
                predict(
                    addr,
                    &PredictRequest {
                        session_id: sid,
                        features: (epoch == 0).then(|| vec![isp]),
                        measured_mbps: (epoch > 0).then_some(mbps),
                        horizon: 1,
                    },
                );
            }
            assert!(server.force_evict(sid));
        }
        assert_eq!(server.recorded_sessions(), 2);
        assert_eq!(server.model_version(), ModelVersion(1));
        // Advance the injectable clock past the interval; the refresher
        // (polling every millisecond of real time) picks it up.
        clock.advance(Duration::from_secs(61).as_micros() as u64);
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.model_version() < ModelVersion(2) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            server.model_version(),
            ModelVersion(2),
            "background refresh must fire after the clock advances"
        );
        server.shutdown();
    }

    #[test]
    fn worker_count_one_still_serves_concurrent_clients() {
        let config = ServeConfig {
            n_workers: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|sid| {
                thread::spawn(move || {
                    for epoch in 0..3 {
                        let preq = PredictRequest {
                            session_id: 200 + sid,
                            features: if epoch == 0 { Some(vec![1]) } else { None },
                            measured_mbps: if epoch == 0 { None } else { Some(5.0) },
                            horizon: 1,
                        };
                        predict(addr, &preq);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.predictions_served(), 12);
        server.shutdown();
    }
}
