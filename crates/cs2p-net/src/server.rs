//! The Prediction Engine HTTP server (§6, server-side deployment).
//!
//! The paper's Node.js server answers one prediction POST per player per
//! 6-second epoch; at the ROADMAP's target scale that is thousands of
//! concurrent viewers, so the serving layer is shaped like a production
//! service rather than a demo:
//!
//! - **Sharded session store** ([`crate::store::SessionStore`]): per-viewer
//!   HMM filter state lives in N shards keyed by `hash(session_id)`, each
//!   behind its own lock, with TTL/LRU eviction under a capacity bound.
//!   Requests for different sessions proceed in parallel; requests for the
//!   same session stay serialized.
//! - **Bounded worker pool**: a fixed set of worker threads pulls
//!   ready-to-read connections from a bounded queue
//!   ([`crate::pool::BoundedQueue`]). When the queue is full the server
//!   answers `503` + `Retry-After` instead of queueing unboundedly, and
//!   every connection carries read/write timeouts.
//! - **Graceful drain**: `shutdown()` stops accepting (the blocking
//!   acceptor is woken by a loopback connect, not a sleep poll), lets the
//!   workers finish every request already read or readable, then joins all
//!   threads — bounded time, zero dropped in-flight requests.
//!
//! Connection readiness is discovered with non-blocking `peek` (std-only;
//! no epoll available), so one poller thread multiplexes idle keep-alive
//! connections while workers only ever touch connections with bytes
//! waiting. Telemetry flows through `cs2p-obs` under the `serve.*` names
//! (see OBSERVABILITY.md). The pre-PR thread-per-connection server is
//! preserved as [`crate::legacy`] for the `serve_throughput` benchmark.

use crate::http::{read_request, write_response, Request, Response};
use crate::pool::BoundedQueue;
use crate::protocol::{parse_features_query, Health, PredictRequest, PredictResponse, SessionLog};
use crate::store::SessionStore;
use crate::transport::{DeadlineReader, IoHalf, TransportWrapper};
use cs2p_core::engine::ClusterModel;
use cs2p_core::{ClientModel, FeatureVector, PredictionEngine};
use cs2p_ml::hmm::{FilterState, HmmFilter};
use cs2p_obs::{Clock, MonotonicClock};
use parking_lot::Mutex;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Cap on the requested prediction horizon.
const MAX_HORIZON: usize = 32;
/// How long a worker spin-peeks for the next keep-alive request before
/// handing the connection back to the poller.
const LINGER: Duration = Duration::from_micros(300);
/// Poller wakeup granularity for idle connections (shutdown and new
/// connections are condvar-signalled and do not wait for this).
const POLL_INTERVAL: Duration = Duration::from_millis(1);
/// Requests a worker serves from one connection before re-queueing it,
/// so a chatty pipelining client cannot starve the queue.
const MAX_REQUESTS_PER_TURN: u32 = 32;

/// Tuning knobs for [`serve_with`]. `Default` is sized for tests and
/// small deployments; every limit is explicit so the load tests can
/// force eviction and backpressure deterministically.
#[derive(Clone)]
pub struct ServeConfig {
    /// Session-store shards (parallelism of session-state access).
    pub n_shards: usize,
    /// Worker threads handling requests.
    pub n_workers: usize,
    /// Bounded request-queue depth; beyond this the server answers 503.
    pub queue_depth: usize,
    /// Session capacity bound across all shards (LRU beyond this).
    pub max_sessions: usize,
    /// Evict sessions idle for more than this many store accesses
    /// (logical TTL — reproducible in tests; `None` disables).
    pub session_ttl_requests: Option<u64>,
    /// Concurrent connection cap; beyond this new connections get 503.
    pub max_connections: usize,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-response socket write timeout.
    pub write_timeout: Duration,
    /// Value of the `Retry-After` header on 503 responses.
    pub retry_after_seconds: u64,
    /// Slow-peer deadline: total time one request may take to arrive once
    /// its first byte has been read (distinct from the idle keep-alive
    /// wait, which never arms it, and from `read_timeout`, which a
    /// byte-dribbling peer never trips). A violator's connection is cut
    /// and `serve.fault.slow_peer_aborts` bumped. `None` disables.
    pub slow_peer_deadline: Option<Duration>,
    /// Time source for the slow-peer deadline — swap in a
    /// [`cs2p_obs::ManualClock`] for deterministic tests.
    pub clock: Arc<dyn Clock>,
    /// Per-connection transport hook (fault injection, middleboxes).
    /// `None` keeps the statically-dispatched `TcpStream` path.
    pub transport_wrapper: Option<Arc<dyn TransportWrapper>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("n_shards", &self.n_shards)
            .field("n_workers", &self.n_workers)
            .field("queue_depth", &self.queue_depth)
            .field("max_sessions", &self.max_sessions)
            .field("session_ttl_requests", &self.session_ttl_requests)
            .field("max_connections", &self.max_connections)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("retry_after_seconds", &self.retry_after_seconds)
            .field("slow_peer_deadline", &self.slow_peer_deadline)
            .field("transport_wrapper", &self.transport_wrapper.is_some())
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        ServeConfig {
            n_shards: 8,
            n_workers: workers,
            queue_depth: 256,
            max_sessions: 100_000,
            session_ttl_requests: None,
            max_connections: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retry_after_seconds: 1,
            slow_peer_deadline: Some(Duration::from_secs(30)),
            clock: Arc::new(MonotonicClock::new()),
            transport_wrapper: None,
        }
    }
}

/// Per-session server-side state.
#[derive(Debug, Clone)]
struct SessionState {
    /// Index into the engine's model list, or `None` for the global model.
    model: Option<usize>,
    filter: FilterState,
}

/// The HTTP endpoints over a prediction engine — the part of the server
/// that is pure request → response. Shared with [`crate::legacy`] so the
/// benchmark compares serving architectures, not handler code.
pub(crate) struct AppState {
    engine: PredictionEngine,
    sessions: SessionStore<SessionState>,
    logs: Mutex<Vec<SessionLog>>,
    predictions_served: AtomicU64,
}

impl AppState {
    pub(crate) fn new(
        engine: PredictionEngine,
        n_shards: usize,
        max_sessions: usize,
        ttl: Option<u64>,
    ) -> Self {
        AppState {
            engine,
            sessions: SessionStore::new(n_shards, max_sessions, ttl),
            logs: Mutex::new(Vec::new()),
            predictions_served: AtomicU64::new(0),
        }
    }

    pub(crate) fn predictions_served(&self) -> u64 {
        self.predictions_served.load(Ordering::Relaxed)
    }

    pub(crate) fn logs(&self) -> Vec<SessionLog> {
        self.logs.lock().clone()
    }

    pub(crate) fn sessions_live(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn sessions_evicted(&self) -> u64 {
        self.sessions.evicted()
    }

    pub(crate) fn session_capacity(&self) -> usize {
        self.sessions.capacity()
    }

    pub(crate) fn force_evict(&self, session_id: u64) -> bool {
        self.sessions.force_evict(session_id)
    }

    fn model_of(&self, state: &SessionState) -> &ClusterModel {
        match state.model {
            Some(i) => &self.engine.models()[i],
            None => self.engine.global_model(),
        }
    }

    fn lookup_model_index(&self, features: &FeatureVector) -> Option<usize> {
        let model = self.engine.lookup(features);
        self.engine
            .models()
            .iter()
            .position(|m| std::ptr::eq(m, model))
    }

    pub(crate) fn handle(&self, req: &Request) -> Response {
        let _span = cs2p_obs::span("net.server.request");
        let resp = self.route(req);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("net.server.requests", 1);
            cs2p_obs::counter_add("net.server.bytes_in", req.body.len() as u64);
            cs2p_obs::counter_add("net.server.bytes_out", resp.body.len() as u64);
            if resp.status >= 400 {
                cs2p_obs::counter_add("net.server.errors", 1);
            }
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (
            req.method.as_str(),
            req.path.split('?').next().unwrap_or(""),
        ) {
            ("POST", "/predict") => self.handle_predict(req),
            ("GET", "/model") => self.handle_model(req),
            ("POST", "/log") => self.handle_log(req),
            ("GET", "/logs") => {
                let logs = self.logs.lock();
                match serde_json::to_vec(&*logs) {
                    Ok(body) => Response::json(body),
                    Err(_) => Response::error(500, "serialization failed"),
                }
            }
            ("GET", "/stats") => {
                let stats = crate::protocol::LogStats::from_logs(&self.logs.lock());
                match serde_json::to_vec(&stats) {
                    Ok(body) => Response::json(body),
                    Err(_) => Response::error(500, "serialization failed"),
                }
            }
            ("GET", "/healthz") => {
                let health = Health {
                    status: "ok".into(),
                    n_models: self.engine.models().len(),
                    n_sessions: self.sessions.len(),
                    predictions_served: self.predictions_served.load(Ordering::Relaxed),
                    n_logs: self.logs.lock().len(),
                };
                Response::json(serde_json::to_vec(&health).unwrap())
            }
            ("POST" | "GET", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    fn handle_predict(&self, req: &Request) -> Response {
        let Ok(preq) = serde_json::from_slice::<PredictRequest>(&req.body) else {
            return Response::error(400, "malformed PredictRequest");
        };
        if preq.horizon == 0 || preq.horizon > MAX_HORIZON {
            return Response::error(400, "horizon out of range");
        }
        if let Some(w) = preq.measured_mbps {
            if !w.is_finite() || w < 0.0 {
                return Response::error(400, "measured throughput must be finite and nonnegative");
            }
        }

        let mut shard = self.sessions.lock(preq.session_id);
        if shard.get_mut(preq.session_id).is_none() {
            // Never seen (or TTL/LRU-evicted): (re-)initialize from the
            // request's features, or tell the client to re-register.
            let Some(features) = &preq.features else {
                return Response::error(404, "unknown session: send features to (re)register");
            };
            if features.len() != self.engine.schema().len() {
                return Response::error(400, "feature width mismatch");
            }
            let fv = FeatureVector(features.clone());
            let model_idx = self.lookup_model_index(&fv);
            let model = match model_idx {
                Some(i) => &self.engine.models()[i],
                None => self.engine.global_model(),
            };
            shard.insert(
                preq.session_id,
                SessionState {
                    model: model_idx,
                    filter: model.hmm.filter().state(),
                },
            );
        }
        let state = shard
            .get_mut(preq.session_id)
            .expect("session just ensured");

        let model = self.model_of(state);
        let mut filter = HmmFilter::from_state(&model.hmm, state.filter.clone());
        if let Some(w) = preq.measured_mbps {
            filter.observe(w);
        }
        let initial = filter.epoch() == 0;
        let predictions_mbps: Vec<f64> = (1..=preq.horizon)
            .map(|k| {
                if initial && k == 1 {
                    model.initial_median
                } else {
                    filter.predict_ahead(k)
                }
            })
            .collect();
        state.filter = filter.state();
        let cluster_sessions = model.n_sessions;
        drop(shard);

        self.predictions_served.fetch_add(1, Ordering::Relaxed);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("predict.server.served", 1);
            cs2p_obs::gauge_set("serve.sessions", self.sessions.len() as f64);
        }
        let resp = PredictResponse {
            predictions_mbps,
            initial,
            cluster_sessions,
        };
        Response::json(serde_json::to_vec(&resp).unwrap())
    }

    fn handle_model(&self, req: &Request) -> Response {
        let Some(features) = parse_features_query(&req.path) else {
            return Response::error(400, "missing features query");
        };
        if features.len() != self.engine.schema().len() {
            return Response::error(400, "feature width mismatch");
        }
        let cm = ClientModel::for_client(&self.engine, &FeatureVector(features));
        match cm.to_json() {
            Ok(body) => Response::json(body.into_bytes()),
            Err(_) => Response::error(500, "serialization failed"),
        }
    }

    fn handle_log(&self, req: &Request) -> Response {
        let Ok(log) = serde_json::from_slice::<SessionLog>(&req.body) else {
            return Response::error(400, "malformed SessionLog");
        };
        self.logs.lock().push(log);
        Response::new(204, bytes::Bytes::new())
    }
}

/// Decrements the live-connection count when the connection dies,
/// whichever thread drops it.
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One client connection, handed between the poller and the workers.
/// The buffered halves run over [`IoHalf`] (hook-wrappable transports);
/// readiness polling always peeks the raw socket, so fault wrappers see
/// every byte a worker moves but never affect idle multiplexing.
struct Conn {
    stream: TcpStream,
    reader: BufReader<DeadlineReader>,
    writer: BufWriter<IoHalf>,
    nonblocking: bool,
    _slot: ConnSlot,
}

enum PollState {
    /// Bytes are waiting (or already buffered) — hand to a worker.
    Ready,
    /// No data yet; keep watching.
    Idle,
    /// Peer closed or the socket errored — drop the connection.
    Closed,
}

impl Conn {
    fn new(
        stream: TcpStream,
        conn_seq: u64,
        slot: ConnSlot,
        config: &ServeConfig,
    ) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        let (read_half, write_half) =
            IoHalf::pair(&stream, conn_seq, config.transport_wrapper.as_ref())?;
        let deadline_us = config
            .slow_peer_deadline
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64);
        let reader = BufReader::new(DeadlineReader::new(
            read_half,
            Arc::clone(&config.clock),
            deadline_us,
        ));
        let writer = BufWriter::new(write_half);
        Ok(Conn {
            stream,
            reader,
            writer,
            nonblocking: false,
            _slot: slot,
        })
    }

    fn set_blocking(&mut self) -> io::Result<()> {
        if self.nonblocking {
            self.stream.set_nonblocking(false)?;
            self.nonblocking = false;
        }
        Ok(())
    }

    fn set_nonblocking(&mut self) -> io::Result<()> {
        if !self.nonblocking {
            self.stream.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        Ok(())
    }

    /// Non-destructive readiness check (a 1-byte `peek`; nothing is
    /// consumed, so a later blocking read sees the full request).
    fn poll_ready(&mut self) -> PollState {
        if !self.reader.buffer().is_empty() {
            return PollState::Ready;
        }
        if self.set_nonblocking().is_err() {
            return PollState::Closed;
        }
        let mut byte = [0u8; 1];
        match self.stream.peek(&mut byte) {
            Ok(0) => PollState::Closed,
            Ok(_) => PollState::Ready,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => PollState::Idle,
            Err(_) => PollState::Closed,
        }
    }

    /// Spin-peeks (yielding) for up to `window` waiting for the next
    /// keep-alive request, so back-to-back requests skip the poller.
    fn wait_for_data(&mut self, window: Duration) -> PollState {
        let deadline = Instant::now() + window;
        loop {
            match self.poll_ready() {
                PollState::Idle => {
                    if Instant::now() >= deadline {
                        return PollState::Idle;
                    }
                    thread::yield_now();
                }
                state => return state,
            }
        }
    }
}

/// Everything the acceptor, poller, and workers share.
struct Shared {
    app: AppState,
    config: ServeConfig,
    queue: BoundedQueue<Conn>,
    /// Connections waiting to be watched by the poller (newly accepted,
    /// or returned by a worker after going idle).
    intake: StdMutex<Vec<Conn>>,
    intake_cv: Condvar,
    shutdown: AtomicBool,
    live_conns: Arc<AtomicUsize>,
    rejected: AtomicU64,
    accepted: AtomicU64,
}

impl Shared {
    fn intake_lock(&self) -> std::sync::MutexGuard<'_, Vec<Conn>> {
        self.intake
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Answers 503 + `Retry-After` without reading the request (the
    /// request stays unread, so framing cannot desync) and closes.
    fn reject(&self, mut conn: Conn) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.rejected", 1);
        let _ = conn.set_blocking();
        let _ = write_response(
            &mut conn.writer,
            &Response::service_unavailable(self.config.retry_after_seconds),
        );
    }
}

/// Snapshot of the serving counters (also returned by
/// [`ServerHandle::shutdown`], whose final values are exact because all
/// workers have drained by then).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Successful `/predict` responses.
    pub predictions_served: u64,
    /// Sessions currently resident in the store.
    pub sessions_live: usize,
    /// Sessions evicted by TTL or LRU since startup.
    pub sessions_evicted: u64,
    /// The store's total capacity bound.
    pub session_capacity: usize,
    /// Connections answered with 503 backpressure.
    pub rejected: u64,
    /// Connections accepted.
    pub accepted: u64,
}

/// A running prediction server (see the module docs for the thread
/// architecture).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    poller_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total predictions served so far.
    pub fn predictions_served(&self) -> u64 {
        self.shared.app.predictions_served()
    }

    /// Session logs uploaded so far.
    pub fn logs(&self) -> Vec<SessionLog> {
        self.shared.app.logs()
    }

    /// Forcibly evicts a session mid-stream (chaos/ops hook): the next
    /// request for it gets the "unknown session" re-register path, just
    /// like a TTL/LRU eviction. Counted in `serve.fault.forced_evictions`
    /// (and as a regular eviction). Returns whether it was present.
    pub fn force_evict(&self, session_id: u64) -> bool {
        self.shared.app.force_evict(session_id)
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            predictions_served: self.shared.app.predictions_served(),
            sessions_live: self.shared.app.sessions_live(),
            sessions_evicted: self.shared.app.sessions_evicted(),
            session_capacity: self.shared.app.session_capacity(),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
        }
    }

    /// Gracefully drains and stops the server: stop accepting, finish
    /// every request already received or readable, join all threads.
    /// Completes in bounded time (worst case one read-timeout for a
    /// stalled peer) and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking acceptor with a throwaway loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wake the poller; it does a final ready sweep and exits.
        self.shared.intake_cv.notify_all();
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
        // Workers drain the queue, then see `None` and exit.
        self.shared.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Anything a worker handed back after the poller left is idle by
        // definition — safe to close now that no thread will touch it.
        self.shared.intake_lock().clear();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts the server on `addr` (use port 0 for an ephemeral port) with
/// default [`ServeConfig`].
pub fn serve(engine: PredictionEngine, addr: &str) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServeConfig::default())
}

/// Starts the server on `addr` with explicit tuning knobs.
pub fn serve_with(
    engine: PredictionEngine,
    addr: &str,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let app = AppState::new(
        engine,
        config.n_shards,
        config.max_sessions,
        config.session_ttl_requests,
    );
    let n_workers = config.n_workers.max(1);
    let shared = Arc::new(Shared {
        app,
        queue: BoundedQueue::new(config.queue_depth),
        config,
        intake: StdMutex::new(Vec::new()),
        intake_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        live_conns: Arc::new(AtomicUsize::new(0)),
        rejected: AtomicU64::new(0),
        accepted: AtomicU64::new(0),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("cs2p-accept".into())
        .spawn(move || run_acceptor(listener, accept_shared))?;
    let poll_shared = Arc::clone(&shared);
    let poller_thread = thread::Builder::new()
        .name("cs2p-poll".into())
        .spawn(move || run_poller(poll_shared))?;
    let workers = (0..n_workers)
        .map(|i| {
            let worker_shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("cs2p-worker-{i}"))
                .spawn(move || run_worker(worker_shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        poller_thread: Some(poller_thread),
        workers,
    })
}

/// Blocking accept loop. Woken at shutdown by a loopback connect from
/// `shutdown()` — no sleep-polling.
fn run_acceptor(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing shutdown).
            return;
        }
        let conn_seq = shared.accepted.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.accepted", 1);
        let live = shared.live_conns.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = ConnSlot(Arc::clone(&shared.live_conns));
        let conn = match Conn::new(stream, conn_seq, slot, &shared.config) {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if live > shared.config.max_connections {
            shared.reject(conn);
            continue;
        }
        shared.intake_lock().push(conn);
        shared.intake_cv.notify_all();
    }
}

/// Multiplexes idle connections: new and returned connections arrive via
/// the intake, ready ones go to the worker queue (or get 503 when it is
/// full). Parks on the intake condvar; `POLL_INTERVAL` bounds how late a
/// newly readable connection is noticed.
fn run_poller(shared: Arc<Shared>) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        {
            let mut intake = shared.intake_lock();
            conns.append(&mut intake);
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].poll_ready() {
                PollState::Ready => {
                    let mut conn = conns.swap_remove(i);
                    progressed = true;
                    if conn.set_blocking().is_err() {
                        continue;
                    }
                    match shared.queue.try_push(conn) {
                        Ok(depth) => {
                            if cs2p_obs::enabled() {
                                cs2p_obs::gauge_set("serve.queue_depth", depth as f64);
                            }
                        }
                        Err(conn) => shared.reject(conn),
                    }
                }
                PollState::Closed => {
                    conns.swap_remove(i);
                    progressed = true;
                }
                PollState::Idle => i += 1,
            }
        }
        if shutting_down {
            // Ready connections were swept to the queue above; what is
            // left has no request outstanding, so it can close.
            conns.clear();
            shared.intake_lock().clear();
            return;
        }
        if !progressed {
            let intake = shared.intake_lock();
            if intake.is_empty() {
                match shared.intake_cv.wait_timeout(intake, POLL_INTERVAL) {
                    Ok((guard, _)) => drop(guard),
                    Err(poison) => drop(poison.into_inner()),
                }
            }
        }
    }
}

/// Worker loop: pull a ready connection, serve its request(s), return it
/// to the poller when it goes idle. After `close()` the queue hands out
/// its backlog before `None`, so draining is automatic.
fn run_worker(shared: Arc<Shared>) {
    while let Some(conn) = shared.queue.pop() {
        if cs2p_obs::enabled() {
            cs2p_obs::gauge_set("serve.queue_depth", shared.queue.len() as f64);
        }
        serve_turn(conn, &shared);
    }
}

/// Serves requests from one ready connection until it goes idle, closes,
/// errors, or exhausts its fairness budget.
fn serve_turn(mut conn: Conn, shared: &Shared) {
    let mut served: u32 = 0;
    loop {
        if conn.set_blocking().is_err() {
            return;
        }
        match read_request(&mut conn.reader) {
            Ok(Some(req)) => {
                // Request fully received: disarm the slow-peer deadline
                // before doing any (unbounded-by-it) handler work.
                conn.reader.get_mut().finish_request();
                let _span = cs2p_obs::span("serve.request");
                let resp = shared.app.handle(&req);
                if write_response(&mut conn.writer, &resp).is_err() {
                    cs2p_obs::counter_add("serve.fault.write_errors", 1);
                    return;
                }
                served += 1;
            }
            Ok(None) => return, // peer closed keep-alive cleanly
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Unparseable framing (truncated/corrupted request).
                cs2p_obs::counter_add("serve.fault.bad_frames", 1);
                let _ = write_response(&mut conn.writer, &Response::error(400, &e.to_string()));
                return;
            }
            Err(_) => {
                // Read timeout, slow-peer abort, or peer reset mid-request.
                cs2p_obs::counter_add("serve.fault.read_errors", 1);
                return;
            }
        }

        // Pipelined bytes already buffered are in-flight work: serve them
        // (even during drain) before deciding what to do with the conn.
        let more_buffered = !conn.reader.buffer().is_empty();
        if !more_buffered {
            if shared.shutdown.load(Ordering::SeqCst) {
                return; // drained: every received request was answered
            }
            match conn.wait_for_data(LINGER) {
                PollState::Ready => {}
                PollState::Closed => return,
                PollState::Idle => {
                    // Hand the idle connection back to the poller.
                    shared.intake_lock().push(conn);
                    shared.intake_cv.notify_all();
                    return;
                }
            }
        }
        if served >= MAX_REQUESTS_PER_TURN {
            // Fairness: let queued connections go first. If the queue is
            // full, keep serving rather than rejecting an active conn.
            match shared.queue.try_push(conn) {
                Ok(_) => return,
                Err(back) => {
                    conn = back;
                    served = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};
    use cs2p_testkit::scenarios::tiny_engine;

    fn send(addr: SocketAddr, req: &Request) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, req).unwrap();
        read_response(&mut reader).unwrap()
    }

    fn predict(addr: SocketAddr, preq: &PredictRequest) -> PredictResponse {
        let body = serde_json::to_vec(preq).unwrap();
        let resp = send(addr, &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 200, "body: {:?}", resp.body);
        serde_json::from_slice(&resp.body).unwrap()
    }

    #[test]
    fn full_prediction_session_over_http() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        // First request: features, no measurement -> initial prediction.
        let r1 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: Some(vec![1]),
                measured_mbps: None,
                horizon: 3,
            },
        );
        assert!(r1.initial);
        assert_eq!(r1.predictions_mbps.len(), 3);
        assert!((r1.predictions_mbps[0] - 5.0).abs() < 0.5);

        // Midstream: send a measurement, get HMM predictions.
        let r2 = predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: None,
                measured_mbps: Some(5.1),
                horizon: 1,
            },
        );
        assert!(!r2.initial);
        assert!((r2.predictions_mbps[0] - 5.0).abs() < 0.5);

        assert_eq!(server.predictions_served(), 2);
        server.shutdown();
    }

    #[test]
    fn unknown_session_without_features_is_404() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let body = serde_json::to_vec(&PredictRequest {
            session_id: 9,
            features: None,
            measured_mbps: Some(1.0),
            horizon: 1,
        })
        .unwrap();
        let resp = send(server.addr(), &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 404, "unknown session must trigger re-init");
        server.shutdown();
    }

    #[test]
    fn model_endpoint_serves_client_model() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let resp = send(
            server.addr(),
            &Request::new("GET", "/model?features=0", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 200);
        let cm = ClientModel::from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!((cm.model.initial_median - 1.0).abs() < 0.5);
        assert!(resp.body.len() < 5 * 1024, "model payload exceeds 5 KB");
        server.shutdown();
    }

    #[test]
    fn log_upload_and_retrieval() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let log = SessionLog {
            session_id: 3,
            strategy: "CS2P+MPC".into(),
            qoe: 100.0,
            avg_bitrate_kbps: 1000.0,
            good_ratio: 1.0,
            rebuffer_seconds: 0.0,
            startup_delay_seconds: 0.5,
            throughput_pairs: vec![],
            bitrates_kbps: vec![],
        };
        let resp = send(
            server.addr(),
            &Request::new("POST", "/log", serde_json::to_vec(&log).unwrap()),
        );
        assert_eq!(resp.status, 204);
        assert_eq!(server.logs(), vec![log]);
        server.shutdown();
    }

    #[test]
    fn stats_endpoint_aggregates_logs() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        for (strategy, qoe) in [("CS2P+MPC", 100.0), ("CS2P+MPC", 300.0), ("HM+MPC", 50.0)] {
            let log = SessionLog {
                session_id: 1,
                strategy: strategy.into(),
                qoe,
                avg_bitrate_kbps: 1000.0,
                good_ratio: 1.0,
                rebuffer_seconds: 0.0,
                startup_delay_seconds: 0.5,
                throughput_pairs: vec![],
                bitrates_kbps: vec![],
            };
            let resp = send(
                server.addr(),
                &Request::new("POST", "/log", serde_json::to_vec(&log).unwrap()),
            );
            assert_eq!(resp.status, 204);
        }
        let resp = send(
            server.addr(),
            &Request::new("GET", "/stats", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 200);
        let stats: crate::protocol::LogStats = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(stats.strategies.len(), 2);
        assert_eq!(stats.strategies[0].n_sessions, 2);
        assert!((stats.strategies[0].mean_qoe - 200.0).abs() < 1e-12);
        server.shutdown();
    }

    #[test]
    fn healthz_reports_counters() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        predict(
            server.addr(),
            &PredictRequest {
                session_id: 5,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let resp = send(
            server.addr(),
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        );
        let health: Health = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.n_sessions, 1);
        assert_eq!(health.predictions_served, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_endpoint_404s_and_bad_method_405s() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let resp = send(
            server.addr(),
            &Request::new("GET", "/nope", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 404);
        let resp = send(
            server.addr(),
            &Request::new("DELETE", "/predict", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 405);
        server.shutdown();
    }

    #[test]
    fn keep_alive_connection_serves_many_requests() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for i in 0..5 {
            let preq = PredictRequest {
                session_id: 42,
                features: if i == 0 { Some(vec![1]) } else { None },
                measured_mbps: if i == 0 { None } else { Some(5.0) },
                horizon: 1,
            };
            let req = Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap());
            write_request(&mut writer, &req).unwrap();
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.predictions_served(), 5);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_get_responses() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // Write several requests back-to-back before reading anything.
        let n = 4;
        for i in 0..n {
            let preq = PredictRequest {
                session_id: 77,
                features: if i == 0 { Some(vec![0]) } else { None },
                measured_mbps: if i == 0 { None } else { Some(1.0) },
                horizon: 1,
            };
            write_request(
                &mut writer,
                &Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap()),
            )
            .unwrap();
        }
        for _ in 0..n {
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(server.predictions_served(), n as u64);
        server.shutdown();
    }

    #[test]
    fn invalid_measurement_rejected() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        predict(
            server.addr(),
            &PredictRequest {
                session_id: 8,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let raw = br#"{"session_id":8,"features":null,"measured_mbps":-1.0,"horizon":1}"#;
        let resp = send(server.addr(), &Request::new("POST", "/predict", &raw[..]));
        assert_eq!(resp.status, 400);
        server.shutdown();
    }

    #[test]
    fn concurrent_sessions_have_independent_state() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|sid| {
                thread::spawn(move || {
                    let isp = (sid % 2) as u32;
                    let r = predict(
                        addr,
                        &PredictRequest {
                            session_id: 100 + sid,
                            features: Some(vec![isp]),
                            measured_mbps: None,
                            horizon: 1,
                        },
                    );
                    (isp, r.predictions_mbps[0])
                })
            })
            .collect();
        for h in handles {
            let (isp, pred) = h.join().unwrap();
            let expected = if isp == 0 { 1.0 } else { 5.0 };
            assert!((pred - expected).abs() < 0.5, "isp {isp}: {pred}");
        }
        server.shutdown();
    }

    #[test]
    fn connection_limit_yields_503_with_retry_after() {
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        // Occupy the only slot with a live keep-alive connection.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        // The second connection must be refused with backpressure.
        let resp = send(
            server.addr(),
            &Request::new("GET", "/healthz", bytes::Bytes::new()),
        );
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let stats = server.shutdown();
        assert!(stats.rejected >= 1);
    }

    #[test]
    fn lru_eviction_bounds_sessions_and_evicted_reregisters() {
        let config = ServeConfig {
            n_shards: 1,
            max_sessions: 2,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        for sid in 0..3 {
            predict(
                addr,
                &PredictRequest {
                    session_id: sid,
                    features: Some(vec![0]),
                    measured_mbps: None,
                    horizon: 1,
                },
            );
        }
        let stats = server.stats();
        assert!(stats.sessions_live <= 2, "live: {}", stats.sessions_live);
        assert_eq!(stats.sessions_evicted, 1);
        // Session 0 was LRU-evicted; without features it is unknown…
        let body = serde_json::to_vec(&PredictRequest {
            session_id: 0,
            features: None,
            measured_mbps: Some(1.0),
            horizon: 1,
        })
        .unwrap();
        let resp = send(addr, &Request::new("POST", "/predict", body));
        assert_eq!(resp.status, 404);
        // …and with features it cleanly re-registers.
        let r = predict(
            addr,
            &PredictRequest {
                session_id: 0,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        assert!(r.initial);
        server.shutdown();
    }

    #[test]
    fn shutdown_twice_via_drop_is_safe() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        predict(
            addr,
            &PredictRequest {
                session_id: 1,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 1,
            },
        );
        let stats = server.shutdown();
        assert_eq!(stats.predictions_served, 1);
        // The port is released: a fresh server can bind it again.
        let again = serve(tiny_engine(), &addr.to_string());
        if let Ok(s) = again {
            s.shutdown();
        }
    }

    #[test]
    fn worker_count_one_still_serves_concurrent_clients() {
        let config = ServeConfig {
            n_workers: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|sid| {
                thread::spawn(move || {
                    for epoch in 0..3 {
                        let preq = PredictRequest {
                            session_id: 200 + sid,
                            features: if epoch == 0 { Some(vec![1]) } else { None },
                            measured_mbps: if epoch == 0 { None } else { Some(5.0) },
                            horizon: 1,
                        };
                        predict(addr, &preq);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.predictions_served(), 12);
        server.shutdown();
    }
}
