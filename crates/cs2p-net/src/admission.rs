//! Adaptive admission control: a leveled degradation ladder for overload.
//!
//! CS2P's HMM path is the most expensive thing the server does per
//! request, yet the paper's own evaluation (§7) shows the simple
//! predictors it beats — harmonic mean, last sample — still deliver
//! usable predictions at a tiny fraction of the cost. The
//! [`AdmissionController`] exploits exactly that: instead of answering
//! overload with a blanket 503 cliff (which translates directly into
//! rebuffers for players mid-stream), the server steps down a ladder of
//! progressively cheaper answers and climbs back up when pressure
//! subsides:
//!
//! | level | answer | cost |
//! |-------|--------|------|
//! | [`AdmissionLevel::Full`] | HMM lookup + per-session filter update | full |
//! | [`AdmissionLevel::Degraded`] | cluster-prior median, no filter update | shard read |
//! | [`AdmissionLevel::Fallback`] | harmonic mean of the session's own recent measurements | side-table only |
//! | [`AdmissionLevel::Shed`] | 503 + `Retry-After` | last resort |
//!
//! Level selection is watermark-driven: the controller folds the serve
//! queue's occupancy fraction and an EWMA of request-handling latency
//! (both sampled on the server's injectable [`Clock`]) into a single
//! pressure score in `[0, ∞)` and maps it through three thresholds.
//! Escalation is immediate — a saturated queue must brown out *now* —
//! but recovery is hysteretic: the controller steps down one level at a
//! time, and only after pressure has stayed below the current level's
//! threshold minus [`AdmissionConfig::recover_margin`] for a full
//! [`AdmissionConfig::hold_us`] dwell, so levels cannot flap around a
//! watermark.
//!
//! The ladder is **opt-in**: `AdmissionConfig::default()` is disabled
//! and the server behaves exactly as before (queue-full connections are
//! rejected with 503, everything admitted is served at Full). Tests and
//! the `degradation-bench` enable it explicitly, or pin a level with
//! [`AdmissionController::force`] for deterministic ladder forcing.

use cs2p_obs::Clock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// One rung of the degradation ladder, ordered cheapest-answer last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AdmissionLevel {
    /// Full service: HMM lookup, per-session filter update, WAL append.
    Full = 0,
    /// Cluster-prior median for the session's pinned model; the filter
    /// is neither consulted nor updated (the measurement is dropped).
    Degraded = 1,
    /// Harmonic mean of the session's own recent measurements from the
    /// lock-free side table — no model and no shard-store access.
    Fallback = 2,
    /// 503 + `Retry-After`: the pre-ladder behaviour, last resort only.
    Shed = 3,
}

impl AdmissionLevel {
    /// All levels, ladder order (used by ladder-forcing harnesses).
    pub const ALL: [AdmissionLevel; 4] = [
        AdmissionLevel::Full,
        AdmissionLevel::Degraded,
        AdmissionLevel::Fallback,
        AdmissionLevel::Shed,
    ];

    /// Stable lowercase name (ops surface, logs, test assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            AdmissionLevel::Full => "full",
            AdmissionLevel::Degraded => "degraded",
            AdmissionLevel::Fallback => "fallback",
            AdmissionLevel::Shed => "shed",
        }
    }

    fn from_u8(v: u8) -> AdmissionLevel {
        match v {
            0 => AdmissionLevel::Full,
            1 => AdmissionLevel::Degraded,
            2 => AdmissionLevel::Fallback,
            _ => AdmissionLevel::Shed,
        }
    }
}

impl std::fmt::Display for AdmissionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Watermarks and hysteresis knobs for the [`AdmissionController`].
///
/// Pressure is `max(queue_frac, latency_ewma / latency_budget_us)`;
/// the three `*_at` thresholds partition it into the four levels. The
/// defaults are disabled: the ladder is a deliberate operational
/// opt-in, because it changes the contract of a 503 (from "the server
/// refused" to "the server answered with a cheaper predictor").
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Master switch. When false the controller always reports
    /// [`AdmissionLevel::Full`] (unless a level is forced) and samples
    /// cost nothing but an atomic load.
    pub enabled: bool,
    /// Pressure at or above which service degrades to cluster priors.
    pub degraded_at: f64,
    /// Pressure at or above which service falls back to harmonic mean.
    pub fallback_at: f64,
    /// Pressure at or above which requests are shed with 503.
    pub shed_at: f64,
    /// Recovery hysteresis: to step down a level, pressure must sit
    /// below the current level's threshold minus this margin.
    pub recover_margin: f64,
    /// Recovery dwell (µs on the injectable clock): pressure must stay
    /// continuously below the recovery watermark this long before each
    /// single-level step down.
    pub hold_us: u64,
    /// Denominator for the latency signal: an EWMA of request-handling
    /// latency equal to the budget contributes pressure 1.0.
    pub latency_budget_us: u64,
    /// EWMA smoothing factor for the latency signal, in `(0, 1]`.
    pub latency_alpha: f64,
    /// Pin the ladder to one level, bypassing the watermarks entirely
    /// (deterministic overload forcing in tests and benches).
    pub force_level: Option<AdmissionLevel>,
    /// Per-session history window for the Fallback side table. Bounded
    /// so Fallback memory is O(sessions × window) regardless of session
    /// length; within the window, Fallback reproduces the paper's
    /// harmonic-mean baseline exactly.
    pub fallback_window: usize,
    /// Hard cap on tracked sessions in the Fallback side table. A
    /// session arriving past the cap is answered from its own in-flight
    /// measurement only (deterministic: nothing is evicted).
    pub fallback_max_sessions: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            degraded_at: 0.70,
            fallback_at: 0.85,
            shed_at: 0.95,
            recover_margin: 0.15,
            hold_us: 200_000,
            latency_budget_us: 250_000,
            latency_alpha: 0.2,
            force_level: None,
            fallback_window: 64,
            fallback_max_sessions: 65_536,
        }
    }
}

impl AdmissionConfig {
    /// An enabled configuration with the default watermarks — what a
    /// production deployment would run.
    pub fn watermarks() -> Self {
        AdmissionConfig {
            enabled: true,
            ..AdmissionConfig::default()
        }
    }
}

/// Point-in-time view of the controller (ops surface, `ServeStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Current ladder level.
    pub level: AdmissionLevel,
    /// Level transitions (watermark-driven and forced).
    pub transitions: u64,
    /// Predictions answered at Full level.
    pub served_full: u64,
    /// Predictions answered from cluster priors.
    pub served_degraded: u64,
    /// Predictions answered from the harmonic-mean side table.
    pub served_fallback: u64,
    /// Requests shed with 503 by the admission layer.
    pub shed: u64,
    /// Fallback-level requests with no measurement history at all
    /// (answered 503 — the harmonic-mean baseline has no initial
    /// prediction either; see `HarmonicMean::predict_initial`).
    pub fallback_misses: u64,
}

/// Watermark signal state, guarded by one short mutex.
#[derive(Debug, Default)]
struct Signals {
    /// Latest serve-queue occupancy fraction in `[0, 1]`.
    queue_frac: f64,
    /// EWMA of request-handling latency (µs, injectable clock).
    latency_ewma_us: f64,
    /// Since when (clock µs) pressure has sat below the recovery
    /// watermark of the current level; `None` while above it.
    below_since_us: Option<u64>,
}

/// The watermark-driven ladder state machine. One per server; all
/// methods are thread-safe and cheap enough for the request path.
pub struct AdmissionController {
    config: AdmissionConfig,
    clock: Arc<dyn Clock>,
    /// Current level (`AdmissionLevel as u8`).
    level: AtomicU8,
    /// Forced level + 1; 0 means "watermark-driven".
    forced: AtomicU8,
    transitions: AtomicU64,
    served_full: AtomicU64,
    served_degraded: AtomicU64,
    served_fallback: AtomicU64,
    shed: AtomicU64,
    fallback_misses: AtomicU64,
    signals: Mutex<Signals>,
    fallback: FallbackTracker,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("level", &self.level())
            .field("transitions", &self.transitions.load(Ordering::Relaxed))
            .finish()
    }
}

impl AdmissionController {
    /// Creates a controller on the server's injectable clock.
    pub fn new(config: AdmissionConfig, clock: Arc<dyn Clock>) -> Self {
        let fallback = FallbackTracker::new(config.fallback_window, config.fallback_max_sessions);
        let forced = config.force_level.map_or(0, |l| l as u8 + 1);
        AdmissionController {
            config,
            clock,
            level: AtomicU8::new(AdmissionLevel::Full as u8),
            forced: AtomicU8::new(forced),
            transitions: AtomicU64::new(0),
            served_full: AtomicU64::new(0),
            served_degraded: AtomicU64::new(0),
            served_fallback: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            fallback_misses: AtomicU64::new(0),
            signals: Mutex::new(Signals::default()),
            fallback,
        }
    }

    /// Whether the watermark machinery is active (forced levels work
    /// even when disabled — that is what deterministic tests use).
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The level requests are admitted at right now.
    pub fn level(&self) -> AdmissionLevel {
        match self.forced.load(Ordering::Acquire) {
            0 => AdmissionLevel::from_u8(self.level.load(Ordering::Acquire)),
            f => AdmissionLevel::from_u8(f - 1),
        }
    }

    /// Pins (or, with `None`, unpins) the ladder level. Counts as a
    /// transition when the effective level changes.
    pub fn force(&self, level: Option<AdmissionLevel>) {
        let before = self.level();
        self.forced
            .store(level.map_or(0, |l| l as u8 + 1), Ordering::Release);
        if level.is_none() && self.config.enabled {
            // Unpinning falls back to whatever the live signals demand
            // right now — the stored watermark level went stale while
            // samples were ignored under the pin.
            let mut sig = self.signals.lock();
            let target = self.target_level(self.pressure_of(&sig));
            sig.below_since_us = None;
            self.level.store(target as u8, Ordering::Release);
        }
        let after = self.level();
        if before != after {
            self.note_transition(after);
            // A forced recovery must not be immediately undone by a
            // stale high-pressure sample's dwell bookkeeping.
            self.signals.lock().below_since_us = None;
        }
    }

    /// Feeds a serve-queue occupancy sample (`depth` of `capacity`).
    pub fn note_queue(&self, depth: usize, capacity: usize) {
        if !self.config.enabled {
            return;
        }
        let frac = if capacity == 0 {
            0.0
        } else {
            (depth as f64 / capacity as f64).clamp(0.0, 1.0)
        };
        let mut sig = self.signals.lock();
        sig.queue_frac = frac;
        self.reevaluate(&mut sig);
    }

    /// Feeds one request-handling latency sample (µs on the clock).
    pub fn note_latency(&self, us: u64) {
        if !self.config.enabled {
            return;
        }
        let a = self.config.latency_alpha.clamp(0.0, 1.0);
        let mut sig = self.signals.lock();
        sig.latency_ewma_us = a * us as f64 + (1.0 - a) * sig.latency_ewma_us;
        self.reevaluate(&mut sig);
    }

    /// Records a prediction answered at `level` (one per 200, singleton
    /// or batch entry).
    pub fn note_served(&self, level: AdmissionLevel) {
        match level {
            AdmissionLevel::Full => {
                self.served_full.fetch_add(1, Ordering::Relaxed);
                cs2p_obs::counter_add("serve.admission.full", 1);
            }
            AdmissionLevel::Degraded => {
                self.served_degraded.fetch_add(1, Ordering::Relaxed);
                cs2p_obs::counter_add("serve.admission.degraded", 1);
            }
            AdmissionLevel::Fallback => {
                self.served_fallback.fetch_add(1, Ordering::Relaxed);
                cs2p_obs::counter_add("serve.admission.fallback", 1);
            }
            AdmissionLevel::Shed => unreachable!("shed answers are not served"),
        }
    }

    /// Records a request shed with 503 by the admission layer.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.admission.shed", 1);
    }

    /// Records a Fallback-level request that had no measurement at all.
    pub fn note_fallback_miss(&self) {
        self.fallback_misses.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.admission.fallback_misses", 1);
    }

    /// The session-measurement side table the Fallback level answers
    /// from (and every measurement-carrying request feeds when the
    /// ladder is enabled).
    pub fn fallback_tracker(&self) -> &FallbackTracker {
        &self.fallback
    }

    /// Point-in-time counters for the ops surface and `ServeStats`.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            level: self.level(),
            transitions: self.transitions.load(Ordering::Relaxed),
            served_full: self.served_full.load(Ordering::Relaxed),
            served_degraded: self.served_degraded.load(Ordering::Relaxed),
            served_fallback: self.served_fallback.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            fallback_misses: self.fallback_misses.load(Ordering::Relaxed),
        }
    }

    /// Combined pressure score right now (ops surface).
    pub fn pressure(&self) -> f64 {
        let sig = self.signals.lock();
        self.pressure_of(&sig)
    }

    fn pressure_of(&self, sig: &Signals) -> f64 {
        let latency = if self.config.latency_budget_us == 0 {
            0.0
        } else {
            sig.latency_ewma_us / self.config.latency_budget_us as f64
        };
        sig.queue_frac.max(latency)
    }

    /// Threshold that put the ladder at `level` (recovery reference).
    fn threshold_of(&self, level: AdmissionLevel) -> f64 {
        match level {
            AdmissionLevel::Full => 0.0,
            AdmissionLevel::Degraded => self.config.degraded_at,
            AdmissionLevel::Fallback => self.config.fallback_at,
            AdmissionLevel::Shed => self.config.shed_at,
        }
    }

    fn target_level(&self, pressure: f64) -> AdmissionLevel {
        if pressure >= self.config.shed_at {
            AdmissionLevel::Shed
        } else if pressure >= self.config.fallback_at {
            AdmissionLevel::Fallback
        } else if pressure >= self.config.degraded_at {
            AdmissionLevel::Degraded
        } else {
            AdmissionLevel::Full
        }
    }

    /// Re-derives the level from the signals. Escalation is immediate;
    /// recovery steps down one level per completed dwell below the
    /// current level's recovery watermark.
    fn reevaluate(&self, sig: &mut Signals) {
        if self.forced.load(Ordering::Acquire) != 0 {
            return;
        }
        let pressure = self.pressure_of(sig);
        let current = AdmissionLevel::from_u8(self.level.load(Ordering::Acquire));
        let target = self.target_level(pressure);
        if target > current {
            sig.below_since_us = None;
            self.level.store(target as u8, Ordering::Release);
            self.note_transition(target);
            return;
        }
        if current == AdmissionLevel::Full {
            sig.below_since_us = None;
            return;
        }
        let recover_below = (self.threshold_of(current) - self.config.recover_margin).max(0.0);
        if pressure >= recover_below {
            sig.below_since_us = None;
            return;
        }
        let now = self.clock.now_micros();
        match sig.below_since_us {
            None => sig.below_since_us = Some(now),
            Some(since) if now.saturating_sub(since) >= self.config.hold_us => {
                let next = AdmissionLevel::from_u8(current as u8 - 1);
                self.level.store(next as u8, Ordering::Release);
                self.note_transition(next);
                // Each step down re-arms its own dwell.
                sig.below_since_us = Some(now);
            }
            Some(_) => {}
        }
    }

    fn note_transition(&self, to: AdmissionLevel) {
        self.transitions.fetch_add(1, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.admission.transitions", 1);
        cs2p_obs::gauge_set("serve.admission.level", to as u8 as f64);
    }
}

/// Per-session recent-measurement side table for the Fallback level.
///
/// Deliberately *not* the shard store: no LRU, no TTL, no WAL, no model
/// pins — a plain sharded map of bounded measurement rings that the
/// request path feeds opportunistically. Within a session's window this
/// reproduces the paper's harmonic-mean baseline exactly:
/// `harmonic_mean(history)` falling back to the last sample when the
/// mean is undefined (any non-positive sample), and *no* answer at all
/// for a session that never measured anything.
pub struct FallbackTracker {
    shards: Vec<Mutex<HashMap<u64, Vec<f64>>>>,
    window: usize,
    max_per_shard: usize,
}

/// Shard count for the side table: collisions only cost lock sharing.
const FALLBACK_SHARDS: usize = 16;

impl std::fmt::Debug for FallbackTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FallbackTracker")
            .field("window", &self.window)
            .field("sessions", &self.len())
            .finish()
    }
}

impl FallbackTracker {
    /// Creates a tracker holding at most `window` samples per session
    /// and `max_sessions` sessions overall.
    pub fn new(window: usize, max_sessions: usize) -> Self {
        let max_per_shard = max_sessions.div_ceil(FALLBACK_SHARDS).max(1);
        FallbackTracker {
            shards: (0..FALLBACK_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            window: window.max(1),
            max_per_shard,
        }
    }

    fn shard_of(&self, session_id: u64) -> usize {
        // Same splitmix-style spread the loadgen uses; sessions arrive
        // with dense ids, so a plain modulo would pile onto one shard.
        (session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Records one measurement for `session_id`, trimming to the
    /// window. Sessions past the capacity cap are silently not tracked
    /// (deterministic: nothing is evicted to make room).
    pub fn record(&self, session_id: u64, mbps: f64) {
        let mut shard = self.shards[self.shard_of(session_id)].lock();
        if !shard.contains_key(&session_id) && shard.len() >= self.max_per_shard {
            return;
        }
        let ring = shard.entry(session_id).or_default();
        ring.push(mbps);
        if ring.len() > self.window {
            let excess = ring.len() - self.window;
            ring.drain(..excess);
        }
    }

    /// The harmonic-mean prediction for `session_id`, exactly as the
    /// paper baseline computes it: `harmonic_mean(history)` or, when
    /// undefined, the last sample; `None` when nothing was measured.
    pub fn predict(&self, session_id: u64) -> Option<f64> {
        let shard = self.shards[self.shard_of(session_id)].lock();
        let ring = shard.get(&session_id)?;
        cs2p_ml::stats::harmonic_mean(ring).or_else(|| ring.last().copied())
    }

    /// Forgets a completed session.
    pub fn remove(&self, session_id: u64) {
        self.shards[self.shard_of(session_id)]
            .lock()
            .remove(&session_id);
    }

    /// Tracked-session count (ops and tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no session is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs2p_obs::ManualClock;

    fn enabled_config() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            hold_us: 1_000,
            ..AdmissionConfig::default()
        }
    }

    fn controller(clock: &Arc<ManualClock>) -> AdmissionController {
        AdmissionController::new(enabled_config(), Arc::clone(clock) as Arc<dyn Clock>)
    }

    #[test]
    fn disabled_controller_stays_full_under_any_signal() {
        let clock = Arc::new(ManualClock::new());
        let c = AdmissionController::new(AdmissionConfig::default(), clock);
        c.note_queue(100, 100);
        c.note_latency(10_000_000);
        assert_eq!(c.level(), AdmissionLevel::Full);
        assert_eq!(c.snapshot().transitions, 0);
    }

    #[test]
    fn escalation_is_immediate_and_maps_watermarks_to_levels() {
        let clock = Arc::new(ManualClock::new());
        let c = controller(&clock);
        c.note_queue(75, 100);
        assert_eq!(c.level(), AdmissionLevel::Degraded);
        c.note_queue(90, 100);
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        c.note_queue(100, 100);
        assert_eq!(c.level(), AdmissionLevel::Shed);
        assert_eq!(c.snapshot().transitions, 3);
    }

    #[test]
    fn recovery_requires_a_full_dwell_below_the_watermark() {
        let clock = Arc::new(ManualClock::new());
        let c = controller(&clock);
        c.note_queue(95, 100);
        assert_eq!(c.level(), AdmissionLevel::Shed);
        // Pressure drops, but the dwell has not elapsed: no recovery.
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Shed);
        clock.advance(999);
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Shed);
        // Dwell complete: exactly one step down per completed dwell.
        clock.advance(1);
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        clock.advance(1_000);
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Degraded);
        clock.advance(1_000);
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Full);
    }

    #[test]
    fn a_pressure_spike_mid_dwell_rearms_the_dwell() {
        let clock = Arc::new(ManualClock::new());
        let c = controller(&clock);
        c.note_queue(90, 100);
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        c.note_queue(0, 100);
        clock.advance(900);
        // A flap back above the recovery watermark clears the dwell…
        c.note_queue(80, 100);
        clock.advance(200);
        // …so 1100 µs after the first low sample the level still holds.
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        clock.advance(1_000);
        c.note_queue(0, 100);
        assert_eq!(c.level(), AdmissionLevel::Degraded);
    }

    #[test]
    fn latency_ewma_is_a_second_pressure_source() {
        let clock = Arc::new(ManualClock::new());
        let c = AdmissionController::new(
            AdmissionConfig {
                enabled: true,
                latency_budget_us: 1_000,
                latency_alpha: 1.0,
                ..AdmissionConfig::default()
            },
            clock,
        );
        c.note_latency(500);
        assert_eq!(c.level(), AdmissionLevel::Full);
        c.note_latency(960);
        assert_eq!(c.level(), AdmissionLevel::Shed);
    }

    #[test]
    fn forcing_pins_the_level_and_counts_transitions() {
        let clock = Arc::new(ManualClock::new());
        let c = controller(&clock);
        c.force(Some(AdmissionLevel::Fallback));
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        // Watermark samples cannot move a forced level.
        c.note_queue(100, 100);
        assert_eq!(c.level(), AdmissionLevel::Fallback);
        c.force(Some(AdmissionLevel::Fallback));
        let t = c.snapshot().transitions;
        c.force(None);
        // Unpinning falls back to the watermark-driven level (Shed,
        // from the sample above), which is a transition.
        assert_eq!(c.level(), AdmissionLevel::Shed);
        assert_eq!(c.snapshot().transitions, t + 1);
    }

    #[test]
    fn fallback_tracker_matches_the_harmonic_mean_baseline_exactly() {
        use cs2p_core::baselines::HarmonicMean;
        use cs2p_core::ThroughputPredictor;
        let tracker = FallbackTracker::new(64, 1024);
        let mut hm = HarmonicMean::new();
        assert_eq!(tracker.predict(7), None);
        for (i, m) in [1.25, 3.5, 0.75, 2.0, 5.0].into_iter().enumerate() {
            tracker.record(7, m);
            hm.observe(m);
            let got = tracker.predict(7).unwrap();
            let want = hm.predict_ahead(1).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "sample {i}");
        }
        tracker.remove(7);
        assert_eq!(tracker.predict(7), None);
    }

    #[test]
    fn fallback_tracker_nonpositive_history_uses_last_sample() {
        let tracker = FallbackTracker::new(8, 8);
        tracker.record(1, 0.0);
        assert_eq!(tracker.predict(1), Some(0.0));
        tracker.record(1, 2.5);
        // A non-positive sample keeps the harmonic mean undefined, so
        // the baseline (and the tracker) answer the last sample.
        assert_eq!(tracker.predict(1), Some(2.5));
    }

    #[test]
    fn fallback_tracker_window_and_capacity_are_bounded() {
        let tracker = FallbackTracker::new(2, FALLBACK_SHARDS);
        for m in [1.0, 2.0, 3.0] {
            tracker.record(9, m);
        }
        // Window of 2: harmonic mean of [2, 3].
        let want = cs2p_ml::stats::harmonic_mean(&[2.0, 3.0]).unwrap();
        assert_eq!(tracker.predict(9), Some(want));
        // One session per shard fits; an overflowing shard stops
        // accepting new sessions rather than evicting old ones.
        for id in 0..10_000u64 {
            tracker.record(id, 1.0);
        }
        assert!(tracker.len() <= FALLBACK_SHARDS);
    }
}
