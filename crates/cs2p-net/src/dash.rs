//! The DASH player (§6's Dash.js equivalent).
//!
//! Mirrors the paper's split: a *BufferController* decides when to request
//! (buffer dynamics, startup, backpressure) and an *AbrController* decides
//! what to request (the adaptation algorithm fed by throughput
//! predictions). Both sit on the playback engine in `cs2p-abr`; the data
//! path is the simulated bottleneck link ([`cs2p_abr::TraceNetwork`] —
//! we have no CDN), while the *prediction* path is real HTTP to the
//! prediction server, or a locally-downloaded cluster model (the paper's
//! client-side deployment, §5.3).

use crate::client::{HttpClient, RemotePredictor};
use crate::protocol::SessionLog;
use cs2p_abr::{
    simulate, AbrAlgorithm, BufferBased, Festive, FixedBitrate, Mpc, QoeParams, RateBased,
    SessionOutcome, SimConfig, VideoSpec,
};
use cs2p_core::{ClientModel, ThroughputPredictor};
use cs2p_ml::hmm::{FilterState, HmmFilter};
use serde::{Deserialize, Serialize};
use std::io;
use std::net::SocketAddr;

/// A DASH manifest: what the player is asked to play.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Human-readable title.
    pub title: String,
    /// The encoding ladder and chunking.
    pub video: VideoSpec,
}

impl Manifest {
    /// The evaluation video (§7.1).
    pub fn envivio() -> Self {
        Manifest {
            title: "Envivio (DASH-264 reference)".into(),
            video: VideoSpec::envivio(),
        }
    }

    /// Parses a manifest from JSON and validates it, so a player is never
    /// constructed from a spec it cannot play. Both syntactic garbage and
    /// semantically broken manifests come back as `Err`, never a panic.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let manifest: Manifest =
            serde_json::from_str(json).map_err(|e| format!("malformed manifest: {e}"))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks the playability invariants the rest of the pipeline assumes:
    /// at least one chunk, a non-empty strictly-ascending ladder of
    /// positive finite bitrates, and positive finite chunk length and
    /// buffer capacity.
    pub fn validate(&self) -> Result<(), String> {
        let v = &self.video;
        if v.n_chunks == 0 {
            return Err("manifest has no chunks".into());
        }
        if v.bitrates_kbps.is_empty() {
            return Err("manifest has an empty bitrate ladder".into());
        }
        if !v.bitrates_kbps.iter().all(|b| b.is_finite() && *b > 0.0) {
            return Err("bitrate ladder entries must be positive and finite".into());
        }
        if !v.bitrates_kbps.windows(2).all(|w| w[0] < w[1]) {
            return Err("bitrate ladder must be strictly ascending".into());
        }
        if !v.chunk_seconds.is_finite() || v.chunk_seconds <= 0.0 {
            return Err("chunk length must be positive and finite".into());
        }
        if !v.buffer_capacity_seconds.is_finite() || v.buffer_capacity_seconds <= 0.0 {
            return Err("buffer capacity must be positive and finite".into());
        }
        Ok(())
    }
}

/// Which adaptation algorithm the AbrController runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbrKind {
    /// Model Predictive Control (the paper's choice, §5.3).
    Mpc,
    /// FastMPC: MPC precomputed into a lookup table (the deployed variant).
    FastMpc,
    /// RobustMPC (error-discounted predictions, Yin et al.).
    RobustMpc,
    /// Rate-based.
    Rb,
    /// Buffer-based.
    Bb,
    /// FESTIVE.
    Festive,
    /// Fixed ladder index.
    Fixed(usize),
}

impl AbrKind {
    fn build(self) -> Box<dyn AbrAlgorithm> {
        match self {
            AbrKind::Mpc => Box::new(Mpc::default()),
            AbrKind::FastMpc => Box::new(cs2p_abr::FastMpc::precompute(
                &VideoSpec::envivio(),
                cs2p_abr::FastMpcConfig::default(),
            )),
            AbrKind::RobustMpc => Box::new(cs2p_abr::RobustMpc::default()),
            AbrKind::Rb => Box::new(RateBased::default()),
            AbrKind::Bb => Box::new(BufferBased::default()),
            AbrKind::Festive => Box::new(Festive::default()),
            AbrKind::Fixed(level) => Box::new(FixedBitrate::new(level)),
        }
    }

    /// Strategy label used in logs.
    pub fn label(self) -> String {
        match self {
            AbrKind::Mpc => "MPC".into(),
            AbrKind::FastMpc => "FastMPC".into(),
            AbrKind::RobustMpc => "RobustMPC".into(),
            AbrKind::Rb => "RB".into(),
            AbrKind::Bb => "BB".into(),
            AbrKind::Festive => "FESTIVE".into(),
            AbrKind::Fixed(l) => format!("Fixed({l})"),
        }
    }
}

/// Player configuration.
#[derive(Debug, Clone)]
pub struct PlayerConfig {
    /// Adaptation algorithm.
    pub abr: AbrKind,
    /// QoE weights used for the final log entry.
    pub qoe: QoeParams,
    /// Seed the first chunk from the initial prediction (§5.3's rule).
    pub prediction_seeded_start: bool,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            abr: AbrKind::Mpc,
            qoe: QoeParams::default(),
            prediction_seeded_start: true,
        }
    }
}

/// The player.
#[derive(Debug, Clone)]
pub struct DashPlayer {
    manifest: Manifest,
    config: PlayerConfig,
}

impl DashPlayer {
    /// A player for one manifest. Trusts the caller; use [`try_new`]
    /// (or [`Manifest::from_json`]) for manifests from untrusted input.
    ///
    /// [`try_new`]: DashPlayer::try_new
    pub fn new(manifest: Manifest, config: PlayerConfig) -> Self {
        DashPlayer { manifest, config }
    }

    /// A player for one manifest, rejecting manifests that fail
    /// [`Manifest::validate`] instead of failing later mid-playback.
    pub fn try_new(manifest: Manifest, config: PlayerConfig) -> Result<Self, String> {
        manifest.validate()?;
        Ok(DashPlayer { manifest, config })
    }

    /// Plays the whole video over the simulated bottleneck `trace_mbps`,
    /// consulting `predictor` before every chunk, and returns the
    /// structured log the paper's player uploads at session end.
    pub fn play(
        &self,
        trace_mbps: &[f64],
        epoch_seconds: f64,
        predictor: &mut dyn ThroughputPredictor,
        session_id: u64,
        strategy: &str,
    ) -> SessionLog {
        let mut abr = self.config.abr.build();
        let sim_config = SimConfig {
            video: self.manifest.video.clone(),
            qoe: self.config.qoe,
            prediction_seeded_start: self.config.prediction_seeded_start,
        };
        let outcome = simulate(
            trace_mbps,
            epoch_seconds,
            predictor,
            abr.as_mut(),
            &sim_config,
        );
        outcome_to_log(&outcome, &self.config.qoe, session_id, strategy)
    }
}

/// Converts a playback outcome into the upload format.
pub fn outcome_to_log(
    outcome: &SessionOutcome,
    qoe: &QoeParams,
    session_id: u64,
    strategy: &str,
) -> SessionLog {
    SessionLog {
        session_id,
        strategy: strategy.to_string(),
        qoe: outcome.qoe(qoe),
        avg_bitrate_kbps: outcome.avg_bitrate_kbps(),
        good_ratio: outcome.good_ratio(),
        rebuffer_seconds: outcome.total_rebuffer_seconds(),
        startup_delay_seconds: outcome.startup_delay_seconds,
        throughput_pairs: outcome
            .chunks
            .iter()
            .map(|c| (c.predicted_mbps, c.actual_mbps))
            .collect(),
        bitrates_kbps: outcome.chunks.iter().map(|c| c.bitrate_kbps).collect(),
    }
}

/// Plays one session end-to-end against a prediction server: remote
/// predictions per chunk, then the log uploaded to `/log`.
pub fn play_remote_session(
    server: SocketAddr,
    player: &DashPlayer,
    trace_mbps: &[f64],
    epoch_seconds: f64,
    session_id: u64,
    features: Vec<u32>,
) -> io::Result<SessionLog> {
    let mut predictor = RemotePredictor::new(server, session_id, features);
    let strategy = format!("CS2P+{}", player.config.abr.label());
    let log = player.play(
        trace_mbps,
        epoch_seconds,
        &mut predictor,
        session_id,
        &strategy,
    );
    predictor.upload_log(&log)?;
    Ok(log)
}

/// The client-side deployment (§5.3): download the cluster model once via
/// `GET /model`, then predict locally — no per-chunk server round trips.
#[derive(Debug, Clone)]
pub struct LocalModelPredictor {
    model: ClientModel,
    state: FilterState,
}

impl LocalModelPredictor {
    /// Fetches the model for `features` from the server.
    pub fn download(server: SocketAddr, features: &[u32]) -> io::Result<Self> {
        let mut client = HttpClient::new(server);
        let query: Vec<String> = features.iter().map(u32::to_string).collect();
        let resp = client.get(&format!("/model?features={}", query.join(",")))?;
        let model = ClientModel::from_json(
            std::str::from_utf8(&resp.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Self::from_model(model))
    }

    /// Wraps an already-obtained model.
    pub fn from_model(model: ClientModel) -> Self {
        let state = model.model.hmm.filter().state();
        LocalModelPredictor { model, state }
    }
}

impl ThroughputPredictor for LocalModelPredictor {
    fn name(&self) -> &str {
        "CS2P-local"
    }

    fn predict_initial(&mut self) -> Option<f64> {
        if self.state.epoch == 0 {
            Some(self.model.model.initial_median)
        } else {
            None
        }
    }

    fn predict_ahead(&mut self, k: usize) -> Option<f64> {
        let filter = HmmFilter::from_state(&self.model.model.hmm, self.state.clone());
        if filter.epoch() == 0 && k == 1 {
            Some(self.model.model.initial_median)
        } else {
            Some(filter.predict_ahead(k))
        }
    }

    fn observe(&mut self, throughput: f64) {
        let mut filter = HmmFilter::from_state(&self.model.model.hmm, self.state.clone());
        filter.observe(throughput);
        self.state = filter.state();
    }

    fn reset(&mut self) {
        self.state = self.model.model.hmm.filter().state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve;
    use cs2p_testkit::scenarios::tiny_engine;

    #[test]
    fn end_to_end_remote_session() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let player = DashPlayer::new(Manifest::envivio(), PlayerConfig::default());
        let trace = vec![5.0; 120];
        let log = play_remote_session(server.addr(), &player, &trace, 6.0, 77, vec![1]).unwrap();
        assert_eq!(log.strategy, "CS2P+MPC");
        assert_eq!(log.bitrates_kbps.len(), 43);
        // 5 Mbps link: mostly top-rung playback, no stalls.
        assert!(
            log.avg_bitrate_kbps > 2500.0,
            "avg {}",
            log.avg_bitrate_kbps
        );
        assert_eq!(log.rebuffer_seconds, 0.0);
        // Log arrived at the server.
        assert_eq!(server.logs().len(), 1);
        assert_eq!(server.logs()[0].session_id, 77);
        server.shutdown();
    }

    #[test]
    fn local_model_predictor_matches_engine_median() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut local = LocalModelPredictor::download(server.addr(), &[0]).unwrap();
        let init = local.predict_initial().unwrap();
        assert!((init - 1.0).abs() < 0.5);
        local.observe(1.0);
        assert!(local.predict_initial().is_none());
        let mid = local.predict_next().unwrap();
        assert!((mid - 1.0).abs() < 0.5);
        server.shutdown();
    }

    #[test]
    fn local_and_remote_predictions_agree() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut local = LocalModelPredictor::download(server.addr(), &[1]).unwrap();
        let mut remote = RemotePredictor::new(server.addr(), 5, vec![1]);
        assert!(
            (local.predict_initial().unwrap() - remote.predict_initial().unwrap()).abs() < 1e-9
        );
        for w in [5.1, 4.9, 5.0] {
            local.observe(w);
            remote.observe(w);
            let l = local.predict_next().unwrap();
            let r = remote.predict_next().unwrap();
            assert!((l - r).abs() < 1e-9, "local {l} vs remote {r}");
        }
        server.shutdown();
    }

    #[test]
    fn player_with_bb_ignores_predictions() {
        let player = DashPlayer::new(
            Manifest::envivio(),
            PlayerConfig {
                abr: AbrKind::Bb,
                prediction_seeded_start: false,
                ..Default::default()
            },
        );
        let trace = vec![3.0; 120];
        // A predictor that would panic if asked for initial predictions is
        // not needed; use a no-op oracle with empty trace (always None).
        let mut none_pred = cs2p_core::NoisyOracle::new(vec![], 0.0, 0);
        let log = player.play(&trace, 6.0, &mut none_pred, 1, "BB");
        assert_eq!(log.strategy, "BB");
        assert_eq!(log.bitrates_kbps.len(), 43);
        // BB ramps from the bottom.
        assert_eq!(log.bitrates_kbps[0], 350.0);
        server_noop();
    }

    fn server_noop() {}

    #[test]
    fn abr_kind_labels() {
        assert_eq!(AbrKind::Mpc.label(), "MPC");
        assert_eq!(AbrKind::FastMpc.label(), "FastMPC");
        assert_eq!(AbrKind::RobustMpc.label(), "RobustMPC");
        assert_eq!(AbrKind::Fixed(2).label(), "Fixed(2)");
    }

    #[test]
    fn fast_mpc_player_plays_full_session_remotely() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let player = DashPlayer::new(
            Manifest::envivio(),
            PlayerConfig {
                abr: AbrKind::FastMpc,
                prediction_seeded_start: false,
                ..Default::default()
            },
        );
        let trace = vec![5.0; 120];
        let log = play_remote_session(server.addr(), &player, &trace, 6.0, 88, vec![1]).unwrap();
        assert_eq!(log.strategy, "CS2P+FastMPC");
        assert_eq!(log.bitrates_kbps.len(), 43);
        // On a steady 5 Mbps link, the table converges to the top rung.
        assert!(
            log.avg_bitrate_kbps > 2500.0,
            "avg {}",
            log.avg_bitrate_kbps
        );
        server.shutdown();
    }
}
