//! Transport abstraction: the byte-stream layer the HTTP client and
//! server run over, with an injectable per-connection wrapper hook.
//!
//! Production code talks to plain `TcpStream`s. Tests (and any future
//! middlebox, e.g. TLS) can install a [`TransportWrapper`] in
//! [`crate::ServeConfig`] or on [`crate::HttpClient`]; every new
//! connection's read and write halves are then passed through the hook,
//! which may interpose an arbitrary `Read + Write` adapter — the
//! testkit's `FaultyStream` injects resets, truncation, corruption, and
//! byte-dribbling this way without a single special case in the serving
//! hot path. When no wrapper is installed the I/O paths stay statically
//! dispatched on `TcpStream` ([`IoHalf::Plain`]); the `dyn` indirection
//! exists only on hooked connections.
//!
//! [`DeadlineReader`] implements the server's **slow-peer deadline**: a
//! budget on how long one request may take to arrive once its first byte
//! has been read, distinct from the idle keep-alive timeout (idle
//! connections park in the poller without arming anything) and from the
//! per-`read` socket timeout (which a byte-dribbling client never
//! trips). Time comes from an injectable [`cs2p_obs::Clock`], so tests
//! drive the deadline with a manual clock instead of wall-clock sleeps.

use cs2p_obs::Clock;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A bidirectional byte stream a connection can run over.
///
/// Blanket-implemented for everything `Read + Write + Send`, so a
/// wrapper type only needs the two std traits.
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// A boxed transport half (read and write halves are wrapped separately
/// because the server clones the socket per direction).
pub type BoxTransport = Box<dyn Transport>;

/// Hook wrapping each new connection's transport halves.
///
/// `conn_seq` is the connection's sequence number on the installing side
/// (server: accept order; client: connect order) — the key a
/// deterministic fault plan schedules on. State shared between the two
/// returned halves (byte counters, fault scripts) lives inside the
/// wrapper's return values.
pub trait TransportWrapper: Send + Sync {
    /// Wraps the read and write halves of connection `conn_seq`.
    fn wrap(
        &self,
        conn_seq: u64,
        read: BoxTransport,
        write: BoxTransport,
    ) -> (BoxTransport, BoxTransport);
}

/// One direction of a connection: a bare socket (the default, statically
/// dispatched) or a hook-wrapped transport.
pub(crate) enum IoHalf {
    /// Unhooked: reads/writes go straight to the socket.
    Plain(TcpStream),
    /// Hook-wrapped transport half.
    Wrapped(BoxTransport),
}

impl IoHalf {
    /// Builds the (read, write) halves for a connection, applying the
    /// wrapper when one is installed.
    pub(crate) fn pair(
        stream: &TcpStream,
        conn_seq: u64,
        wrapper: Option<&Arc<dyn TransportWrapper>>,
    ) -> io::Result<(IoHalf, IoHalf)> {
        let read = stream.try_clone()?;
        let write = stream.try_clone()?;
        Ok(match wrapper {
            None => (IoHalf::Plain(read), IoHalf::Plain(write)),
            Some(w) => {
                let (r, wr) = w.wrap(conn_seq, Box::new(read), Box::new(write));
                (IoHalf::Wrapped(r), IoHalf::Wrapped(wr))
            }
        })
    }
}

impl Read for IoHalf {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            IoHalf::Plain(s) => s.read(buf),
            IoHalf::Wrapped(t) => t.read(buf),
        }
    }
}

impl Write for IoHalf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            IoHalf::Plain(s) => s.write(buf),
            IoHalf::Wrapped(t) => t.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            IoHalf::Plain(s) => s.flush(),
            IoHalf::Wrapped(t) => t.flush(),
        }
    }
}

/// Enforces the slow-peer deadline on a connection's read half.
///
/// Self-arming: the first byte read of a request starts the budget; the
/// server disarms it once the request has been fully parsed (see
/// `serve_turn`). A read attempted past the deadline fails with
/// [`io::ErrorKind::TimedOut`] and bumps `serve.fault.slow_peer_aborts`.
/// With no budget configured this is a transparent passthrough.
pub(crate) struct DeadlineReader {
    inner: IoHalf,
    clock: Arc<dyn Clock>,
    /// Budget in microseconds for receiving one request; `None` disables.
    budget_us: Option<u64>,
    /// Absolute deadline for the in-flight request, once armed.
    deadline_us: Option<u64>,
}

impl DeadlineReader {
    pub(crate) fn new(inner: IoHalf, clock: Arc<dyn Clock>, budget_us: Option<u64>) -> Self {
        DeadlineReader {
            inner,
            clock,
            budget_us,
            deadline_us: None,
        }
    }

    /// Disarms the deadline: the current request has been fully received.
    pub(crate) fn finish_request(&mut self) {
        self.deadline_us = None;
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline_us {
            if self.clock.now_micros() > deadline {
                cs2p_obs::counter_add("serve.fault.slow_peer_aborts", 1);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "slow peer: request exceeded its transmission deadline",
                ));
            }
        }
        let n = self.inner.read(buf)?;
        if n > 0 && self.deadline_us.is_none() {
            if let Some(budget) = self.budget_us {
                self.deadline_us = Some(self.clock.now_micros().saturating_add(budget));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs2p_obs::ManualClock;
    use std::io::Cursor;

    /// An in-memory read half (Cursor) that also satisfies `Write`, so it
    /// can stand in for a `Transport` in unit tests.
    struct MemStream(Cursor<Vec<u8>>);

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn wrapped(data: &[u8]) -> IoHalf {
        IoHalf::Wrapped(Box::new(MemStream(Cursor::new(data.to_vec()))))
    }

    #[test]
    fn deadline_reader_passes_through_without_budget() {
        let clock = Arc::new(ManualClock::new());
        let mut r = DeadlineReader::new(wrapped(b"hello"), clock.clone(), None);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 5);
        clock.advance(1_000_000_000);
        assert_eq!(r.read(&mut buf).unwrap(), 0); // EOF, never a timeout
    }

    #[test]
    fn deadline_arms_on_first_byte_and_aborts_past_budget() {
        let clock = Arc::new(ManualClock::new());
        let mut r = DeadlineReader::new(wrapped(b"abcdef"), clock.clone(), Some(100));
        let mut one = [0u8; 1];
        assert_eq!(r.read(&mut one).unwrap(), 1); // arms at t=0, deadline 100
        clock.advance(50);
        assert_eq!(r.read(&mut one).unwrap(), 1); // still inside budget
        clock.advance(100); // now 150 > 100
        let err = r.read(&mut one).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn finish_request_rearms_for_the_next_request() {
        let clock = Arc::new(ManualClock::new());
        let mut r = DeadlineReader::new(wrapped(b"abcd"), clock.clone(), Some(100));
        let mut one = [0u8; 1];
        assert_eq!(r.read(&mut one).unwrap(), 1);
        clock.advance(90);
        r.finish_request();
        clock.advance(90); // 180 total — previous deadline long gone
        assert_eq!(r.read(&mut one).unwrap(), 1); // fresh budget from 180
        clock.advance(50);
        assert_eq!(r.read(&mut one).unwrap(), 1); // 230 < 180+100
        clock.advance(60);
        assert!(r.read(&mut one).is_err()); // 290 > 280
    }
}
