//! Crash-safe durability for the prediction server: a write-ahead log of
//! session-store mutations plus periodic atomic snapshots, and persisted
//! model bundles for every retained [`ModelVersion`].
//!
//! The paper's deployability story (§5.3: compact `<5KB` models pushed to
//! players and video servers) assumes the serving tier survives restarts.
//! Cross-session state is the whole point of CS2P — a crash that discards
//! every live HMM filter posterior and every retrained model version
//! forces all viewers through cold re-registration on a stale launch
//! model. This module makes that state durable:
//!
//! - **WAL** ([`Wal`]): length-prefixed, CRC32-framed records appended to
//!   generation-numbered segment files, group-committed (buffer + one
//!   write + `fdatasync`) every [`PersistConfig::commit_every_records`]
//!   records or [`PersistConfig::commit_interval`] on the server's
//!   injectable clock. Each record is one store mutation
//!   ([`WalRecord`]): session registration (full state), a measurement
//!   update (the post-request filter posterior and pending prediction),
//!   or a removal (eviction / `/log` retirement). Payloads use a
//!   hand-rolled little-endian binary layout — encoding happens on the
//!   request path under the shard lock, where JSON through the Value
//!   tree costs real serving throughput (see `persist-bench`).
//! - **Snapshot compaction**: every
//!   [`PersistConfig::snapshot_every_records`] records the WAL rotates to
//!   a new generation, the sharded store is captured into a
//!   [`StoreSnapshot`] written atomically (write-temp + fsync + rename),
//!   and fully-covered generations are unlinked. A snapshot taken while
//!   serving may already reflect some records of the new generation;
//!   replay is idempotent over that window (absolute filter/pending
//!   values, `observed_len`-guarded measurement appends).
//! - **Model registry**: [`RegistryDir`] implements
//!   [`cs2p_core::RegistryPersistence`] — every published version's
//!   [`ModelBundle`] is written at retrain time, the current-version
//!   pointer is swapped atomically, and GC unlinks retained-out bundles.
//! - **Recovery** ([`recover`]): loads the snapshot, replays every
//!   uncovered WAL generation in order, and stops at the first torn or
//!   corrupt record — the longest valid prefix wins, and recovery never
//!   panics on arbitrary bytes. `ServerHandle::open_or_recover` turns the
//!   result back into a live server whose sessions, filter posteriors,
//!   pinned model versions, and store tick state are bit-identical to
//!   the committed prefix of the crashed run.
//!
//! What is deliberately **not** durable: quality-monitor sketches, the
//! completed-session recorder window, uploaded logs, fault counters, and
//! logical ticks consumed by requests that mutated nothing (a failed
//! lookup ages TTL clocks but writes no record). See DESIGN.md §3f.
//!
//! Telemetry: `serve.persist.{wal_records,wal_bytes,snapshots,
//! compactions,recoveries,truncated_records,recovery_us}`.

use cs2p_core::registry::RegistryPersistence;
use cs2p_core::{ModelBundle, ModelVersion, PredictionEngine};
use cs2p_ml::hmm::FilterState;
use cs2p_obs::Clock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on one framed record's payload. A corrupt length prefix
/// must not make recovery allocate gigabytes; anything larger is treated
/// as a torn record.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of framing per record: a `u32` length plus a `u32` CRC32.
const FRAME_HEADER: usize = 8;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum guarding every WAL frame.
/// Hand-rolled (table-driven) because the workspace vendors no CRC crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frames `payload` as `[len: u32 LE][crc32: u32 LE][payload]` into `out`.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The decoded contents of one WAL file (or byte slice): every record of
/// the longest valid frame prefix, plus whether the log ended cleanly.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `false` when decoding stopped at a torn or corrupt frame (short
    /// header, short payload, oversized length, or CRC mismatch).
    pub clean: bool,
    /// Bytes consumed by the valid prefix.
    pub valid_bytes: u64,
}

/// Decodes length-prefixed CRC-framed records from `bytes`, stopping at
/// the first torn or corrupt frame. Never panics on arbitrary input.
pub fn decode_frames(bytes: &[u8]) -> WalReplay {
    let mut out = WalReplay {
        records: Vec::new(),
        clean: true,
        valid_bytes: 0,
    };
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER {
            out.clean = false;
            return out;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || bytes.len() - pos - FRAME_HEADER < len as usize {
            out.clean = false;
            return out;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize];
        if crc32(payload) != crc {
            out.clean = false;
            return out;
        }
        out.records.push(payload.to_vec());
        pos += FRAME_HEADER + len as usize;
        out.valid_bytes = pos as u64;
    }
    out
}

/// Reads and decodes one WAL segment file. A missing file is an empty,
/// clean log (the segment was never created or already compacted away).
pub fn read_wal(path: &Path) -> io::Result<WalReplay> {
    match fs::read(path) {
        Ok(bytes) => Ok(decode_frames(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(WalReplay {
            records: Vec::new(),
            clean: true,
            valid_bytes: 0,
        }),
        Err(e) => Err(e),
    }
}

/// Writes `bytes` to `path` crash-safely: `<path>.tmp` + fsync + rename.
/// Readers (and post-crash recovery) see either the old complete file or
/// the new complete file, never a torn one.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// What the filesystem "does" with one group commit — the seam the
/// testkit's crash harness injects process kills and torn writes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Write and fsync the whole batch (the no-fault path).
    Write,
    /// Write only the first `n` bytes of the batch, then die: the classic
    /// torn write a power loss leaves behind. The WAL goes dead.
    ShortWrite(usize),
    /// Die before anything reaches the disk: the batch is lost whole and
    /// the WAL goes dead.
    Kill,
}

/// Per-commit fault hook (see [`CommitOutcome`]). `commit_index` counts
/// successful commits so far, so a seeded plan can kill the process model
/// at an exact commit point. Called with the framed batch bytes.
pub trait WalFaultHook: Send + Sync {
    /// Decides the fate of commit number `commit_index`.
    fn on_commit(&self, commit_index: u64, batch: &[u8]) -> CommitOutcome;
}

/// Counters describing a WAL's life so far (see [`Wal::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (framed into the commit buffer).
    pub records: u64,
    /// Framed bytes appended.
    pub bytes: u64,
    /// Group commits that reached the disk.
    pub commits: u64,
    /// Whether the WAL is dead (simulated crash or I/O error): appends
    /// are accepted and silently dropped, mirroring a killed process.
    pub dead: bool,
}

struct WalInner {
    file: File,
    /// Framed records awaiting the next group commit.
    buf: Vec<u8>,
    buffered_records: usize,
    last_commit_us: u64,
    stats: WalStats,
}

/// A group-committed, CRC-framed append-only log over one segment file.
///
/// Appends frame the payload into an in-memory batch; the batch reaches
/// the disk (one `write` + `fdatasync`) when `commit_every_records`
/// records have accumulated, when `commit_interval` has elapsed on the
/// injectable clock, or on an explicit [`flush`](Wal::flush). Everything
/// in an uncommitted batch is lost by a crash — that is the commit-point
/// contract the recovery tests are written against.
pub struct Wal {
    inner: Mutex<WalInner>,
    clock: Arc<dyn Clock>,
    commit_every_records: usize,
    commit_interval_us: Option<u64>,
    fsync_data: bool,
    hook: Option<Arc<dyn WalFaultHook>>,
}

impl Wal {
    /// Opens (creating or appending to) the segment at `path`.
    pub fn open(
        path: &Path,
        clock: Arc<dyn Clock>,
        commit_every_records: usize,
        commit_interval: Option<Duration>,
        fsync_data: bool,
        hook: Option<Arc<dyn WalFaultHook>>,
    ) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let now = clock.now_micros();
        Ok(Wal {
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                buffered_records: 0,
                last_commit_us: now,
                stats: WalStats::default(),
            }),
            clock,
            commit_every_records: commit_every_records.max(1),
            commit_interval_us: commit_interval.map(|d| d.as_micros().min(u64::MAX as u128) as u64),
            fsync_data,
            hook,
        })
    }

    /// Appends one record, group-committing when the batch is due. On a
    /// dead WAL (simulated crash, prior I/O error) the record is accepted
    /// and dropped — the process model keeps serving while its disk is
    /// gone, exactly what the crash battery recovers from.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        // Framing (length + CRC32) happens outside the mutex; the
        // critical section is one memcpy plus the commit check.
        let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
        frame_into(&mut framed, payload);
        self.append_framed(&framed, 1)
    }

    /// Appends pre-framed records in one lock acquisition — the batched
    /// endpoint stages a whole shard group and lands it here, paying the
    /// WAL mutex once per group instead of once per record. A commit
    /// boundary falling inside the group commits once, at its end.
    pub(crate) fn append_framed(&self, framed: &[u8], n_records: u64) -> io::Result<()> {
        if n_records == 0 {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        if inner.stats.dead {
            return Ok(());
        }
        inner.buf.extend_from_slice(framed);
        inner.buffered_records += n_records as usize;
        inner.stats.records += n_records;
        inner.stats.bytes += framed.len() as u64;
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("serve.persist.wal_records", n_records);
            cs2p_obs::counter_add("serve.persist.wal_bytes", framed.len() as u64);
        }
        let due = inner.buffered_records >= self.commit_every_records
            || self.commit_interval_us.is_some_and(|interval| {
                self.clock.now_micros().saturating_sub(inner.last_commit_us) >= interval
            });
        if due {
            self.commit_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Commits any buffered records now (graceful shutdown, compaction).
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.buffered_records > 0 {
            self.commit_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Flushes, then redirects subsequent appends to a fresh segment at
    /// `path` (WAL rotation at a compaction point). Returns `false` —
    /// and rotates nothing — when the WAL is dead.
    pub fn rotate(&self, path: &Path) -> io::Result<bool> {
        let mut inner = self.inner.lock();
        if inner.buffered_records > 0 {
            self.commit_locked(&mut inner)?;
        }
        if inner.stats.dead {
            return Ok(false);
        }
        inner.file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(true)
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        self.inner.lock().stats
    }

    fn commit_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        if inner.stats.dead {
            inner.buf.clear();
            inner.buffered_records = 0;
            return Ok(());
        }
        let outcome = match &self.hook {
            Some(hook) => hook.on_commit(inner.stats.commits, &inner.buf),
            None => CommitOutcome::Write,
        };
        let result = match outcome {
            CommitOutcome::Write => {
                let r = inner.file.write_all(&inner.buf).and_then(|()| {
                    if self.fsync_data {
                        inner.file.sync_data()
                    } else {
                        Ok(())
                    }
                });
                if r.is_ok() {
                    inner.stats.commits += 1;
                }
                r
            }
            CommitOutcome::ShortWrite(n) => {
                let n = n.min(inner.buf.len());
                let torn = inner.buf[..n].to_vec();
                let _ = inner
                    .file
                    .write_all(&torn)
                    .and_then(|()| inner.file.sync_data());
                inner.stats.dead = true;
                Ok(())
            }
            CommitOutcome::Kill => {
                inner.stats.dead = true;
                Ok(())
            }
        };
        inner.buf.clear();
        inner.buffered_records = 0;
        inner.last_commit_us = self.clock.now_micros();
        if let Err(e) = result {
            // Fail-open serving, fail-safe durability: an I/O error kills
            // the WAL (nothing after it is claimed durable) but the
            // server keeps answering requests.
            inner.stats.dead = true;
            cs2p_obs::event(
                cs2p_obs::Level::Warn,
                "serve.persist.wal_dead",
                vec![("error", e.to_string().into())],
            );
        }
        Ok(())
    }
}

/// The atomic on-disk image of a [`crate::store::SessionStore`]: the
/// logical tick counter plus every `(id, last_touch, value)` triple, and
/// the greatest WAL generation the snapshot fully covers (replay skips
/// those segments). Generic so the store round-trip proptests can
/// persist a plain-value store against the reference model. (The serde
/// impls are by hand — the vendored derive does not support generics.)
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot<V> {
    /// Greatest WAL generation whose records are all reflected here.
    pub covered_gen: u64,
    /// The store's logical tick counter at capture time.
    pub tick: u64,
    /// `(id, last_touch, value)` for every live entry, sorted by id.
    pub entries: Vec<(u64, u64, V)>,
}

impl<V: Serialize> Serialize for StoreSnapshot<V> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("covered_gen".into(), self.covered_gen.to_value()),
            ("tick".into(), self.tick.to_value()),
            ("entries".into(), self.entries.to_value()),
        ])
    }
}

impl<V: Deserialize> Deserialize for StoreSnapshot<V> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("missing field {name}")))
        };
        Ok(StoreSnapshot {
            covered_gen: u64::from_value(field("covered_gen")?)?,
            tick: u64::from_value(field("tick")?)?,
            entries: Vec::from_value(field("entries")?)?,
        })
    }
}

/// Writes a snapshot atomically (see [`atomic_write`]).
pub fn write_snapshot<V: Serialize>(path: &Path, snapshot: &StoreSnapshot<V>) -> io::Result<()> {
    let json =
        serde_json::to_vec(snapshot).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(path, &json)
}

/// Reads a snapshot; a missing or unparseable file is `None` (recovery
/// treats a corrupt snapshot as absent rather than panicking — the WAL
/// generations it would have covered are still on disk and replayable).
pub fn read_snapshot<V: Deserialize>(path: &Path) -> Option<StoreSnapshot<V>> {
    let bytes = fs::read(path).ok()?;
    match serde_json::from_slice(&bytes) {
        Ok(snap) => Some(snap),
        Err(_) => {
            cs2p_obs::event(
                cs2p_obs::Level::Warn,
                "serve.persist.snapshot_corrupt",
                vec![("path", path.display().to_string().into())],
            );
            None
        }
    }
}

/// A served 1-step prediction awaiting its measurement, as persisted.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct PersistedPending {
    /// Predicted next-epoch throughput, Mbps.
    pub value: f64,
    /// Whether it was the session's initial (cluster-median) prediction.
    pub initial: bool,
}

/// One session's durable state: everything the server needs to rebuild
/// its in-memory session entry except the engine `Arc`, which recovery
/// re-resolves from the persisted bundle for `version`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PersistedSession {
    /// The model version the session is pinned to.
    pub version: u64,
    /// Index into the pinned engine's model list (`None` = global).
    pub model: Option<usize>,
    /// Whether registration found a cluster model.
    pub cluster_hit: bool,
    /// The HMM filter posterior after the session's last measurement.
    pub filter: FilterState,
    /// Registration features.
    pub features: Vec<u32>,
    /// Measured throughputs reported so far.
    pub observed: Vec<f64>,
    /// The last served 1-step prediction, if still unscored.
    pub pending: Option<PersistedPending>,
}

/// One logged session-store mutation. Updates carry absolute state (the
/// posterior and pending prediction *after* the request) plus the
/// absolute `observed_len`, so replaying a record whose effect a fuzzy
/// snapshot already includes is a no-op — the idempotence the
/// compaction-while-serving window relies on.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum WalRecord {
    /// A session (re-)registered: full state at the end of the request.
    Register {
        /// Session id.
        id: u64,
        /// Logical tick of the mutating store access (the LRU stamp).
        tick: u64,
        /// Full session state.
        session: PersistedSession,
    },
    /// An existing session served a request: post-request deltas.
    Update {
        /// Session id.
        id: u64,
        /// Logical tick of the mutating store access (the LRU stamp).
        tick: u64,
        /// The measurement the request carried, if any.
        measured: Option<f64>,
        /// `observed.len()` after the request (guards replay idempotence).
        observed_len: u64,
        /// Filter posterior after the request.
        filter: FilterState,
        /// Pending 1-step prediction after the request.
        pending: Option<PersistedPending>,
    },
    /// The session left the store (TTL/LRU/forced eviction, or `/log`).
    Remove {
        /// Session id.
        id: u64,
    },
}

// WAL payload codec. Records are encoded on the serving hot path — one
// per store mutation, under the owning shard's lock — so the payload is
// a hand-rolled little-endian layout (one-byte tag, fixed-width fields,
// u32 length-prefixed vectors) rather than JSON through the Value tree.
// Integrity is the frame's job (CRC32 over the payload); the codec only
// needs to be fast and unambiguous. `f64`s round-trip via `to_le_bytes`,
// so recovered posteriors are bit-identical. Decoding is total: any
// malformed payload yields `None`, which recovery treats exactly like a
// corrupt frame (truncate at the record). The snapshot stays JSON — it
// is written off the request path, once per compaction.

const TAG_REGISTER: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_REMOVE: u8 = 3;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

fn put_filter(out: &mut Vec<u8>, filter: &FilterState) {
    put_u32(out, filter.posterior.len() as u32);
    for &p in &filter.posterior {
        put_f64(out, p);
    }
    put_u64(out, filter.epoch as u64);
}

fn put_pending(out: &mut Vec<u8>, pending: &Option<PersistedPending>) {
    match pending {
        Some(p) => {
            out.push(1);
            put_f64(out, p.value);
            out.push(p.initial as u8);
        }
        None => out.push(0),
    }
}

fn put_session(out: &mut Vec<u8>, session: &PersistedSession) {
    put_u64(out, session.version);
    match session.model {
        Some(m) => {
            out.push(1);
            put_u64(out, m as u64);
        }
        None => out.push(0),
    }
    out.push(session.cluster_hit as u8);
    put_filter(out, &session.filter);
    put_u32(out, session.features.len() as u32);
    for &f in &session.features {
        put_u32(out, f);
    }
    put_u32(out, session.observed.len() as u32);
    for &w in &session.observed {
        put_f64(out, w);
    }
    put_pending(out, &session.pending);
}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn opt_f64(&mut self) -> Option<Option<f64>> {
        Some(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    fn f64_vec(&mut self) -> Option<Vec<f64>> {
        let len = self.u32()? as usize;
        // The length is attacker-controlled on a corrupt payload; `take`
        // bounds the allocation by what is actually present.
        let raw = self.take(len.checked_mul(8)?)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect(),
        )
    }

    fn u32_vec(&mut self) -> Option<Vec<u32>> {
        let len = self.u32()? as usize;
        let raw = self.take(len.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect(),
        )
    }

    fn filter(&mut self) -> Option<FilterState> {
        let posterior = self.f64_vec()?;
        let epoch = usize::try_from(self.u64()?).ok()?;
        Some(FilterState { posterior, epoch })
    }

    fn pending(&mut self) -> Option<Option<PersistedPending>> {
        Some(if self.bool()? {
            let value = self.f64()?;
            let initial = self.bool()?;
            Some(PersistedPending { value, initial })
        } else {
            None
        })
    }

    fn session(&mut self) -> Option<PersistedSession> {
        let version = self.u64()?;
        let model = if self.bool()? {
            Some(usize::try_from(self.u64()?).ok()?)
        } else {
            None
        };
        let cluster_hit = self.bool()?;
        let filter = self.filter()?;
        let features = self.u32_vec()?;
        let observed = self.f64_vec()?;
        let pending = self.pending()?;
        Some(PersistedSession {
            version,
            model,
            cluster_hit,
            filter,
            features,
            observed,
            pending,
        })
    }
}

impl WalRecord {
    /// Encodes this record into its binary WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalRecord::Register { id, tick, session } => {
                out.push(TAG_REGISTER);
                put_u64(&mut out, *id);
                put_u64(&mut out, *tick);
                put_session(&mut out, session);
            }
            WalRecord::Update {
                id,
                tick,
                measured,
                observed_len,
                filter,
                pending,
            } => {
                out.push(TAG_UPDATE);
                put_u64(&mut out, *id);
                put_u64(&mut out, *tick);
                put_opt_f64(&mut out, *measured);
                put_u64(&mut out, *observed_len);
                put_filter(&mut out, filter);
                put_pending(&mut out, pending);
            }
            WalRecord::Remove { id } => {
                out.push(TAG_REMOVE);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a binary WAL payload. `None` on any malformation —
    /// unknown tag, short read, or trailing bytes — never a panic.
    pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor { bytes, pos: 0 };
        let record = match c.u8()? {
            TAG_REGISTER => WalRecord::Register {
                id: c.u64()?,
                tick: c.u64()?,
                session: c.session()?,
            },
            TAG_UPDATE => WalRecord::Update {
                id: c.u64()?,
                tick: c.u64()?,
                measured: c.opt_f64()?,
                observed_len: c.u64()?,
                filter: c.filter()?,
                pending: c.pending()?,
            },
            TAG_REMOVE => WalRecord::Remove { id: c.u64()? },
            _ => return None,
        };
        (c.pos == bytes.len()).then_some(record)
    }
}

/// Durability knobs for [`crate::ServerHandle::open_or_recover`].
#[derive(Clone)]
pub struct PersistConfig {
    /// Group-commit after this many buffered records (min 1; 1 = commit
    /// every record, the strictest durability).
    pub commit_every_records: usize,
    /// Also commit once this much time has elapsed on the server's
    /// injectable clock since the last commit (checked at append).
    pub commit_interval: Option<Duration>,
    /// Rotate the WAL and write a store snapshot every this many records
    /// (0 disables periodic compaction; a snapshot is still written at
    /// recovery).
    pub snapshot_every_records: u64,
    /// `fdatasync` each commit. Disabling trades power-loss durability
    /// for throughput (process-crash durability is kept — the bytes are
    /// in the page cache).
    pub fsync_data: bool,
    /// Commit-point fault hook (the crash harness's kill switch).
    pub fault_hook: Option<Arc<dyn WalFaultHook>>,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            commit_every_records: 1,
            commit_interval: None,
            snapshot_every_records: 4096,
            fsync_data: true,
            fault_hook: None,
        }
    }
}

impl std::fmt::Debug for PersistConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistConfig")
            .field("commit_every_records", &self.commit_every_records)
            .field("commit_interval", &self.commit_interval)
            .field("snapshot_every_records", &self.snapshot_every_records)
            .field("fsync_data", &self.fsync_data)
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// Name of the store snapshot file inside a persistence directory.
const SNAPSHOT_FILE: &str = "store.snap";
/// Subdirectory holding model bundles and the current-version pointer.
const MODELS_DIR: &str = "models";
/// Name of the current-version pointer file inside [`MODELS_DIR`].
const CURRENT_FILE: &str = "CURRENT";

fn segment_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:06}.log"))
}

/// Parses a `wal-NNNNNN.log` file name into its generation number.
fn segment_gen(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Sorted generation numbers of the WAL segments present in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(segment_gen) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// The registry's durability sink: one `v<N>.json` bundle per published
/// version plus an atomically-swapped `CURRENT` pointer, with GC
/// unlinking retained-out bundles. The bundle is written *before* the
/// pointer, so a crash between the two leaves `CURRENT` at the previous
/// (still present) version and the new bundle as a harmless orphan.
pub struct RegistryDir {
    dir: PathBuf,
}

impl RegistryDir {
    /// A sink writing under `dir` (created if missing).
    pub fn create(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(RegistryDir {
            dir: dir.to_path_buf(),
        })
    }

    fn bundle_path(&self, version: ModelVersion) -> PathBuf {
        self.dir.join(format!("v{}.json", version.0))
    }

    /// Reads every recoverable `(version, engine)` pair plus the current
    /// pointer. Unparseable bundles are skipped (never a panic); a
    /// missing or dangling pointer yields `None`.
    #[allow(clippy::type_complexity)]
    pub fn load(dir: &Path) -> io::Result<(Vec<(u64, PredictionEngine)>, Option<u64>)> {
        let mut engines = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((engines, None)),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(version) = name
                .to_str()
                .and_then(|n| n.strip_prefix('v'))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            match ModelBundle::read_atomic(&entry.path()) {
                Ok(bundle) => engines.push((version, bundle.into_engine())),
                Err(_) => cs2p_obs::event(
                    cs2p_obs::Level::Warn,
                    "serve.persist.bundle_corrupt",
                    vec![("version", version.into())],
                ),
            }
        }
        engines.sort_unstable_by_key(|(v, _)| *v);
        let current = fs::read_to_string(dir.join(CURRENT_FILE))
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|v| engines.iter().any(|(ev, _)| ev == v));
        Ok((engines, current))
    }
}

impl RegistryPersistence for RegistryDir {
    fn publish_version(&self, version: ModelVersion, engine: &PredictionEngine) {
        let bundle = ModelBundle::from_engine(engine);
        let write = bundle
            .write_atomic(&self.bundle_path(version))
            .and_then(|()| {
                atomic_write(
                    &self.dir.join(CURRENT_FILE),
                    version.0.to_string().as_bytes(),
                )
            });
        if let Err(e) = write {
            cs2p_obs::event(
                cs2p_obs::Level::Warn,
                "serve.persist.publish_failed",
                vec![
                    ("version", version.0.into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    }

    fn collect_version(&self, version: ModelVersion) {
        let _ = fs::remove_file(self.bundle_path(version));
    }
}

/// A reusable staging buffer of framed WAL records. Fill it with
/// [`SessionPersist::stage`] while a shard lock is held, land it with
/// [`SessionPersist::log_staged`] — one WAL-mutex acquisition per shard
/// group instead of one per record.
#[derive(Debug, Default)]
pub struct WalBatch {
    framed: Vec<u8>,
    records: u64,
}

/// The server-facing durability orchestrator: owns the WAL (segment
/// rotation, generation numbering), the compaction cadence, and the
/// registry sink, all under one persistence directory.
pub struct SessionPersist {
    dir: PathBuf,
    wal: Wal,
    /// Generation of the segment currently appended to.
    gen: AtomicU64,
    /// Records appended since the last snapshot (compaction trigger).
    since_snapshot: AtomicU64,
    snapshot_every: u64,
    /// Serializes compactions; `try_lock` keeps the trigger non-blocking.
    compact_lock: Mutex<()>,
    registry_sink: Arc<RegistryDir>,
    /// Set while a compaction owns the snapshot file.
    compacting: AtomicBool,
}

impl SessionPersist {
    /// Opens the persistence directory (created if missing) and starts a
    /// fresh WAL generation after the greatest one present — a torn tail
    /// in an old segment is never appended to.
    pub fn create(dir: &Path, clock: Arc<dyn Clock>, config: &PersistConfig) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let registry_sink = Arc::new(RegistryDir::create(&dir.join(MODELS_DIR))?);
        let gen = list_segments(dir)?.last().copied().unwrap_or(0) + 1;
        let wal = Wal::open(
            &segment_path(dir, gen),
            clock,
            config.commit_every_records,
            config.commit_interval,
            config.fsync_data,
            config.fault_hook.clone(),
        )?;
        Ok(SessionPersist {
            dir: dir.to_path_buf(),
            wal,
            gen: AtomicU64::new(gen),
            since_snapshot: AtomicU64::new(0),
            snapshot_every: config.snapshot_every_records,
            compact_lock: Mutex::new(()),
            registry_sink,
            compacting: AtomicBool::new(false),
        })
    }

    /// The registry sink writing under this directory's `models/`.
    pub fn registry_sink(&self) -> Arc<RegistryDir> {
        Arc::clone(&self.registry_sink)
    }

    /// Appends one mutation record (called under the owning shard's lock,
    /// so WAL order agrees with each shard's mutation order).
    pub fn log(&self, record: &WalRecord) {
        let _ = self.wal.append(&record.encode());
        self.since_snapshot.fetch_add(1, Ordering::Relaxed);
    }

    /// Encodes and frames `record` into `batch` without touching the
    /// WAL. The batched endpoint stages every record of a shard group
    /// this way (under the shard lock, so WAL order still agrees with
    /// the shard's mutation order) and lands the group with one
    /// [`log_staged`](Self::log_staged) call.
    pub fn stage(&self, record: &WalRecord, batch: &mut WalBatch) {
        frame_into(&mut batch.framed, &record.encode());
        batch.records += 1;
    }

    /// Appends everything staged in `batch` with one WAL-mutex
    /// acquisition, then resets `batch` for reuse (its buffer keeps its
    /// capacity — the next shard group stages allocation-free).
    pub fn log_staged(&self, batch: &mut WalBatch) {
        if batch.records == 0 {
            return;
        }
        let _ = self.wal.append_framed(&batch.framed, batch.records);
        self.since_snapshot
            .fetch_add(batch.records, Ordering::Relaxed);
        batch.framed.clear();
        batch.records = 0;
    }

    /// Whether the compaction cadence is due. Cheap; called per request.
    pub fn should_compact(&self) -> bool {
        self.snapshot_every > 0
            && self.since_snapshot.load(Ordering::Relaxed) >= self.snapshot_every
            && !self.wal.stats().dead
    }

    /// Commits buffered records now (graceful shutdown).
    pub fn flush(&self) -> io::Result<()> {
        self.wal.flush()
    }

    /// Current WAL counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Rotates the WAL, captures the store via `collect`, writes the
    /// snapshot atomically, and unlinks fully-covered segments. `collect`
    /// runs outside every shard lock held by the caller (it takes each
    /// shard's lock itself) and may already observe a few new-generation
    /// mutations — replay is idempotent over that window. A compaction
    /// already in flight makes this a no-op.
    pub fn compact_with(
        &self,
        collect: impl FnOnce() -> (u64, Vec<(u64, u64, PersistedSession)>),
    ) -> io::Result<()> {
        let Some(_guard) = self.compact_lock.try_lock() else {
            return Ok(());
        };
        self.compacting.store(true, Ordering::SeqCst);
        let result = self.compact_locked(collect);
        self.compacting.store(false, Ordering::SeqCst);
        result
    }

    fn compact_locked(
        &self,
        collect: impl FnOnce() -> (u64, Vec<(u64, u64, PersistedSession)>),
    ) -> io::Result<()> {
        let covered_gen = self.gen.load(Ordering::SeqCst);
        if !self.wal.rotate(&segment_path(&self.dir, covered_gen + 1))? {
            return Ok(()); // dead WAL: the process model has crashed
        }
        self.gen.store(covered_gen + 1, Ordering::SeqCst);
        self.since_snapshot.store(0, Ordering::SeqCst);
        let (tick, entries) = collect();
        write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &StoreSnapshot {
                covered_gen,
                tick,
                entries,
            },
        )?;
        for gen in list_segments(&self.dir)? {
            if gen <= covered_gen {
                let _ = fs::remove_file(segment_path(&self.dir, gen));
            }
        }
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("serve.persist.snapshots", 1);
            cs2p_obs::counter_add("serve.persist.compactions", 1);
        }
        Ok(())
    }
}

/// Everything [`recover`] pulled back from a persistence directory. The
/// server layer resolves each session's `version` against `engines`
/// (dropping sessions whose bundle was GC'd or corrupt) and rebuilds the
/// store with `tick` and the recovered LRU stamps.
#[derive(Debug)]
pub struct RecoveredState {
    /// The store's logical tick counter to resume from.
    pub tick: u64,
    /// `(id, last_touch, state)` for every recovered session, by id.
    pub sessions: Vec<(u64, u64, PersistedSession)>,
    /// Recovered `(version, engine)` pairs, ascending.
    pub engines: Vec<(u64, PredictionEngine)>,
    /// The persisted current-version pointer, when present and valid.
    pub current_version: Option<u64>,
    /// `false` when replay stopped at a torn or corrupt record.
    pub clean: bool,
    /// WAL records replayed (after snapshot-coverage skipping).
    pub wal_records: u64,
}

/// Replays snapshot + WAL from `dir` into the state the committed prefix
/// of the crashed run had. Truncates at the first corrupt or torn record
/// and never panics on arbitrary bytes; a missing directory is an empty
/// (fresh) state. `max_observed` caps per-session measurement history
/// (the server's recorded-epochs bound).
pub fn recover(dir: &Path, max_observed: usize) -> io::Result<RecoveredState> {
    let (engines, current_version) = RegistryDir::load(&dir.join(MODELS_DIR))?;
    let snapshot: Option<StoreSnapshot<PersistedSession>> = read_snapshot(&dir.join(SNAPSHOT_FILE));
    let covered_gen = snapshot.as_ref().map(|s| s.covered_gen).unwrap_or(0);
    let mut tick = snapshot.as_ref().map(|s| s.tick).unwrap_or(0);
    let mut sessions: std::collections::BTreeMap<u64, (u64, PersistedSession)> = snapshot
        .map(|s| {
            s.entries
                .into_iter()
                .map(|(id, last_touch, state)| (id, (last_touch, state)))
                .collect()
        })
        .unwrap_or_default();

    let mut clean = true;
    let mut wal_records = 0u64;
    'segments: for gen in list_segments(dir)? {
        if gen <= covered_gen {
            continue;
        }
        let replay = read_wal(&segment_path(dir, gen))?;
        for payload in &replay.records {
            let record: WalRecord = match WalRecord::decode(payload) {
                Some(record) => record,
                None => {
                    // A frame with a valid CRC but an unparseable body is
                    // corruption past the framing layer: same contract,
                    // truncate here.
                    clean = false;
                    break 'segments;
                }
            };
            wal_records += 1;
            match record {
                WalRecord::Register {
                    id,
                    tick: t,
                    session,
                } => {
                    tick = tick.max(t + 1);
                    sessions.insert(id, (t, session));
                }
                WalRecord::Update {
                    id,
                    tick: t,
                    measured,
                    observed_len,
                    filter,
                    pending,
                } => {
                    tick = tick.max(t + 1);
                    if let Some((last_touch, state)) = sessions.get_mut(&id) {
                        *last_touch = t;
                        if let Some(w) = measured {
                            if (state.observed.len() as u64) < observed_len
                                && state.observed.len() < max_observed
                            {
                                state.observed.push(w);
                            }
                        }
                        state.filter = filter;
                        state.pending = pending;
                    }
                }
                WalRecord::Remove { id } => {
                    sessions.remove(&id);
                }
            }
        }
        if !replay.clean {
            clean = false;
            break;
        }
    }

    if cs2p_obs::enabled() {
        cs2p_obs::counter_add("serve.persist.recoveries", 1);
        if !clean {
            cs2p_obs::counter_add("serve.persist.truncated_records", 1);
        }
    }
    Ok(RecoveredState {
        tick,
        sessions: sessions
            .into_iter()
            .map(|(id, (last_touch, state))| (id, last_touch, state))
            .collect(),
        engines,
        current_version,
        clean,
        wal_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs2p_obs::ManualClock;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cs2p-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_truncation_yields_longest_valid_prefix() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize]).collect();
        for p in &payloads {
            frame_into(&mut buf, p);
        }
        let full = decode_frames(&buf);
        assert!(full.clean);
        assert_eq!(full.records, payloads);
        // Every truncation offset recovers exactly the frames that fit.
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + FRAME_HEADER + p.len());
        }
        for cut in 0..=buf.len() {
            let out = decode_frames(&buf[..cut]);
            let expect = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(out.records.len(), expect, "cut at {cut}");
            assert_eq!(out.clean, boundaries.contains(&cut), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_decoding_without_panic() {
        let mut buf = Vec::new();
        frame_into(&mut buf, b"hello");
        frame_into(&mut buf, b"world");
        for i in 0..buf.len() {
            let mut torn = buf.clone();
            torn[i] ^= 0x40;
            let out = decode_frames(&torn);
            assert!(out.records.len() <= 2);
            // A flipped byte in the second frame must not lose the first.
            if i >= FRAME_HEADER + 5 {
                assert_eq!(out.records[0], b"hello");
            }
        }
    }

    #[test]
    fn wal_group_commit_batches_and_flush_drains() {
        let dir = temp_dir("wal");
        let path = dir.join("wal-000001.log");
        let clock = Arc::new(ManualClock::new());
        let wal = Wal::open(&path, clock, 3, None, true, None).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.stats().commits, 0, "below the batch threshold");
        assert!(read_wal(&path).unwrap().records.is_empty());
        wal.append(b"c").unwrap();
        assert_eq!(wal.stats().commits, 1);
        assert_eq!(read_wal(&path).unwrap().records.len(), 3);
        wal.append(b"d").unwrap();
        wal.flush().unwrap();
        assert_eq!(read_wal(&path).unwrap().records.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_interval_commit_uses_injectable_clock() {
        let dir = temp_dir("wal-clock");
        let path = dir.join("wal-000001.log");
        let clock = Arc::new(ManualClock::new());
        let wal = Wal::open(
            &path,
            Arc::clone(&clock) as Arc<dyn Clock>,
            usize::MAX,
            Some(Duration::from_millis(5)),
            true,
            None,
        )
        .unwrap();
        wal.append(b"a").unwrap();
        assert_eq!(wal.stats().commits, 0);
        clock.advance(5_000);
        wal.append(b"b").unwrap();
        assert_eq!(wal.stats().commits, 1, "interval elapsed on the clock");
        assert_eq!(read_wal(&path).unwrap().records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    struct KillAt(u64);
    impl WalFaultHook for KillAt {
        fn on_commit(&self, commit_index: u64, _batch: &[u8]) -> CommitOutcome {
            if commit_index == self.0 {
                CommitOutcome::Kill
            } else {
                CommitOutcome::Write
            }
        }
    }

    #[test]
    fn killed_wal_loses_the_uncommitted_batch_and_goes_silent() {
        let dir = temp_dir("wal-kill");
        let path = dir.join("wal-000001.log");
        let clock = Arc::new(ManualClock::new());
        let wal = Wal::open(&path, clock, 1, None, true, Some(Arc::new(KillAt(1)))).unwrap();
        wal.append(b"durable").unwrap(); // commit 0: written
        wal.append(b"lost").unwrap(); // commit 1: killed
        wal.append(b"also-lost").unwrap(); // dead: dropped silently
        wal.flush().unwrap();
        assert!(wal.stats().dead);
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.records, vec![b"durable".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_leaves_a_torn_record_recovery_truncates() {
        let dir = temp_dir("wal-torn");
        let path = dir.join("wal-000001.log");
        let clock = Arc::new(ManualClock::new());
        struct TearAt(u64);
        impl WalFaultHook for TearAt {
            fn on_commit(&self, commit_index: u64, batch: &[u8]) -> CommitOutcome {
                if commit_index == self.0 {
                    CommitOutcome::ShortWrite(batch.len() / 2)
                } else {
                    CommitOutcome::Write
                }
            }
        }
        let wal = Wal::open(&path, clock, 1, None, true, Some(Arc::new(TearAt(1)))).unwrap();
        wal.append(b"first-record-payload").unwrap();
        wal.append(b"second-record-payload").unwrap(); // torn in half
        assert!(wal.stats().dead);
        let replay = read_wal(&path).unwrap();
        assert!(!replay.clean, "the torn tail must be detected");
        assert_eq!(replay.records, vec![b"first-record-payload".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("file.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_and_corrupt_snapshot_reads_as_absent() {
        let dir = temp_dir("snap");
        let path = dir.join(SNAPSHOT_FILE);
        let snap = StoreSnapshot {
            covered_gen: 3,
            tick: 17,
            entries: vec![(1, 5, 10u64), (2, 6, 20)],
        };
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot::<u64>(&path), Some(snap));
        fs::write(&path, b"{torn").unwrap();
        assert_eq!(read_snapshot::<u64>(&path), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_an_empty_dir_is_a_fresh_state() {
        let dir = temp_dir("fresh");
        let state = recover(&dir, 1024).unwrap();
        assert!(state.sessions.is_empty());
        assert!(state.engines.is_empty());
        assert_eq!(state.current_version, None);
        assert!(state.clean);
        assert_eq!(state.tick, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_gen("wal-000007.log"), Some(7));
        assert_eq!(segment_gen("wal-junk.log"), None);
        assert_eq!(segment_gen("store.snap"), None);
        let p = segment_path(Path::new("/d"), 42);
        assert_eq!(
            segment_gen(p.file_name().unwrap().to_str().unwrap()),
            Some(42)
        );
    }

    fn codec_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                id: 7,
                tick: 19,
                session: PersistedSession {
                    version: 3,
                    model: Some(2),
                    cluster_hit: true,
                    filter: FilterState {
                        posterior: vec![0.25, 0.75],
                        epoch: 4,
                    },
                    features: vec![1, 0, 9],
                    observed: vec![1.5, f64::NAN, -0.0],
                    pending: Some(PersistedPending {
                        value: 2.5,
                        initial: false,
                    }),
                },
            },
            WalRecord::Register {
                id: 0,
                tick: 0,
                session: PersistedSession {
                    version: 1,
                    model: None,
                    cluster_hit: false,
                    filter: FilterState {
                        posterior: vec![],
                        epoch: 0,
                    },
                    features: vec![],
                    observed: vec![],
                    pending: None,
                },
            },
            WalRecord::Update {
                id: u64::MAX,
                tick: 88,
                measured: Some(f64::INFINITY),
                observed_len: 12,
                filter: FilterState {
                    posterior: vec![1.0],
                    epoch: 1,
                },
                pending: Some(PersistedPending {
                    value: -1.0,
                    initial: true,
                }),
            },
            WalRecord::Update {
                id: 5,
                tick: 6,
                measured: None,
                observed_len: 0,
                filter: FilterState {
                    posterior: vec![0.5, 0.5],
                    epoch: 2,
                },
                pending: None,
            },
            WalRecord::Remove { id: 99 },
        ]
    }

    #[test]
    fn wal_record_codec_roundtrips_bit_exactly() {
        for record in codec_records() {
            let bytes = record.encode();
            let back = WalRecord::decode(&bytes).expect("decode own encoding");
            // PartialEq treats NaN != NaN; compare the re-encoding
            // instead, which is bit-exact by construction.
            assert_eq!(back.encode(), bytes, "re-encode of {record:?}");
        }
    }

    #[test]
    fn wal_record_codec_rejects_malformed_payloads_without_panic() {
        assert!(WalRecord::decode(&[]).is_none(), "empty payload");
        assert!(WalRecord::decode(&[0xFF, 1, 2, 3]).is_none(), "unknown tag");
        for record in codec_records() {
            let bytes = record.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WalRecord::decode(&bytes[..cut]).is_none(),
                    "truncation at {cut} of {record:?}"
                );
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert!(
                WalRecord::decode(&extended).is_none(),
                "trailing byte after {record:?}"
            );
        }
        // A length prefix claiming more elements than the payload holds
        // must fail the bounds check, not allocate.
        let mut huge = vec![TAG_REMOVE];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        huge[0] = TAG_UPDATE;
        assert!(WalRecord::decode(&huge).is_none(), "short update");
    }
}
