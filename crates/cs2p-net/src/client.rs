//! The player-side HTTP client and the remote predictor.
//!
//! [`HttpClient`] is a tiny blocking client with one keep-alive connection
//! (reconnecting on failure). [`RemotePredictor`] makes the prediction
//! server look like any other [`ThroughputPredictor`]: `observe` buffers
//! the measurement, and the next prediction request flushes it in the POST
//! — exactly the Dash.js flow of §6 ("it sends a POST request (containing
//! the actual throughput of the last epoch) to the server and fetches the
//! result of throughput prediction").

use crate::http::{read_response, write_request, Request, Response};
use crate::protocol::{PredictRequest, PredictResponse, SessionLog};
use bytes::Bytes;
use cs2p_core::ThroughputPredictor;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking HTTP/1.1 client holding one keep-alive connection.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    connection: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
}

impl HttpClient {
    /// A client for the given server address (not yet connected).
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            connection: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut (BufReader<TcpStream>, BufWriter<TcpStream>)> {
        if self.connection.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            let writer = BufWriter::new(stream);
            self.connection = Some((reader, writer));
        }
        Ok(self.connection.as_mut().unwrap())
    }

    /// Sends one request, reusing the connection; retries once on a broken
    /// keep-alive connection.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        let _span = cs2p_obs::span("net.client.request");
        cs2p_obs::counter_add("net.client.requests", 1);
        for attempt in 0..2 {
            match self.try_send(req) {
                Ok(resp) => {
                    if cs2p_obs::enabled() {
                        cs2p_obs::counter_add("net.client.bytes_out", req.body.len() as u64);
                        cs2p_obs::counter_add("net.client.bytes_in", resp.body.len() as u64);
                    }
                    return Ok(resp);
                }
                Err(e) if attempt == 0 => {
                    // Stale keep-alive connection: reconnect and retry.
                    cs2p_obs::counter_add("net.client.reconnects", 1);
                    self.connection = None;
                    let _ = e;
                }
                Err(e) => {
                    cs2p_obs::counter_add("net.client.errors", 1);
                    return Err(e);
                }
            }
        }
        unreachable!()
    }

    /// Drops the current keep-alive connection; the next request
    /// reconnects. Used after a response carrying `Connection: close`.
    pub fn reset_connection(&mut self) {
        self.connection = None;
    }

    fn try_send(&mut self, req: &Request) -> io::Result<Response> {
        let (reader, writer) = self.connect()?;
        write_request(writer, req)?;
        read_response(reader)
    }

    /// POSTs a JSON value, expecting a 2xx JSON reply.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &mut self,
        path: &str,
        value: &T,
    ) -> io::Result<R> {
        let body =
            serde_json::to_vec(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let resp = self.send(&Request::new("POST", path, body))?;
        if !(200..300).contains(&resp.status) {
            return Err(io::Error::other(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )));
        }
        serde_json::from_slice(&resp.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// GETs a path, expecting a 2xx reply.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        let resp = self.send(&Request::new("GET", path, Bytes::new()))?;
        if !(200..300).contains(&resp.status) {
            return Err(io::Error::other(format!("server returned {}", resp.status)));
        }
        Ok(resp)
    }
}

/// A [`ThroughputPredictor`] backed by the prediction server.
///
/// Caches the last fetched prediction window so that an MPC controller
/// asking for horizons 1..h costs one HTTP round trip per chunk, not h.
#[derive(Debug)]
pub struct RemotePredictor {
    client: HttpClient,
    session_id: u64,
    features: Vec<u32>,
    /// Measurement not yet shipped to the server.
    pending_measurement: Option<f64>,
    /// Whether the session has been registered (first request sent).
    registered: bool,
    /// Cached predictions from the last POST (index 0 = next epoch).
    cache: Vec<f64>,
    /// Whether the cache reflects the initial (cluster-median) prediction.
    cache_initial: bool,
    /// Horizon to request per POST.
    fetch_horizon: usize,
}

impl RemotePredictor {
    /// A remote predictor for one session.
    pub fn new(addr: SocketAddr, session_id: u64, features: Vec<u32>) -> Self {
        RemotePredictor {
            client: HttpClient::new(addr),
            session_id,
            features,
            pending_measurement: None,
            registered: false,
            cache: Vec::new(),
            cache_initial: false,
            fetch_horizon: 8,
        }
    }

    /// Ensures the cache covers `k` epochs ahead, POSTing if necessary.
    /// Returns `None` on network failure or server backpressure
    /// (prediction is best-effort; the player degrades to no-prediction
    /// behaviour rather than stalling). If the server evicted this
    /// session (404 "unknown session"), re-registers transparently by
    /// resending the features.
    fn ensure_cache(&mut self, k: usize) -> Option<()> {
        let dirty = self.pending_measurement.is_some() || !self.registered;
        if !dirty && self.cache.len() >= k {
            return Some(());
        }
        // Two attempts: the second only after a 404 told us the server
        // no longer knows this session and we must resend features.
        for _ in 0..2 {
            let preq = PredictRequest {
                session_id: self.session_id,
                features: if self.registered {
                    None
                } else {
                    Some(self.features.clone())
                },
                measured_mbps: self.pending_measurement,
                horizon: self.fetch_horizon.max(k),
            };
            let body = serde_json::to_vec(&preq).ok()?;
            let resp = self
                .client
                .send(&Request::new("POST", "/predict", body))
                .ok()?;
            match resp.status {
                200..=299 => {
                    let presp: PredictResponse = serde_json::from_slice(&resp.body).ok()?;
                    self.registered = true;
                    self.pending_measurement = None;
                    self.cache = presp.predictions_mbps;
                    self.cache_initial = presp.initial;
                    return Some(());
                }
                404 if self.registered => {
                    // Evicted server-side: re-register with features and
                    // keep the pending measurement — it still seeds the
                    // fresh filter with the latest real observation.
                    cs2p_obs::counter_add("predict.client.reinit", 1);
                    self.registered = false;
                    self.cache.clear();
                }
                503 => {
                    cs2p_obs::counter_add("predict.client.backpressure", 1);
                    // The 503 carried `Connection: close`.
                    self.client.reset_connection();
                    return None;
                }
                _ => return None,
            }
        }
        None
    }

    /// Uploads a session log (fire-and-forget semantics on error).
    pub fn upload_log(&mut self, log: &SessionLog) -> io::Result<()> {
        let body =
            serde_json::to_vec(log).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let resp = self.client.send(&Request::new("POST", "/log", body))?;
        if resp.status == 204 {
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "log upload failed: {}",
                resp.status
            )))
        }
    }
}

impl ThroughputPredictor for RemotePredictor {
    fn name(&self) -> &str {
        "CS2P-remote"
    }

    fn predict_initial(&mut self) -> Option<f64> {
        self.ensure_cache(1)?;
        if self.cache_initial {
            self.cache.first().copied()
        } else {
            None
        }
    }

    fn predict_ahead(&mut self, k: usize) -> Option<f64> {
        self.ensure_cache(k)?;
        self.cache.get(k - 1).copied()
    }

    fn observe(&mut self, throughput: f64) {
        // If two observations land without an intervening prediction, ship
        // the first immediately so the server's filter sees every epoch.
        if self.pending_measurement.is_some() {
            let _ = self.ensure_cache(1);
        }
        self.pending_measurement = Some(throughput);
    }

    fn reset(&mut self) {
        self.pending_measurement = None;
        self.registered = false;
        self.cache.clear();
        self.cache_initial = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve;
    use cs2p_testkit::scenarios::tiny_engine;

    #[test]
    fn remote_predictor_mirrors_algorithm_one() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 1, vec![1]);

        let init = p.predict_initial().unwrap();
        assert!((init - 5.0).abs() < 0.5);

        p.observe(5.2);
        let mid = p.predict_next().unwrap();
        assert!((mid - 5.0).abs() < 0.5);
        assert!(p.predict_initial().is_none()); // no longer initial

        // One observation + several horizon queries = 2 POSTs total.
        let _ = p.predict_ahead(3).unwrap();
        let _ = p.predict_ahead(5).unwrap();
        assert_eq!(server.predictions_served(), 2);
        server.shutdown();
    }

    #[test]
    fn double_observe_flushes_intermediate_measurement() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 2, vec![0]);
        let _ = p.predict_initial();
        p.observe(1.0);
        p.observe(1.1); // must push the first to the server
        let _ = p.predict_next().unwrap();
        assert_eq!(server.predictions_served(), 3);
        server.shutdown();
    }

    #[test]
    fn network_failure_degrades_to_none() {
        // Point at a port nobody listens on.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut p = RemotePredictor::new(addr, 1, vec![0]);
        assert_eq!(p.predict_initial(), None);
        assert_eq!(p.predict_next(), None);
    }

    #[test]
    fn reset_restarts_session() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 3, vec![1]);
        let _ = p.predict_initial();
        p.observe(5.0);
        let _ = p.predict_next();
        p.reset();
        // After reset the first prediction is initial again (server keeps
        // the old session state, but a fresh session id would normally be
        // used; here the same id resumes server-side midstream state).
        p.session_id = 4;
        let init = p.predict_initial();
        assert!(init.is_some());
        server.shutdown();
    }

    #[test]
    fn evicted_session_reregisters_transparently() {
        use crate::server::{serve_with, ServeConfig};
        let config = ServeConfig {
            n_shards: 1,
            max_sessions: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let mut p1 = RemotePredictor::new(server.addr(), 1, vec![1]);
        assert!(p1.predict_initial().is_some());
        // A second session evicts the first (capacity 1).
        let mut p2 = RemotePredictor::new(server.addr(), 2, vec![0]);
        assert!(p2.predict_initial().is_some());
        // The first keeps streaming: the server answers 404 (unknown
        // session) and the predictor re-registers without the caller
        // noticing anything but a fresh filter.
        p1.observe(5.0);
        assert!(p1.predict_next().is_some());
        let stats = server.shutdown();
        assert!(stats.sessions_evicted >= 1);
    }

    #[test]
    fn http_client_reconnects_after_server_restart_failure() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::new(server.addr());
        let h1 = client.get("/healthz").unwrap();
        assert_eq!(h1.status, 200);
        // Second request on the same connection also works (keep-alive).
        let h2 = client.get("/healthz").unwrap();
        assert_eq!(h2.status, 200);
        server.shutdown();
    }
}
