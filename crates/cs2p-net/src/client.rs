//! The player-side HTTP client and the remote predictor.
//!
//! [`HttpClient`] is a tiny blocking client with one keep-alive connection
//! (reconnecting on failure). [`RemotePredictor`] makes the prediction
//! server look like any other [`ThroughputPredictor`]: `observe` buffers
//! the measurement, and the next prediction request flushes it in the POST
//! — exactly the Dash.js flow of §6 ("it sends a POST request (containing
//! the actual throughput of the last epoch) to the server and fetches the
//! result of throughput prediction").

use crate::http::{read_response, write_request, Request, Response};
use crate::protocol::{
    BatchEntryResult, BatchPredictRequest, BatchPredictResponse, Degradation, PredictRequest,
    PredictResponse, SessionLog, MAX_BATCH_ENTRIES,
};
use crate::transport::{IoHalf, TransportWrapper};
use bytes::Bytes;
use cs2p_core::ThroughputPredictor;
use cs2p_obs::{Clock, MonotonicClock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Retry tuning for [`HttpClient`]: capped exponential backoff with
/// seeded jitter. Defaults are sized so tests stay fast; a deployment
/// would raise the caps.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total send attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff delay.
    pub max_backoff: Duration,
    /// Seed for the jitter RNG — fixed seed, fixed delay sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            seed: 0,
        }
    }
}

/// The client's persistent backoff state: one jitter RNG plus the count
/// of consecutive failures. Deliberately **not** reset per request — a
/// burst of 503s across several keep-alive requests keeps escalating the
/// delay; only a successful (non-503) response resets it.
struct BackoffState {
    rng: ChaCha8Rng,
    consecutive_failures: u32,
}

impl BackoffState {
    fn new(seed: u64) -> Self {
        BackoffState {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC52F_BAC0_FF5E_7D1A),
            consecutive_failures: 0,
        }
    }

    /// The next delay: `base << failures`, capped, with jitter drawn
    /// uniformly from `[raw/2, raw)` so synchronized clients spread out.
    fn next_delay(&mut self, policy: &RetryPolicy) -> Duration {
        let exp = self.consecutive_failures.min(20);
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let base = policy.base_backoff.as_micros().min(u64::MAX as u128) as u64;
        let cap = policy.max_backoff.as_micros().min(u64::MAX as u128) as u64;
        let raw = base.saturating_mul(1u64 << exp).min(cap.max(base));
        if raw < 2 {
            return Duration::from_micros(raw);
        }
        Duration::from_micros(self.rng.gen_range(raw / 2..raw))
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
    }
}

/// How the client waits out a backoff delay. Swappable so chaos tests
/// record delays (or drive a manual clock) instead of really sleeping.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// Tuning for the client-side circuit breaker (see
/// [`HttpClient::with_breaker`]). The breaker sits *in front of* the
/// retry policy: retries recover one request from a transient fault,
/// while the breaker stops a client from paying connect/retry latency
/// at all once the server is persistently failing or shedding — the
/// client-side half of the server's admission ladder.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failed logical requests (transport give-ups or 503
    /// sheds) that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing one half-open
    /// probe. Doubles on every re-open while the server stays bad.
    pub cooldown: Duration,
    /// Ceiling on the (pre-jitter) doubled cooldown.
    pub max_cooldown: Duration,
    /// Seed for the cooldown jitter RNG — fixed seed, fixed schedule.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_secs(10),
            seed: 0,
        }
    }
}

/// Externally visible circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast locally until the cooldown expires.
    Open,
    /// Cooldown expired: the next request is the recovery probe.
    HalfOpen,
}

/// The breaker state machine. All timing reads the client's injectable
/// clock, so tests crank a [`ManualClock`](cs2p_obs::ManualClock)
/// through open→half-open transitions deterministically.
struct CircuitBreaker {
    config: BreakerConfig,
    rng: ChaCha8Rng,
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock reading (µs) when the open state admits a probe.
    open_until_us: u64,
    /// Consecutive opens without an intervening close — drives the
    /// doubling cooldown.
    reopens: u32,
}

impl CircuitBreaker {
    fn new(config: BreakerConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xB4EA_4E4B_0017_C52F);
        CircuitBreaker {
            config,
            rng,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_us: 0,
            reopens: 0,
        }
    }

    /// Gate for one logical request: `true` admits it (possibly as the
    /// half-open probe), `false` fails fast.
    fn admit(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us >= self.open_until_us {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    cs2p_obs::counter_add("client.breaker.fast_fails", 1);
                    false
                }
            }
        }
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            self.reopens = 0;
            cs2p_obs::counter_add("client.breaker.closes", 1);
        }
    }

    fn on_failure(&mut self, now_us: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.config.failure_threshold.max(1);
        if !trip {
            return;
        }
        let base = self.config.cooldown.as_micros().min(u64::MAX as u128) as u64;
        let cap = self.config.max_cooldown.as_micros().min(u64::MAX as u128) as u64;
        let exp = self.reopens.min(20);
        let raw = base.saturating_mul(1u64 << exp).min(cap.max(base)).max(1);
        // Jitter uniformly in [raw, 1.5·raw) so a fleet of clients that
        // tripped together does not re-probe the server in lockstep.
        let spread = (raw / 2).max(1);
        let cooldown = raw.saturating_add(self.rng.gen_range(0..spread));
        self.state = BreakerState::Open;
        self.open_until_us = now_us.saturating_add(cooldown);
        self.reopens = self.reopens.saturating_add(1);
        cs2p_obs::counter_add("client.breaker.opens", 1);
    }
}

/// The coalescing buffer behind [`HttpClient::with_batching`]: queued
/// predict entries waiting to go out as one `/predict_batch` frame.
struct Batching {
    /// Flush when this many entries are pending.
    max_entries: usize,
    /// Flush when the oldest pending entry has waited this long (checked
    /// against the injectable clock at each `queue_predict`).
    max_delay: Duration,
    /// Entries queued since the last flush, in arrival order.
    pending: Vec<PredictRequest>,
    /// Clock reading when `pending[0]` was queued.
    first_queued_us: Option<u64>,
}

/// What a batch flush produced.
#[derive(Debug)]
pub enum BatchFlush {
    /// Per-entry results in queue order, each paired with the request it
    /// answers. Entry statuses are independent: one evicted session (404)
    /// does not fail its neighbours.
    Done(Vec<(PredictRequest, BatchEntryResult)>),
    /// The server rejected the whole frame with backpressure (503). The
    /// entries were **re-queued** — backpressure rejects the frame before
    /// any entry is applied, so replaying it later is safe — and the
    /// client's persistent backoff state was charged.
    Backpressure,
}

/// A blocking HTTP/1.1 client holding one keep-alive connection, with
/// seeded capped-exponential retry (see [`RetryPolicy`]) and an optional
/// per-connection transport hook for fault injection.
pub struct HttpClient {
    addr: SocketAddr,
    connection: Option<(BufReader<IoHalf>, BufWriter<IoHalf>)>,
    retry: RetryPolicy,
    backoff: BackoffState,
    sleeper: Sleeper,
    transport_wrapper: Option<Arc<dyn TransportWrapper>>,
    /// Connections opened so far — the `conn_seq` fault plans key on.
    connects: u64,
    /// When set, every logical request gets a fresh trace id from this
    /// (seeded) RNG, sent as `x-trace-id` and scoped over the client's
    /// own spans. Retries of one request share its id.
    trace_rng: Option<ChaCha8Rng>,
    /// The coalescing buffer, when [`Self::with_batching`] enabled it.
    batching: Option<Batching>,
    /// The circuit breaker, when [`Self::with_breaker`] armed it.
    breaker: Option<CircuitBreaker>,
    /// `Retry-After` seconds from the most recent 503; floors the next
    /// backpressure delay and clears on the next non-503 success.
    retry_after_hint_secs: Option<u64>,
    /// Time source for the coalescing max-delay check and the breaker
    /// cooldown (injectable so tests crank a
    /// [`ManualClock`](cs2p_obs::ManualClock)).
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient")
            .field("addr", &self.addr)
            .field("connected", &self.connection.is_some())
            .field("retry", &self.retry)
            .field("consecutive_failures", &self.backoff.consecutive_failures)
            .field("transport_wrapper", &self.transport_wrapper.is_some())
            .field("connects", &self.connects)
            .field("tracing", &self.trace_rng.is_some())
            .field("batching", &self.batching.is_some())
            .field("breaker", &self.breaker.as_ref().map(|b| b.state))
            .finish()
    }
}

impl HttpClient {
    /// A client for the given server address (not yet connected).
    pub fn new(addr: SocketAddr) -> Self {
        let retry = RetryPolicy::default();
        let backoff = BackoffState::new(retry.seed);
        HttpClient {
            addr,
            connection: None,
            retry,
            backoff,
            sleeper: Arc::new(std::thread::sleep),
            transport_wrapper: None,
            connects: 0,
            trace_rng: None,
            batching: None,
            breaker: None,
            retry_after_hint_secs: None,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Enables end-to-end request tracing: each logical request draws a
    /// trace id from a ChaCha RNG seeded here, propagates it to the
    /// server in the `x-trace-id` header, and scopes it over the
    /// client-side telemetry. Fixed seed, fixed id sequence — traces
    /// stay correlatable across deterministic reruns.
    pub fn with_trace_seed(mut self, seed: u64) -> Self {
        self.trace_rng = Some(ChaCha8Rng::seed_from_u64(seed ^ 0x7ACE_1D5E_ED00_C52F));
        self
    }

    /// Replaces the retry policy (resetting the backoff RNG to its seed).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.backoff = BackoffState::new(policy.seed);
        self.retry = policy;
        self
    }

    /// Installs a transport hook wrapping each new connection; `conn_seq`
    /// passed to the hook is this client's connect count (0-based).
    pub fn with_transport_wrapper(mut self, wrapper: Arc<dyn TransportWrapper>) -> Self {
        self.transport_wrapper = Some(wrapper);
        self
    }

    /// Replaces how backoff delays are waited out (tests record instead
    /// of sleeping).
    pub fn with_sleeper(mut self, sleeper: Sleeper) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Enables request coalescing: [`Self::queue_predict`] buffers
    /// entries and ships them as one `POST /predict_batch` frame once
    /// `max_entries` are pending or the oldest entry has waited
    /// `max_delay` (measured on the injectable clock — see
    /// [`Self::with_clock`]). `max_entries` is clamped to
    /// [`MAX_BATCH_ENTRIES`] so a well-configured client never trips the
    /// server's frame limit.
    pub fn with_batching(mut self, max_entries: usize, max_delay: Duration) -> Self {
        self.batching = Some(Batching {
            max_entries: max_entries.clamp(1, MAX_BATCH_ENTRIES),
            max_delay,
            pending: Vec::new(),
            first_queued_us: None,
        });
        self
    }

    /// Replaces the time source used by the coalescing max-delay check.
    /// Tests install a [`ManualClock`](cs2p_obs::ManualClock) and crank
    /// it explicitly; the default is a real monotonic clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Arms a circuit breaker in front of the retry policy: after
    /// [`BreakerConfig::failure_threshold`] consecutive failed logical
    /// requests (transport give-ups or 503 sheds) the breaker opens and
    /// [`Self::send`] fails fast locally — no connect, no retries, no
    /// `net.client.errors` — until the (doubling, jittered) cooldown
    /// admits one half-open probe. Off by default.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(config));
        self
    }

    /// The breaker's current state, or `None` when no breaker is armed.
    /// An expired open state still reads `Open` until the next request
    /// promotes it to the half-open probe.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state)
    }

    /// `Retry-After` seconds carried by the most recent 503 (cleared by
    /// the next non-503 success). Floors the next
    /// [`Self::note_backpressure`] delay.
    pub fn retry_after_hint_secs(&self) -> Option<u64> {
        self.retry_after_hint_secs
    }

    /// Whether [`Self::with_batching`] enabled coalescing.
    pub fn batching_enabled(&self) -> bool {
        self.batching.is_some()
    }

    /// Entries currently waiting in the coalescing buffer.
    pub fn pending_predicts(&self) -> usize {
        self.batching.as_ref().map_or(0, |b| b.pending.len())
    }

    /// Queues one predict entry for the next batch frame. Returns
    /// `Ok(None)` while coalescing; returns the flush outcome when this
    /// entry tripped a threshold (`max_entries` reached, or the oldest
    /// pending entry aged past `max_delay`). Panics if
    /// [`Self::with_batching`] was never called — queueing without a
    /// coalescing policy is a programming error, not a runtime state.
    pub fn queue_predict(&mut self, entry: PredictRequest) -> io::Result<Option<BatchFlush>> {
        let now = self.clock.now_micros();
        let b = self
            .batching
            .as_mut()
            .expect("queue_predict requires with_batching");
        if b.pending.is_empty() {
            b.first_queued_us = Some(now);
        }
        b.pending.push(entry);
        let full = b.pending.len() >= b.max_entries;
        let aged = b
            .first_queued_us
            .map(|t0| now.saturating_sub(t0) >= b.max_delay.as_micros() as u64)
            .unwrap_or(false);
        if full || aged {
            return self.flush_predicts().map(Some);
        }
        Ok(None)
    }

    /// Forces the coalescing buffer out as one `/predict_batch` frame
    /// regardless of thresholds. An empty buffer is a no-op (`Done`
    /// with no results). Transport failures ride the client's normal
    /// retry path — the whole frame is replayed, same idempotency
    /// semantics as a singleton `/predict` retry — and on final failure
    /// the entries are re-queued so the measurements they carry are not
    /// lost.
    pub fn flush_predicts(&mut self) -> io::Result<BatchFlush> {
        let Some(b) = self.batching.as_mut() else {
            return Ok(BatchFlush::Done(Vec::new()));
        };
        if b.pending.is_empty() {
            return Ok(BatchFlush::Done(Vec::new()));
        }
        let entries = std::mem::take(&mut b.pending);
        b.first_queued_us = None;
        let breq = BatchPredictRequest { entries };
        let body = breq.to_json_bytes();
        let entries = breq.entries;
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("client.batch.flushes", 1);
            cs2p_obs::counter_add("client.batch.entries", entries.len() as u64);
        }
        let resp = match self.send(&Request::new("POST", "/predict_batch", body)) {
            Ok(resp) => resp,
            Err(e) => {
                self.requeue(entries);
                return Err(e);
            }
        };
        match resp.status {
            200..=299 => {
                let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if bresp.results.len() != entries.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "batch result count does not match entry count",
                    ));
                }
                Ok(BatchFlush::Done(
                    entries.into_iter().zip(bresp.results).collect(),
                ))
            }
            503 => {
                // Rejected before any entry was applied: re-queue the
                // frame and charge the persistent backoff state.
                self.requeue(entries);
                self.note_backpressure();
                self.reset_connection();
                Ok(BatchFlush::Backpressure)
            }
            status => Err(io::Error::other(format!(
                "batch predict failed: {} {}",
                status,
                String::from_utf8_lossy(&resp.body)
            ))),
        }
    }

    /// Puts entries back at the *front* of the coalescing buffer,
    /// preserving frame order ahead of anything queued meanwhile.
    fn requeue(&mut self, mut entries: Vec<PredictRequest>) {
        let now = self.clock.now_micros();
        if let Some(b) = self.batching.as_mut() {
            entries.append(&mut b.pending);
            b.pending = entries;
            if !b.pending.is_empty() && b.first_queued_us.is_none() {
                b.first_queued_us = Some(now);
            }
        }
    }

    /// Consecutive failed attempts the backoff state currently remembers
    /// (0 after a successful non-503 response).
    pub fn consecutive_failures(&self) -> u32 {
        self.backoff.consecutive_failures
    }

    fn connect(&mut self) -> io::Result<&mut (BufReader<IoHalf>, BufWriter<IoHalf>)> {
        if self.connection.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            stream.set_nodelay(true)?;
            let conn_seq = self.connects;
            self.connects += 1;
            let (read_half, write_half) =
                IoHalf::pair(&stream, conn_seq, self.transport_wrapper.as_ref())?;
            self.connection = Some((BufReader::new(read_half), BufWriter::new(write_half)));
        }
        Ok(self.connection.as_mut().unwrap())
    }

    /// Waits out one backoff delay from the persistent state and records
    /// it (`client.retry.backoff_us`).
    fn back_off(&mut self) {
        let delay = self.backoff.next_delay(&self.retry);
        cs2p_obs::observe("client.retry.backoff_us", delay.as_micros() as f64);
        (self.sleeper)(delay);
    }

    /// Records server backpressure (a 503 `Retry-After`) against the
    /// client's **persistent** backoff state and waits out the resulting
    /// delay. Consecutive 503s — including across separate requests on
    /// the same keep-alive client — keep doubling the delay; only a later
    /// non-503 response resets it. When the 503 carried a `Retry-After`
    /// header, its value floors the delay — the server knows how long it
    /// wants to drain better than the client's own schedule does
    /// (`client.retry.floored` counts how often the floor won).
    pub fn note_backpressure(&mut self) {
        cs2p_obs::counter_add("client.retry.backpressure", 1);
        let mut delay = self.backoff.next_delay(&self.retry);
        if let Some(secs) = self.retry_after_hint_secs {
            let floor = Duration::from_secs(secs);
            if delay < floor {
                delay = floor;
                cs2p_obs::counter_add("client.retry.floored", 1);
            }
        }
        cs2p_obs::observe("client.retry.backoff_us", delay.as_micros() as f64);
        (self.sleeper)(delay);
    }

    /// Sends one request, reusing the keep-alive connection. Transport
    /// failures (broken connection, reset, timeout) are retried up to
    /// [`RetryPolicy::max_attempts`] with seeded capped-exponential
    /// backoff; HTTP error statuses are returned to the caller, but a
    /// 503 does *not* reset the backoff state (see
    /// [`Self::note_backpressure`]). With [`Self::with_breaker`] armed,
    /// an open breaker fails the request fast (`client.breaker.fast_fails`)
    /// without connecting or charging `net.client.*` / `client.retry.*`
    /// — nothing actually went over the wire.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        if let Some(b) = self.breaker.as_mut() {
            if !b.admit(self.clock.now_micros()) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "circuit breaker open",
                ));
            }
        }
        // One trace id per *logical* request: every retry attempt (and
        // the server handling whichever one lands) shares it.
        let trace_id = self.trace_rng.as_mut().map(|rng| rng.gen::<u64>());
        let _trace = trace_id.map(cs2p_obs::TraceScope::enter);
        let traced_req;
        let req = match trace_id {
            Some(id) => {
                let mut r = req.clone();
                r.headers.push(("x-trace-id".into(), id.to_string()));
                traced_req = r;
                &traced_req
            }
            None => req,
        };
        let _span = cs2p_obs::span("net.client.request");
        cs2p_obs::counter_add("net.client.requests", 1);
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                // Stale keep-alive connection, reset, or timeout: back
                // off, then reconnect and retry.
                cs2p_obs::counter_add("client.retry.attempts", 1);
                cs2p_obs::counter_add("net.client.reconnects", 1);
                self.connection = None;
                self.back_off();
            }
            match self.try_send(req) {
                Ok(resp) => {
                    if resp.status != 503 {
                        self.backoff.on_success();
                        self.retry_after_hint_secs = None;
                        if let Some(b) = self.breaker.as_mut() {
                            b.on_success();
                        }
                    } else {
                        // Remember the server's drain hint for the next
                        // backpressure wait, and charge the breaker: a
                        // shedding server is exactly what it guards.
                        self.retry_after_hint_secs = resp
                            .header("retry-after")
                            .and_then(|v| v.trim().parse::<u64>().ok());
                        if let Some(b) = self.breaker.as_mut() {
                            b.on_failure(self.clock.now_micros());
                        }
                    }
                    if cs2p_obs::enabled() {
                        cs2p_obs::counter_add("net.client.bytes_out", req.body.len() as u64);
                        cs2p_obs::counter_add("net.client.bytes_in", resp.body.len() as u64);
                    }
                    return Ok(resp);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if let Some(b) = self.breaker.as_mut() {
            b.on_failure(self.clock.now_micros());
        }
        cs2p_obs::counter_add("client.retry.giveups", 1);
        cs2p_obs::counter_add("net.client.errors", 1);
        Err(last_err.expect("max_attempts >= 1"))
    }

    /// Drops the current keep-alive connection; the next request
    /// reconnects. Used after a response carrying `Connection: close`.
    pub fn reset_connection(&mut self) {
        self.connection = None;
    }

    fn try_send(&mut self, req: &Request) -> io::Result<Response> {
        let (reader, writer) = self.connect()?;
        write_request(writer, req)?;
        read_response(reader)
    }

    /// POSTs a JSON value, expecting a 2xx JSON reply.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &mut self,
        path: &str,
        value: &T,
    ) -> io::Result<R> {
        let body =
            serde_json::to_vec(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let resp = self.send(&Request::new("POST", path, body))?;
        if !(200..300).contains(&resp.status) {
            return Err(io::Error::other(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )));
        }
        serde_json::from_slice(&resp.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// GETs a path, expecting a 2xx reply.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        let resp = self.send(&Request::new("GET", path, Bytes::new()))?;
        if !(200..300).contains(&resp.status) {
            return Err(io::Error::other(format!("server returned {}", resp.status)));
        }
        Ok(resp)
    }
}

/// A [`ThroughputPredictor`] backed by the prediction server.
///
/// Caches the last fetched prediction window so that an MPC controller
/// asking for horizons 1..h costs one HTTP round trip per chunk, not h.
#[derive(Debug)]
pub struct RemotePredictor {
    client: HttpClient,
    session_id: u64,
    features: Vec<u32>,
    /// Measurement not yet shipped to the server.
    pending_measurement: Option<f64>,
    /// Whether the session has been registered (first request sent).
    registered: bool,
    /// Cached predictions from the last POST (index 0 = next epoch).
    cache: Vec<f64>,
    /// Whether the cache reflects the initial (cluster-median) prediction.
    cache_initial: bool,
    /// Degradation provenance of the cached predictions (`None` = the
    /// full HMM path served them). The ABR layer reads this to know how
    /// much to trust the window.
    last_degradation: Option<Degradation>,
    /// Horizon to request per POST.
    fetch_horizon: usize,
}

impl RemotePredictor {
    /// A remote predictor for one session.
    pub fn new(addr: SocketAddr, session_id: u64, features: Vec<u32>) -> Self {
        Self::from_client(HttpClient::new(addr), session_id, features)
    }

    /// A remote predictor over a pre-configured [`HttpClient`] (custom
    /// retry policy, sleeper, or transport hook).
    pub fn from_client(client: HttpClient, session_id: u64, features: Vec<u32>) -> Self {
        RemotePredictor {
            client,
            session_id,
            features,
            pending_measurement: None,
            registered: false,
            cache: Vec::new(),
            cache_initial: false,
            last_degradation: None,
            fetch_horizon: 8,
        }
    }

    /// Degradation provenance of the most recent server answer: `None`
    /// once the full HMM path served it, `Some` while the server is
    /// running degraded (cluster prior) or fallback (harmonic mean)
    /// under overload.
    pub fn last_degradation(&self) -> Option<Degradation> {
        self.last_degradation
    }

    /// Books a server answer's degradation provenance into the client's
    /// telemetry (`predict.client.degraded` / `predict.client.fallback`).
    fn note_degradation(&mut self, degradation: Option<Degradation>) {
        self.last_degradation = degradation;
        match degradation {
            Some(Degradation::Degraded) => cs2p_obs::counter_add("predict.client.degraded", 1),
            Some(Degradation::Fallback) => cs2p_obs::counter_add("predict.client.fallback", 1),
            None => {}
        }
    }

    /// Ensures the cache covers `k` epochs ahead, POSTing if necessary.
    /// Returns `None` on network failure or server backpressure
    /// (prediction is best-effort; the player degrades to no-prediction
    /// behaviour rather than stalling). If the server evicted this
    /// session (404 "unknown session"), re-registers transparently by
    /// resending the features.
    fn ensure_cache(&mut self, k: usize) -> Option<()> {
        let dirty = self.pending_measurement.is_some() || !self.registered;
        if !dirty && self.cache.len() >= k {
            return Some(());
        }
        if self.client.batching_enabled() {
            return self.ensure_cache_batched(k);
        }
        // Two attempts: the second only after a 404 told us the server
        // no longer knows this session and we must resend features.
        for _ in 0..2 {
            let preq = PredictRequest {
                session_id: self.session_id,
                features: if self.registered {
                    None
                } else {
                    Some(self.features.clone())
                },
                measured_mbps: self.pending_measurement,
                horizon: self.fetch_horizon.max(k),
            };
            let body = serde_json::to_vec(&preq).ok()?;
            let resp = self
                .client
                .send(&Request::new("POST", "/predict", body))
                .ok()?;
            match resp.status {
                200..=299 => {
                    let presp: PredictResponse = serde_json::from_slice(&resp.body).ok()?;
                    self.registered = true;
                    self.pending_measurement = None;
                    self.cache = presp.predictions_mbps;
                    self.cache_initial = presp.initial;
                    self.note_degradation(presp.degradation);
                    return Some(());
                }
                404 if self.registered => {
                    // Evicted server-side: re-register with features and
                    // keep the pending measurement — it still seeds the
                    // fresh filter with the latest real observation.
                    cs2p_obs::counter_add("predict.client.reinit", 1);
                    self.registered = false;
                    self.cache.clear();
                }
                503 => {
                    cs2p_obs::counter_add("predict.client.backpressure", 1);
                    // The 503 carried `Connection: close`; charge the
                    // client's persistent backoff state so a 503 burst
                    // escalates the wait instead of hammering the server.
                    self.client.note_backpressure();
                    self.client.reset_connection();
                    return None;
                }
                _ => return None,
            }
        }
        None
    }

    /// The batched twin of the loop above: queues this session's request
    /// into the client's coalescing buffer and forces a flush (this
    /// predictor is blocking — it needs the answer now, but the flush
    /// also carries any entries [`Self::observe`] coalesced earlier).
    /// The 404 re-register handshake is per *entry*: an evicted session
    /// resends features on the second attempt exactly like the singleton
    /// path.
    fn ensure_cache_batched(&mut self, k: usize) -> Option<()> {
        for _ in 0..2 {
            let preq = PredictRequest {
                session_id: self.session_id,
                features: if self.registered {
                    None
                } else {
                    Some(self.features.clone())
                },
                // The measurement moves into the queue; `absorb`
                // restores it if its entry comes back 404.
                measured_mbps: self.pending_measurement.take(),
                horizon: self.fetch_horizon.max(k),
            };
            let flush = match self.client.queue_predict(preq) {
                Ok(Some(flush)) => flush,
                Ok(None) => self.client.flush_predicts().ok()?,
                Err(_) => return None,
            };
            match flush {
                BatchFlush::Done(results) => {
                    let evicted = self.absorb(&results);
                    let ok = results
                        .last()
                        .is_some_and(|(_, r)| (200..300).contains(&r.status));
                    if ok {
                        return Some(());
                    }
                    if !evicted {
                        return None;
                    }
                    // Evicted server-side: loop once more with features.
                }
                BatchFlush::Backpressure => {
                    cs2p_obs::counter_add("predict.client.backpressure", 1);
                    return None;
                }
            }
        }
        None
    }

    /// Applies batch results to the session bookkeeping, in frame order.
    /// Returns whether any entry reported the session evicted (404).
    fn absorb(&mut self, results: &[(PredictRequest, BatchEntryResult)]) -> bool {
        let mut evicted = false;
        for (req, r) in results {
            match r.status {
                200..=299 => {
                    if let Some(presp) = &r.response {
                        self.registered = true;
                        self.cache = presp.predictions_mbps.clone();
                        self.cache_initial = presp.initial;
                        self.note_degradation(presp.degradation);
                    }
                }
                404 => {
                    cs2p_obs::counter_add("predict.client.reinit", 1);
                    evicted = true;
                    self.registered = false;
                    self.cache.clear();
                    // The measurement this entry carried never reached a
                    // filter; reclaim it so the re-registered session's
                    // fresh filter still sees the latest observation.
                    if self.pending_measurement.is_none() {
                        self.pending_measurement = req.measured_mbps;
                    }
                }
                _ => self.cache.clear(),
            }
        }
        evicted
    }

    /// Uploads a session log (fire-and-forget semantics on error).
    pub fn upload_log(&mut self, log: &SessionLog) -> io::Result<()> {
        let body =
            serde_json::to_vec(log).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let resp = self.client.send(&Request::new("POST", "/log", body))?;
        if resp.status == 204 {
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "log upload failed: {}",
                resp.status
            )))
        }
    }
}

impl ThroughputPredictor for RemotePredictor {
    fn name(&self) -> &str {
        "CS2P-remote"
    }

    fn predict_initial(&mut self) -> Option<f64> {
        self.ensure_cache(1)?;
        if self.cache_initial {
            self.cache.first().copied()
        } else {
            None
        }
    }

    fn predict_ahead(&mut self, k: usize) -> Option<f64> {
        self.ensure_cache(k)?;
        self.cache.get(k - 1).copied()
    }

    fn observe(&mut self, throughput: f64) {
        // If two observations land without an intervening prediction, ship
        // the first immediately so the server's filter sees every epoch.
        if self.pending_measurement.is_some() {
            if self.client.batching_enabled() {
                // Coalescing mode: the first measurement joins the batch
                // queue instead of paying a round trip now; a flush (here
                // if a threshold trips, else at the next prediction)
                // delivers it in order.
                let entry = PredictRequest {
                    session_id: self.session_id,
                    features: if self.registered {
                        None
                    } else {
                        Some(self.features.clone())
                    },
                    measured_mbps: self.pending_measurement.take(),
                    horizon: 1,
                };
                if let Ok(Some(BatchFlush::Done(results))) = self.client.queue_predict(entry) {
                    self.absorb(&results);
                }
            } else {
                let _ = self.ensure_cache(1);
            }
        }
        self.pending_measurement = Some(throughput);
    }

    fn reset(&mut self) {
        self.pending_measurement = None;
        self.registered = false;
        self.cache.clear();
        self.cache_initial = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve;
    use cs2p_testkit::scenarios::tiny_engine;

    #[test]
    fn remote_predictor_mirrors_algorithm_one() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 1, vec![1]);

        let init = p.predict_initial().unwrap();
        assert!((init - 5.0).abs() < 0.5);

        p.observe(5.2);
        let mid = p.predict_next().unwrap();
        assert!((mid - 5.0).abs() < 0.5);
        assert!(p.predict_initial().is_none()); // no longer initial

        // One observation + several horizon queries = 2 POSTs total.
        let _ = p.predict_ahead(3).unwrap();
        let _ = p.predict_ahead(5).unwrap();
        assert_eq!(server.predictions_served(), 2);
        server.shutdown();
    }

    #[test]
    fn double_observe_flushes_intermediate_measurement() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 2, vec![0]);
        let _ = p.predict_initial();
        p.observe(1.0);
        p.observe(1.1); // must push the first to the server
        let _ = p.predict_next().unwrap();
        assert_eq!(server.predictions_served(), 3);
        server.shutdown();
    }

    #[test]
    fn network_failure_degrades_to_none() {
        // Point at a port nobody listens on.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut p = RemotePredictor::new(addr, 1, vec![0]);
        assert_eq!(p.predict_initial(), None);
        assert_eq!(p.predict_next(), None);
    }

    #[test]
    fn reset_restarts_session() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut p = RemotePredictor::new(server.addr(), 3, vec![1]);
        let _ = p.predict_initial();
        p.observe(5.0);
        let _ = p.predict_next();
        p.reset();
        // After reset the first prediction is initial again (server keeps
        // the old session state, but a fresh session id would normally be
        // used; here the same id resumes server-side midstream state).
        p.session_id = 4;
        let init = p.predict_initial();
        assert!(init.is_some());
        server.shutdown();
    }

    #[test]
    fn evicted_session_reregisters_transparently() {
        use crate::server::{serve_with, ServeConfig};
        let config = ServeConfig {
            n_shards: 1,
            max_sessions: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let mut p1 = RemotePredictor::new(server.addr(), 1, vec![1]);
        assert!(p1.predict_initial().is_some());
        // A second session evicts the first (capacity 1).
        let mut p2 = RemotePredictor::new(server.addr(), 2, vec![0]);
        assert!(p2.predict_initial().is_some());
        // The first keeps streaming: the server answers 404 (unknown
        // session) and the predictor re-registers without the caller
        // noticing anything but a fresh filter.
        p1.observe(5.0);
        assert!(p1.predict_next().is_some());
        let stats = server.shutdown();
        assert!(stats.sessions_evicted >= 1);
    }

    #[test]
    fn backpressure_backoff_persists_across_requests_until_success() {
        use parking_lot::Mutex;
        // Regression for the old per-request reset: consecutive 503s on
        // one keep-alive client must keep escalating the (seeded) delay;
        // only a successful response clears the state.
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let delays: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&delays);
        let mut client = HttpClient::new(server.addr())
            .with_retry(RetryPolicy {
                max_attempts: 1,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_secs(1),
                seed: 7,
            })
            .with_sleeper(Arc::new(move |d| sink.lock().push(d)));
        // Three requests each answered with backpressure (simulated by
        // charging the state the way RemotePredictor does on a 503).
        client.note_backpressure();
        client.note_backpressure();
        client.note_backpressure();
        assert_eq!(client.consecutive_failures(), 3);
        let recorded = delays.lock().clone();
        assert_eq!(recorded.len(), 3);
        // Jitter windows [1,2), [2,4), [4,8) ms: strictly escalating.
        assert!(
            recorded[0] < recorded[1] && recorded[1] < recorded[2],
            "{recorded:?}"
        );
        // A successful response resets the state…
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        assert_eq!(client.consecutive_failures(), 0);
        server.shutdown();
    }

    #[test]
    fn a_503_response_does_not_reset_backoff_state() {
        use crate::server::{serve_with, ServeConfig};
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        // Occupy the single slot so further connections get 503.
        let mut holder = HttpClient::new(server.addr());
        assert_eq!(holder.get("/healthz").unwrap().status, 200);
        let mut client = HttpClient::new(server.addr()).with_sleeper(Arc::new(|_| {}));
        client.note_backpressure();
        client.note_backpressure();
        assert_eq!(client.consecutive_failures(), 2);
        let resp = client
            .send(&Request::new("GET", "/healthz", Bytes::new()))
            .unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            client.consecutive_failures(),
            2,
            "a 503 must not clear the escalation state"
        );
        server.shutdown();
    }

    #[test]
    fn retry_backoff_delays_are_seed_deterministic() {
        use parking_lot::Mutex;
        let record = |seed| {
            let delays: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&delays);
            let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
            let mut client = HttpClient::new(addr)
                .with_retry(RetryPolicy {
                    seed,
                    ..RetryPolicy::default()
                })
                .with_sleeper(Arc::new(move |d| sink.lock().push(d)));
            for _ in 0..4 {
                client.note_backpressure();
            }
            let out = delays.lock().clone();
            out
        };
        assert_eq!(record(3), record(3));
        assert_ne!(record(3), record(4), "different seeds, different jitter");
    }

    #[test]
    fn queue_predict_coalesces_until_max_entries() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::new(server.addr()).with_batching(3, Duration::from_secs(60));
        let entry = |sid: u64| PredictRequest {
            session_id: sid,
            features: Some(vec![sid as u32 % 2]),
            measured_mbps: None,
            horizon: 1,
        };
        assert!(matches!(client.queue_predict(entry(1)), Ok(None)));
        assert!(matches!(client.queue_predict(entry(2)), Ok(None)));
        assert_eq!(client.pending_predicts(), 2);
        assert_eq!(server.predictions_served(), 0, "nothing shipped yet");
        // Third entry trips max_entries: one frame, three results.
        let flush = client.queue_predict(entry(3)).unwrap().unwrap();
        let BatchFlush::Done(results) = flush else {
            panic!("expected Done");
        };
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|(_, r)| r.status == 200));
        assert_eq!(client.pending_predicts(), 0);
        assert_eq!(server.predictions_served(), 3);
        server.shutdown();
    }

    #[test]
    fn queue_predict_flushes_when_the_manual_clock_ages_the_buffer() {
        use cs2p_obs::ManualClock;
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let clock = Arc::new(ManualClock::new());
        let mut client = HttpClient::new(server.addr())
            .with_batching(100, Duration::from_millis(5))
            .with_clock(Arc::clone(&clock) as Arc<dyn cs2p_obs::Clock>);
        let entry = |sid: u64| PredictRequest {
            session_id: sid,
            features: Some(vec![0]),
            measured_mbps: None,
            horizon: 1,
        };
        assert!(matches!(client.queue_predict(entry(1)), Ok(None)));
        clock.advance(4_000);
        assert!(
            matches!(client.queue_predict(entry(2)), Ok(None)),
            "4ms < max_delay: still coalescing"
        );
        clock.advance(1_000);
        let flush = client.queue_predict(entry(3)).unwrap().unwrap();
        let BatchFlush::Done(results) = flush else {
            panic!("expected Done");
        };
        assert_eq!(results.len(), 3, "5ms elapsed since first entry: flush");
        server.shutdown();
    }

    #[test]
    fn flush_predicts_forces_a_partial_buffer_out() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut client =
            HttpClient::new(server.addr()).with_batching(1000, Duration::from_secs(60));
        // Empty flush is a no-op.
        let BatchFlush::Done(empty) = client.flush_predicts().unwrap() else {
            panic!("expected Done");
        };
        assert!(empty.is_empty());
        let _ = client.queue_predict(PredictRequest {
            session_id: 9,
            features: Some(vec![1]),
            measured_mbps: None,
            horizon: 2,
        });
        let BatchFlush::Done(results) = client.flush_predicts().unwrap() else {
            panic!("expected Done");
        };
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.status, 200);
        assert!(!results[0]
            .1
            .response
            .as_ref()
            .unwrap()
            .predictions_mbps
            .is_empty());
        server.shutdown();
    }

    #[test]
    fn batched_remote_predictor_matches_the_singleton_one() {
        // The transparency seam: the same call sequence through a
        // batching client must yield the same predictions as the plain
        // singleton client against an identical server.
        let drive = |batched: bool| {
            let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
            let client = if batched {
                HttpClient::new(server.addr()).with_batching(8, Duration::from_secs(60))
            } else {
                HttpClient::new(server.addr())
            };
            let mut p = RemotePredictor::from_client(client, 1, vec![1]);
            let mut out = Vec::new();
            out.push(p.predict_initial());
            for epoch in 0..4 {
                p.observe(5.0 + 0.1 * epoch as f64);
                out.push(p.predict_next());
                out.push(p.predict_ahead(3));
            }
            server.shutdown();
            out
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn batched_predictor_reregisters_on_per_entry_404() {
        use crate::server::{serve_with, ServeConfig};
        let config = ServeConfig {
            n_shards: 1,
            max_sessions: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let client1 = HttpClient::new(server.addr()).with_batching(8, Duration::from_secs(60));
        let mut p1 = RemotePredictor::from_client(client1, 1, vec![1]);
        assert!(p1.predict_initial().is_some());
        // A second session evicts the first (capacity 1).
        let client2 = HttpClient::new(server.addr()).with_batching(8, Duration::from_secs(60));
        let mut p2 = RemotePredictor::from_client(client2, 2, vec![0]);
        assert!(p2.predict_initial().is_some());
        // The first keeps streaming: its batch entry answers 404 and the
        // predictor re-registers inside the same ensure_cache call.
        p1.observe(5.0);
        assert!(p1.predict_next().is_some());
        let stats = server.shutdown();
        assert!(stats.sessions_evicted >= 1);
    }

    #[test]
    fn backpressure_requeues_the_batch_frame() {
        use crate::server::{serve_with, ServeConfig};
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        // Occupy the single slot so the batching client's connection is
        // rejected with a 503.
        let mut holder = HttpClient::new(server.addr());
        assert_eq!(holder.get("/healthz").unwrap().status, 200);
        let mut client = HttpClient::new(server.addr())
            .with_batching(8, Duration::from_secs(60))
            .with_sleeper(Arc::new(|_| {}));
        let _ = client.queue_predict(PredictRequest {
            session_id: 5,
            features: Some(vec![0]),
            measured_mbps: Some(1.0),
            horizon: 1,
        });
        let flush = client.flush_predicts().unwrap();
        assert!(matches!(flush, BatchFlush::Backpressure));
        assert_eq!(
            client.pending_predicts(),
            1,
            "the rejected frame's entries must survive for replay"
        );
        assert_eq!(client.consecutive_failures(), 1);
        // Free the slot; the replayed flush lands once the server has
        // reaped the closed connection. Poll against a generous deadline
        // rather than a fixed retry count: how long the reap takes is a
        // scheduling question, and a loaded machine must simply wait
        // longer instead of flaking.
        drop(holder);
        let mut results = None;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            match client.flush_predicts().unwrap() {
                BatchFlush::Done(r) => {
                    results = Some(r);
                    break;
                }
                BatchFlush::Backpressure => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        let results = results.expect("server never freed the connection slot");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.status, 200);
        server.shutdown();
    }

    #[test]
    fn http_client_reconnects_after_server_restart_failure() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::new(server.addr());
        let h1 = client.get("/healthz").unwrap();
        assert_eq!(h1.status, 200);
        // Second request on the same connection also works (keep-alive).
        let h2 = client.get("/healthz").unwrap();
        assert_eq!(h2.status, 200);
        server.shutdown();
    }

    #[test]
    fn breaker_opens_after_threshold_and_fast_fails_until_cooldown() {
        use cs2p_obs::ManualClock;
        // Point at a port nobody listens on: every real attempt fails.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let clock = Arc::new(ManualClock::new());
        let mut client = HttpClient::new(addr)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            })
            .with_sleeper(Arc::new(|_| {}))
            .with_clock(Arc::clone(&clock) as Arc<dyn cs2p_obs::Clock>)
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(1),
                max_cooldown: Duration::from_secs(1),
                seed: 11,
            });
        let req = Request::new("GET", "/healthz", Bytes::new());
        assert!(client.send(&req).is_err());
        assert_eq!(client.breaker_state(), Some(BreakerState::Closed));
        assert!(client.send(&req).is_err());
        assert_eq!(
            client.breaker_state(),
            Some(BreakerState::Open),
            "second consecutive give-up must trip the breaker"
        );
        // While open the request fails fast — locally, without charging
        // the retry/backoff state.
        let failures_before = client.consecutive_failures();
        let err = client.send(&req).unwrap_err();
        assert_eq!(err.to_string(), "circuit breaker open");
        assert_eq!(client.consecutive_failures(), failures_before);
        // Cooldown is 1 ms jittered up to 1.5 ms: 2 ms on the manual
        // clock guarantees expiry, and the next request is the probe.
        clock.advance(2_000);
        assert!(client.send(&req).is_err(), "probe still can't connect");
        assert_eq!(
            client.breaker_state(),
            Some(BreakerState::Open),
            "failed half-open probe must re-open immediately"
        );
        // The re-open doubled the cooldown: 2 ms raw, under 3 ms with
        // jitter. Still open at +1 ms, probing again at +3 ms.
        clock.advance(1_000);
        assert_eq!(
            client.send(&req).unwrap_err().to_string(),
            "circuit breaker open"
        );
        clock.advance(2_000);
        assert!(client.send(&req).is_err());
    }

    #[test]
    fn breaker_closes_on_a_successful_half_open_probe() {
        use crate::server::{serve_with, ServeConfig};
        use cs2p_obs::ManualClock;
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        // Occupy the single slot so the breaker client's requests are
        // shed with 503s.
        let mut holder = HttpClient::new(server.addr());
        assert_eq!(holder.get("/healthz").unwrap().status, 200);
        let clock = Arc::new(ManualClock::new());
        let mut client = HttpClient::new(server.addr())
            .with_sleeper(Arc::new(|_| {}))
            .with_clock(Arc::clone(&clock) as Arc<dyn cs2p_obs::Clock>)
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(1),
                max_cooldown: Duration::from_secs(1),
                seed: 3,
            });
        let req = Request::new("GET", "/healthz", Bytes::new());
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            client.breaker_state(),
            Some(BreakerState::Open),
            "threshold 1: a single 503 shed trips the breaker"
        );
        // Free the slot; probes succeed once the server reaps the dead
        // connection (each failed probe re-opens, so keep cranking the
        // clock far past any doubled cooldown).
        drop(holder);
        let mut closed = false;
        for _ in 0..100 {
            clock.advance(2_000_000);
            if matches!(client.send(&req), Ok(r) if r.status == 200) {
                closed = true;
                break;
            }
        }
        assert!(closed, "server never freed the connection slot");
        assert_eq!(client.breaker_state(), Some(BreakerState::Closed));
        server.shutdown();
    }

    #[test]
    fn retry_after_hint_floors_the_backpressure_delay() {
        use crate::server::{serve_with, ServeConfig};
        use parking_lot::Mutex;
        let config = ServeConfig {
            max_connections: 1,
            retry_after_seconds: 2,
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let mut holder = HttpClient::new(server.addr());
        assert_eq!(holder.get("/healthz").unwrap().status, 200);
        let delays: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&delays);
        let mut client =
            HttpClient::new(server.addr()).with_sleeper(Arc::new(move |d| sink.lock().push(d)));
        assert_eq!(client.retry_after_hint_secs(), None);
        let resp = client
            .send(&Request::new("GET", "/healthz", Bytes::new()))
            .unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            client.retry_after_hint_secs(),
            Some(2),
            "the 503's Retry-After header must be captured"
        );
        client.note_backpressure();
        assert_eq!(
            delays.lock().as_slice(),
            &[Duration::from_secs(2)],
            "the server's hint floors the policy's own (millisecond) delay"
        );
        // A later non-503 success clears the hint: the next delay is the
        // policy's own schedule again.
        drop(holder);
        client.reset_connection();
        let mut ok = false;
        for _ in 0..100 {
            if matches!(client.send(&Request::new("GET", "/healthz", Bytes::new())), Ok(r) if r.status == 200)
            {
                ok = true;
                break;
            }
            std::thread::yield_now();
            client.reset_connection();
        }
        assert!(ok, "server never freed the connection slot");
        assert_eq!(client.retry_after_hint_secs(), None);
        delays.lock().clear();
        client.note_backpressure();
        assert!(
            delays.lock()[0] < Duration::from_secs(2),
            "hint cleared: back to the policy schedule"
        );
        server.shutdown();
    }

    #[test]
    fn remote_predictor_surfaces_server_degradation() {
        use crate::server::{serve_with, ServeConfig};
        let server = serve_with(tiny_engine(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut p = RemotePredictor::new(server.addr(), 1, vec![1]);
        assert!(p.predict_initial().is_some());
        assert_eq!(p.last_degradation(), None, "full path: no provenance");

        server.force_admission_level(Some(crate::admission::AdmissionLevel::Degraded));
        p.observe(5.0);
        assert!(p.predict_next().is_some());
        assert_eq!(p.last_degradation(), Some(Degradation::Degraded));

        server.force_admission_level(Some(crate::admission::AdmissionLevel::Fallback));
        p.observe(5.5);
        assert!(p.predict_next().is_some());
        assert_eq!(p.last_degradation(), Some(Degradation::Fallback));

        server.force_admission_level(None);
        p.observe(5.2);
        assert!(p.predict_next().is_some());
        assert_eq!(
            p.last_degradation(),
            None,
            "recovery: the full path clears the provenance"
        );
        server.shutdown();
    }
}
