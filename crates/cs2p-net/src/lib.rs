//! # cs2p-net — the player/server deployment substrate
//!
//! §6 of the paper implements CS2P as a Dash.js player talking to a
//! Node.js prediction server: before each chunk the player POSTs the last
//! epoch's measured throughput and receives the next prediction; trained
//! models are compact enough (<5 KB) to ship to clients instead. This
//! crate reproduces that loop over real sockets:
//!
//! - [`http`]: a minimal blocking HTTP/1.1 (Content-Length framing,
//!   keep-alive, strict limits);
//! - [`protocol`]: the JSON messages (`/predict`, `/model`, `/log`,
//!   `/healthz`);
//! - [`server`]: the prediction-engine server — a bounded worker pool
//!   over a sharded session store with 503 backpressure, TTL/LRU session
//!   eviction, and graceful drain (see `DESIGN.md`);
//! - [`store`] / [`pool`]: the sharded session store and the bounded
//!   request queue backing the server;
//! - [`admission`]: the overload degradation ladder — watermark-driven
//!   admission control that steps service down from the full HMM path
//!   through cluster priors and the paper's harmonic-mean baseline
//!   before ever shedding a request (see `DESIGN.md` §3g);
//! - [`recorder`]: the bounded completed-session accumulator feeding the
//!   online model refresh (`ServerHandle::refresh_models`), which
//!   retrains through a versioned `cs2p_core::ModelRegistry` and
//!   hot-swaps the new model while in-flight sessions stay pinned to
//!   the version they started on;
//! - [`quality`]: the online prediction-quality monitor — every
//!   measurement a player reports scores the previous prediction (APE),
//!   feeding per-model-version quantile sketches and a drift alarm that
//!   can trigger an online model refresh;
//! - [`ops`]: the read-only operations surface behind `GET /ops`
//!   (JSON) and `GET /ops/metrics` (Prometheus text);
//! - [`persist`]: crash-safe durability — a CRC-framed write-ahead log
//!   of store mutations with group commit and snapshot compaction,
//!   persisted model-registry bundles, and the recovery path behind
//!   `ServerHandle::open_or_recover`;
//! - [`transport`]: the byte-stream abstraction with an injectable
//!   per-connection wrapper hook (fault injection, future middleboxes)
//!   and the server's slow-peer deadline reader;
//! - [`legacy`]: the pre-rewrite thread-per-connection server, kept as
//!   the `serve_throughput` benchmark baseline;
//! - [`client`]: the blocking client and [`client::RemotePredictor`],
//!   which exposes the server as a [`cs2p_core::ThroughputPredictor`]
//!   and transparently re-registers sessions the server evicted;
//! - [`dash`]: the player (BufferController/AbrController equivalents on
//!   top of `cs2p-abr`), the client-side local-model deployment, and the
//!   end-to-end pilot session helper.
//!
//! Only the *bottleneck link* is simulated (chunks are not actually
//! transferred — we have no CDN); every prediction and log crosses a real
//! TCP connection, matching what §7.5's pilot measures.

#![warn(missing_docs)]
// Library crates speak through `cs2p-obs` events, never raw prints
// (binaries are exempt; see OBSERVABILITY.md).
#![deny(clippy::print_stdout)]
#![deny(clippy::print_stderr)]

pub mod admission;
pub mod client;
pub mod dash;
pub mod http;
pub mod legacy;
pub mod ops;
pub mod persist;
pub mod pool;
pub mod protocol;
pub mod quality;
pub mod recorder;
pub mod server;
pub mod store;
pub mod transport;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionLevel, AdmissionSnapshot, FallbackTracker,
};
pub use client::{
    BatchFlush, BreakerConfig, BreakerState, HttpClient, RemotePredictor, RetryPolicy, Sleeper,
};
pub use dash::{
    play_remote_session, AbrKind, DashPlayer, LocalModelPredictor, Manifest, PlayerConfig,
};
pub use legacy::{serve_legacy, LegacyServerHandle};
pub use ops::{FaultRow, OpsAdmission, OpsQuality, OpsSnapshot, QualityRow};
pub use persist::{CommitOutcome, PersistConfig, RecoveredState, WalFaultHook, WalStats};
pub use protocol::{
    BatchEntryResult, BatchPredictRequest, BatchPredictResponse, Degradation, Health, LogStats,
    PredictRequest, PredictResponse, SessionLog, StrategyStats, MAX_BATCH_ENTRIES,
};
pub use quality::{QualityConfig, QualityMonitor};
pub use recorder::SessionRecorder;
pub use server::{serve, serve_with, RefreshConfig, ServeConfig, ServeStats, ServerHandle};
pub use store::{SessionStore, StorePressure};
pub use transport::{BoxTransport, Transport, TransportWrapper};
