//! Online prediction-quality monitoring for the serving layer.
//!
//! The paper evaluates CS2P offline by the absolute percent error (APE)
//! of its throughput predictions (§7, Eq. 7). In production the same
//! signal is available *online* for free: the server predicted epoch
//! `t+1` and, one request later, the player reports what it actually
//! measured. [`QualityMonitor`] closes that loop — every `/predict`
//! carrying a measurement scores the previous prediction, feeds
//! per-`{model version, cluster-hit/global-fallback, initial/midstream}`
//! quantile sketches (`quality.ape.*` in the metrics snapshot), and
//! checks a sliding-window drift alarm.
//!
//! The drift alarm is the operational point of the whole exercise: when
//! the median APE over the last [`QualityConfig::window`] scored
//! predictions exceeds [`QualityConfig::threshold_ape`], the world has
//! drifted away from the training data and the model should be
//! refreshed. The alarm emits a `quality.drift.alarm` event, bumps
//! `quality.drift.alarms`, and (when
//! [`QualityConfig::trigger_refresh`] is set) lets the server kick an
//! online retrain — closing the observe → alarm → refresh → recover loop
//! end-to-end. Cooldown and alarm timing run on an injectable
//! [`Clock`], so tests drive the whole loop deterministically.
//!
//! The monitor keeps its own sketches in addition to feeding the global
//! `cs2p-obs` registry: the `/ops` surface must work even when the
//! registry is disabled (the default in production).

use cs2p_obs::{Clock, QuantileSketch, QuantileSnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for the online quality monitor (see [`QualityMonitor`]).
///
/// The defaults are deliberately conservative: a median APE of 0.75
/// means predictions are off by 75% for half the window — far beyond
/// anything a healthy model produces (the paper reports ~7% median APE)
/// — so CI workloads and benchmarks never trip the alarm by accident.
/// Drift tests lower `threshold_ape` and `min_samples` explicitly.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Sliding-window size (scored predictions) for the drift check.
    pub window: usize,
    /// Drift alarm fires when the window's median APE exceeds this.
    pub threshold_ape: f64,
    /// No alarm until the window holds at least this many samples.
    pub min_samples: usize,
    /// Minimum time between alarms, measured on the injectable clock.
    pub cooldown: Duration,
    /// When set, an alarm asks the server to refresh its models from
    /// the recorded-session window (same path as the background
    /// refresher; a no-op if too few sessions are recorded).
    pub trigger_refresh: bool,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            window: 256,
            threshold_ape: 0.75,
            min_samples: 64,
            cooldown: Duration::from_secs(60),
            trigger_refresh: false,
        }
    }
}

/// Mutex-guarded state: the drift window and the quality sketches.
#[derive(Debug)]
struct MonitorInner {
    /// Last `window` APE values, oldest first.
    window: VecDeque<f64>,
    /// When the last alarm fired (injectable-clock micros).
    last_alarm_us: Option<u64>,
    /// Per-provenance APE sketches, keyed
    /// `v{version}.{cluster|global}.{initial|midstream}` (or `log` for
    /// pairs recovered from offline session logs).
    sketches: BTreeMap<String, QuantileSketch>,
    /// End-to-end request-handling latency (µs, on the injectable
    /// clock — zero-width under a `ManualClock`, which is what keeps
    /// deterministic runs deterministic).
    latency_us: QuantileSketch,
}

/// The online accuracy monitor. One per server; all methods are
/// thread-safe and cheap enough for the request path (an atomic or a
/// short mutex hold — no allocation unless a new sketch key appears).
pub struct QualityMonitor {
    config: QualityConfig,
    clock: Arc<dyn Clock>,
    /// Predictions scored against a later measurement.
    matched: AtomicU64,
    /// Predictions that left the server unscored (session completed or
    /// was evicted before the next measurement arrived, or the actual
    /// was zero so APE is undefined).
    unmatched: AtomicU64,
    /// Drift alarms fired.
    alarms: AtomicU64,
    /// Guards alarm-triggered refreshes: one at a time.
    refresh_in_flight: AtomicBool,
    inner: Mutex<MonitorInner>,
}

impl std::fmt::Debug for QualityMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityMonitor")
            .field("config", &self.config)
            .field("matched", &self.matched.load(Ordering::Relaxed))
            .field("unmatched", &self.unmatched.load(Ordering::Relaxed))
            .field("alarms", &self.alarms.load(Ordering::Relaxed))
            .finish()
    }
}

impl QualityMonitor {
    /// Creates a monitor. `clock` is the server's injectable clock —
    /// alarm cooldown (and request-latency timing) follow it.
    pub fn new(config: QualityConfig, clock: Arc<dyn Clock>) -> Self {
        QualityMonitor {
            config,
            clock,
            matched: AtomicU64::new(0),
            unmatched: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            refresh_in_flight: AtomicBool::new(false),
            inner: Mutex::new(MonitorInner {
                window: VecDeque::new(),
                last_alarm_us: None,
                sketches: BTreeMap::new(),
                latency_us: QuantileSketch::new(),
            }),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &QualityConfig {
        &self.config
    }

    /// Scores one served prediction against the throughput the player
    /// later measured. Returns `true` when this sample tripped the
    /// drift alarm (the caller decides whether to act on it).
    pub fn record_ape(&self, version: u64, cluster_hit: bool, initial: bool, ape: f64) -> bool {
        let key = format!(
            "v{}.{}.{}",
            version,
            if cluster_hit { "cluster" } else { "global" },
            if initial { "initial" } else { "midstream" },
        );
        self.record_keyed(&key, ape)
    }

    /// Scores a `(predicted, actual)` pair recovered from an uploaded
    /// [`crate::protocol::SessionLog`] whose session the server no
    /// longer holds — provenance and model version are unknown, so the
    /// sample lands in the dedicated `log` sketch.
    pub fn record_log_ape(&self, ape: f64) -> bool {
        self.record_keyed("log", ape)
    }

    fn record_keyed(&self, key: &str, ape: f64) -> bool {
        self.matched.fetch_add(1, Ordering::Relaxed);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("quality.coverage.matched", 1);
            cs2p_obs::quantile_observe(&format!("quality.ape.{key}"), ape);
        }
        let mut inner = self.inner.lock();
        match inner.sketches.get_mut(key) {
            Some(s) => s.observe(ape),
            None => {
                let mut s = QuantileSketch::new();
                s.observe(ape);
                inner.sketches.insert(key.to_string(), s);
            }
        }
        inner.window.push_back(ape);
        while inner.window.len() > self.config.window.max(1) {
            inner.window.pop_front();
        }
        self.check_alarm(&mut inner)
    }

    /// Drift check; called with the lock held, window freshly updated.
    fn check_alarm(&self, inner: &mut MonitorInner) -> bool {
        if inner.window.len() < self.config.min_samples.max(1) {
            return false;
        }
        let now = self.clock.now_micros();
        let cooldown_us = self.config.cooldown.as_micros().min(u64::MAX as u128) as u64;
        if let Some(last) = inner.last_alarm_us {
            if now.saturating_sub(last) < cooldown_us {
                return false;
            }
        }
        let median = median_of(inner.window.iter().copied());
        if median <= self.config.threshold_ape {
            return false;
        }
        // Alarm. Clear the window so post-refresh samples are judged on
        // their own — that is what lets a test watch the windowed APE
        // recover after the hot-swap.
        inner.window.clear();
        inner.last_alarm_us = Some(now);
        let n = self.alarms.fetch_add(1, Ordering::Relaxed) + 1;
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("quality.drift.alarms", 1);
            cs2p_obs::event(
                cs2p_obs::Level::Warn,
                "quality.drift.alarm",
                vec![
                    ("median_ape", median.into()),
                    ("threshold", self.config.threshold_ape.into()),
                    ("window", self.config.window.into()),
                    ("alarm_seq", n.into()),
                ],
            );
        }
        true
    }

    /// Counts a prediction that will never be scored (the session ended
    /// before the next measurement, or APE was undefined).
    pub fn note_unmatched(&self) {
        self.unmatched.fetch_add(1, Ordering::Relaxed);
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("quality.coverage.unmatched", 1);
        }
    }

    /// Records one request's end-to-end handling latency.
    pub fn record_latency_us(&self, us: f64) {
        self.inner.lock().latency_us.observe(us);
    }

    /// Predictions scored so far.
    pub fn matched(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }

    /// Predictions that left unscored.
    pub fn unmatched(&self) -> u64 {
        self.unmatched.load(Ordering::Relaxed)
    }

    /// Drift alarms fired so far.
    pub fn alarms(&self) -> u64 {
        self.alarms.load(Ordering::Relaxed)
    }

    /// `(samples, median)` of the current drift window; `(0, 0.0)` when
    /// empty (the window is cleared by each alarm).
    pub fn windowed(&self) -> (usize, f64) {
        let inner = self.inner.lock();
        if inner.window.is_empty() {
            (0, 0.0)
        } else {
            (inner.window.len(), median_of(inner.window.iter().copied()))
        }
    }

    /// Snapshots of every per-provenance APE sketch, sorted by key.
    pub fn ape_snapshots(&self) -> Vec<(String, QuantileSnapshot)> {
        self.inner
            .lock()
            .sketches
            .iter()
            .map(|(k, s)| (k.clone(), s.snapshot()))
            .collect()
    }

    /// Snapshot of the request-latency sketch.
    pub fn latency_snapshot(&self) -> QuantileSnapshot {
        self.inner.lock().latency_us.snapshot()
    }

    /// Claims the alarm-refresh slot. The caller must pair a `true`
    /// return with [`end_refresh`](Self::end_refresh); `false` means a
    /// refresh is already running and the caller should skip.
    pub fn begin_refresh(&self) -> bool {
        self.refresh_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases the alarm-refresh slot.
    pub fn end_refresh(&self) {
        self.refresh_in_flight.store(false, Ordering::Release);
    }
}

/// Exact median by sorting a copy — the window is small (hundreds) and
/// this runs at most once per scored prediction.
fn median_of(xs: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Absolute percent error of a prediction against a measured actual;
/// `None` when the actual is nonpositive or either value is non-finite
/// (APE is undefined there — callers count those as unmatched).
pub fn ape(predicted: f64, actual: f64) -> Option<f64> {
    if !predicted.is_finite() || !actual.is_finite() || actual <= 0.0 {
        return None;
    }
    Some((predicted - actual).abs() / actual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs2p_obs::ManualClock;

    fn monitor(config: QualityConfig) -> (QualityMonitor, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let m = QualityMonitor::new(config, Arc::clone(&clock) as Arc<dyn Clock>);
        (m, clock)
    }

    #[test]
    fn ape_is_undefined_for_zero_actual_and_nonfinite_inputs() {
        assert_eq!(ape(2.0, 4.0), Some(0.5));
        assert_eq!(ape(4.0, 4.0), Some(0.0));
        assert_eq!(ape(1.0, 0.0), None);
        assert_eq!(ape(1.0, -1.0), None);
        assert_eq!(ape(f64::NAN, 1.0), None);
        assert_eq!(ape(1.0, f64::INFINITY), None);
    }

    #[test]
    fn sketches_are_keyed_by_provenance() {
        let (m, _) = monitor(QualityConfig::default());
        m.record_ape(1, true, true, 0.1);
        m.record_ape(1, true, false, 0.2);
        m.record_ape(2, false, false, 0.3);
        m.record_log_ape(0.4);
        let keys: Vec<String> = m.ape_snapshots().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                "log".to_string(),
                "v1.cluster.initial".to_string(),
                "v1.cluster.midstream".to_string(),
                "v2.global.midstream".to_string(),
            ]
        );
        assert_eq!(m.matched(), 4);
    }

    #[test]
    fn alarm_fires_on_drift_then_respects_cooldown() {
        let (m, clock) = monitor(QualityConfig {
            window: 8,
            threshold_ape: 0.5,
            min_samples: 4,
            cooldown: Duration::from_secs(10),
            trigger_refresh: false,
        });
        // Accurate predictions: no alarm however many samples arrive.
        for _ in 0..16 {
            assert!(!m.record_ape(1, true, false, 0.05));
        }
        // Drifted: the 4th bad sample satisfies min_samples… but the
        // window still holds old good samples; keep feeding until the
        // median crosses.
        let mut fired = false;
        for _ in 0..8 {
            fired |= m.record_ape(1, true, false, 1.0);
        }
        assert!(fired, "drift must raise the alarm");
        assert_eq!(m.alarms(), 1);
        // The alarm cleared the window and armed the cooldown: more bad
        // samples do not re-fire within it…
        for _ in 0..8 {
            assert!(!m.record_ape(1, true, false, 1.0));
        }
        assert_eq!(m.alarms(), 1);
        // …but do after the cooldown elapses on the injectable clock.
        clock.advance(11_000_000);
        let mut refired = false;
        for _ in 0..8 {
            refired |= m.record_ape(1, true, false, 1.0);
        }
        assert!(refired, "alarm must re-arm after cooldown");
        assert_eq!(m.alarms(), 2);
    }

    #[test]
    fn window_clears_on_alarm_so_recovery_is_visible() {
        let (m, _) = monitor(QualityConfig {
            window: 8,
            threshold_ape: 0.5,
            min_samples: 2,
            cooldown: Duration::from_secs(0),
            trigger_refresh: false,
        });
        m.record_ape(1, true, false, 1.0);
        assert!(m.record_ape(1, true, false, 1.0));
        assert_eq!(m.windowed(), (0, 0.0), "alarm must clear the window");
        // Good samples after the (hypothetical) refresh: window median
        // reflects only them.
        m.record_ape(2, true, false, 0.05);
        m.record_ape(2, true, false, 0.07);
        m.record_ape(2, true, false, 0.06);
        let (n, median) = m.windowed();
        assert_eq!(n, 3);
        assert!((median - 0.06).abs() < 1e-12);
        // 0-second cooldown: ManualClock has not advanced, and
        // now - last == 0 >= 0, so only the median gate holds it back.
        assert!(!m.record_ape(2, true, false, 0.05));
    }

    #[test]
    fn refresh_slot_is_exclusive() {
        let (m, _) = monitor(QualityConfig::default());
        assert!(m.begin_refresh());
        assert!(!m.begin_refresh(), "slot must be exclusive");
        m.end_refresh();
        assert!(m.begin_refresh());
        m.end_refresh();
    }

    #[test]
    fn latency_sketch_reports_quantiles() {
        let (m, _) = monitor(QualityConfig::default());
        for us in [100.0, 200.0, 300.0, 400.0] {
            m.record_latency_us(us);
        }
        let snap = m.latency_snapshot();
        assert_eq!(snap.count, 4);
        assert!(snap.min <= 100.0 * 1.05 && snap.max >= 400.0 * 0.95);
    }
}
