//! The bounded MPMC work queue backing the server's worker pool.
//!
//! Producers (the acceptor and the idle poller) use [`BoundedQueue::try_push`],
//! which **never blocks**: when the queue is at capacity the caller gets the
//! item back and answers with explicit backpressure (HTTP 503) instead of
//! queueing unboundedly. Consumers (the workers) block on a condvar in
//! [`BoundedQueue::pop`] — no sleep-polling anywhere.
//!
//! Shutdown is graceful by construction: [`BoundedQueue::close`] wakes every
//! parked worker, but `pop` keeps handing out already-queued items until the
//! queue is drained, so work accepted before the close is never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with condvar
/// wakeups (no busy-waiting, no unbounded growth).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Enqueues without blocking. Returns the item back when the queue is
    /// full or closed — the caller owes the peer a backpressure response.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed **and**
    /// drained. Already-queued items are still handed out after `close`,
    /// which is what makes shutdown finish in-flight work.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Closes the queue: rejects future pushes and wakes every parked
    /// consumer so it can drain the remainder and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn push_pop_roundtrip_in_order() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_returns_item_for_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_parked_consumers_promptly() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "consumer did not wake in bounded time"
        );
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(64));
        let n_producers = 4u64;
        let per_producer = 200u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    let mut item = p * per_producer + i;
                    loop {
                        match q.try_push(item) {
                            Ok(_) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..n_producers * per_producer).collect();
        assert_eq!(seen, expected);
    }
}
