//! The read-only operations surface: everything an operator (or a
//! scraper) needs to judge a running prediction server at a glance.
//!
//! [`OpsSnapshot`] is one consistent-enough point-in-time view — health,
//! the live model version, session/connection/queue gauges, request
//! latency quantiles, the online prediction-quality sketches from
//! [`crate::quality::QualityMonitor`], and the fault counters. The same
//! struct backs three consumers:
//!
//! - `GET /ops` serves it as JSON;
//! - `GET /ops/metrics` renders it as Prometheus-style text
//!   ([`OpsSnapshot::to_prometheus`]);
//! - [`crate::server::ServerHandle::metrics_snapshot`] hands it to
//!   embedding code (benchmarks, `cs2p-eval refresh-bench`) without a
//!   socket round-trip.
//!
//! Counters are gathered from atomics and monitor-local sketches, so
//! the surface works even with the global `cs2p-obs` registry disabled;
//! only the `faults` rows come from the registry (they are empty when
//! it is off — see OBSERVABILITY.md).

use cs2p_obs::QuantileSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One per-provenance APE sketch row
/// (`v{version}.{cluster|global}.{initial|midstream}`, or `log`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityRow {
    /// Sketch key — model version and prediction provenance.
    pub key: String,
    /// Scored predictions in this sketch.
    pub count: u64,
    /// Smallest APE observed.
    pub min: f64,
    /// Largest APE observed.
    pub max: f64,
    /// Median APE.
    pub p50: f64,
    /// 90th-percentile APE.
    pub p90: f64,
    /// 99th-percentile APE.
    pub p99: f64,
}

impl QualityRow {
    /// Builds a row from a sketch key and its snapshot.
    pub fn from_snapshot(key: String, snap: QuantileSnapshot) -> Self {
        QualityRow {
            key,
            count: snap.count,
            min: snap.min,
            max: snap.max,
            p50: snap.p50,
            p90: snap.p90,
            p99: snap.p99,
        }
    }
}

/// One fault counter (`serve.fault.*`), from the global registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRow {
    /// Counter name, e.g. `serve.fault.read_errors`.
    pub name: String,
    /// Count since startup.
    pub value: u64,
}

/// The prediction-quality section of [`OpsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsQuality {
    /// Predictions scored against a later measurement.
    pub matched: u64,
    /// Predictions that left the server unscored.
    pub unmatched: u64,
    /// Drift alarms fired since startup.
    pub drift_alarms: u64,
    /// Samples currently in the drift window (cleared by each alarm).
    pub windowed_samples: u64,
    /// Median APE over the drift window; `0.0` when the window is empty.
    pub windowed_median_ape: f64,
    /// Per-provenance APE quantiles, sorted by key.
    pub ape: Vec<QualityRow>,
}

/// The overload/degradation section of [`OpsSnapshot`] — the admission
/// ladder's level and counters (see [`crate::admission`]) plus the
/// session store's pressure view, so an operator reads one consistent
/// overload picture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsAdmission {
    /// Current ladder level (`full`/`degraded`/`fallback`/`shed`).
    pub level: String,
    /// Combined pressure score driving the ladder, `max(queue, latency)`.
    pub pressure: f64,
    /// Ladder level transitions (watermark-driven and forced).
    pub transitions: u64,
    /// Predictions answered at Full level.
    pub served_full: u64,
    /// Predictions answered from cluster priors (Degraded).
    pub served_degraded: u64,
    /// Predictions answered from the harmonic-mean side table (Fallback).
    pub served_fallback: u64,
    /// Requests shed with 503 by the admission layer.
    pub shed: u64,
    /// Fallback-level requests with no measurement history (shed).
    pub fallback_misses: u64,
    /// Session-store occupancy fraction in `[0, 1]`.
    pub store_occupancy: f64,
    /// Session-store evictions per access over the telemetry window.
    pub store_eviction_rate: f64,
}

/// Point-in-time operational snapshot of a running server. Fields are
/// read from independent atomics — the snapshot is not a transaction,
/// which is fine for an ops surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsSnapshot {
    /// Always `"ok"` (the endpoint answering at all is the liveness
    /// signal; this mirrors `/healthz`).
    pub status: String,
    /// The model version new sessions will pin.
    pub model_version: u64,
    /// Cluster models in the live engine.
    pub n_models: u64,
    /// Sessions resident in the store.
    pub sessions_live: u64,
    /// Sessions evicted (TTL/LRU/forced) since startup.
    pub sessions_evicted: u64,
    /// Successful `/predict` responses since startup.
    pub predictions_served: u64,
    /// Session logs stored.
    pub logs: u64,
    /// Completed sessions held by the training recorder.
    pub recorded_sessions: u64,
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections answered with 503 backpressure.
    pub rejected: u64,
    /// Connections currently open.
    pub live_connections: u64,
    /// Requests currently waiting in the worker queue.
    pub queue_depth: u64,
    /// End-to-end request-handling latency, µs (injectable clock).
    pub request_latency_us: QuantileSnapshot,
    /// Online prediction-quality monitor state.
    pub quality: OpsQuality,
    /// Degradation-ladder state and counters.
    pub admission: OpsAdmission,
    /// `serve.fault.*` counters from the global registry; empty when
    /// the registry is disabled.
    pub faults: Vec<FaultRow>,
}

impl OpsSnapshot {
    /// Renders the snapshot as Prometheus text-exposition metrics
    /// (counter/gauge/summary), all under the `cs2p_` prefix. Served at
    /// `GET /ops/metrics`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, value: u64| {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        };
        let gauge = |out: &mut String, name: &str, value: f64| {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        };
        gauge(&mut out, "cs2p_up", 1.0);
        gauge(&mut out, "cs2p_model_version", self.model_version as f64);
        gauge(&mut out, "cs2p_models", self.n_models as f64);
        gauge(&mut out, "cs2p_sessions_live", self.sessions_live as f64);
        counter(&mut out, "cs2p_sessions_evicted", self.sessions_evicted);
        counter(&mut out, "cs2p_predictions_served", self.predictions_served);
        gauge(&mut out, "cs2p_logs", self.logs as f64);
        gauge(
            &mut out,
            "cs2p_recorded_sessions",
            self.recorded_sessions as f64,
        );
        counter(&mut out, "cs2p_connections_accepted", self.accepted);
        counter(&mut out, "cs2p_connections_rejected", self.rejected);
        gauge(
            &mut out,
            "cs2p_connections_live",
            self.live_connections as f64,
        );
        gauge(&mut out, "cs2p_queue_depth", self.queue_depth as f64);

        let _ = writeln!(out, "# TYPE cs2p_request_latency_us summary");
        summary_lines(
            &mut out,
            "cs2p_request_latency_us",
            "",
            &self.request_latency_us,
        );

        counter(&mut out, "cs2p_quality_matched", self.quality.matched);
        counter(&mut out, "cs2p_quality_unmatched", self.quality.unmatched);
        counter(
            &mut out,
            "cs2p_quality_drift_alarms",
            self.quality.drift_alarms,
        );
        gauge(
            &mut out,
            "cs2p_quality_windowed_samples",
            self.quality.windowed_samples as f64,
        );
        gauge(
            &mut out,
            "cs2p_quality_windowed_median_ape",
            self.quality.windowed_median_ape,
        );
        if !self.quality.ape.is_empty() {
            let _ = writeln!(out, "# TYPE cs2p_quality_ape summary");
            for row in &self.quality.ape {
                let snap = QuantileSnapshot {
                    count: row.count,
                    min: row.min,
                    max: row.max,
                    p50: row.p50,
                    p90: row.p90,
                    p99: row.p99,
                };
                summary_lines(
                    &mut out,
                    "cs2p_quality_ape",
                    &format!("key=\"{}\",", row.key),
                    &snap,
                );
            }
        }
        // Admission ladder: the numeric level index (0=full … 3=shed)
        // plus the level string as a label, so both dashboards and
        // alerting rules have something to bite on.
        let level_index = match self.admission.level.as_str() {
            "full" => 0.0,
            "degraded" => 1.0,
            "fallback" => 2.0,
            _ => 3.0,
        };
        gauge(&mut out, "cs2p_admission_level", level_index);
        let _ = writeln!(
            out,
            "cs2p_admission_level_info{{level=\"{}\"}} 1",
            self.admission.level
        );
        gauge(&mut out, "cs2p_admission_pressure", self.admission.pressure);
        counter(
            &mut out,
            "cs2p_admission_transitions",
            self.admission.transitions,
        );
        counter(
            &mut out,
            "cs2p_admission_served_full",
            self.admission.served_full,
        );
        counter(
            &mut out,
            "cs2p_admission_served_degraded",
            self.admission.served_degraded,
        );
        counter(
            &mut out,
            "cs2p_admission_served_fallback",
            self.admission.served_fallback,
        );
        counter(&mut out, "cs2p_admission_shed", self.admission.shed);
        counter(
            &mut out,
            "cs2p_admission_fallback_misses",
            self.admission.fallback_misses,
        );
        gauge(
            &mut out,
            "cs2p_store_occupancy",
            self.admission.store_occupancy,
        );
        gauge(
            &mut out,
            "cs2p_store_eviction_rate",
            self.admission.store_eviction_rate,
        );
        if !self.faults.is_empty() {
            let _ = writeln!(out, "# TYPE cs2p_fault counter");
            for fault in &self.faults {
                let _ = writeln!(out, "cs2p_fault{{name=\"{}\"}} {}", fault.name, fault.value);
            }
        }
        out
    }
}

/// `{name}{quantile="q"} v` rows plus `_count`, Prometheus
/// summary-style. `extra_labels` is either empty or `key="…",`.
fn summary_lines(out: &mut String, name: &str, extra_labels: &str, snap: &QuantileSnapshot) {
    for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)] {
        let _ = writeln!(out, "{name}{{{extra_labels}quantile=\"{q}\"}} {v}");
    }
    let count_labels = extra_labels.trim_end_matches(',');
    if count_labels.is_empty() {
        let _ = writeln!(out, "{name}_count {}", snap.count);
    } else {
        let _ = writeln!(out, "{name}_count{{{count_labels}}} {}", snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpsSnapshot {
        OpsSnapshot {
            status: "ok".into(),
            model_version: 2,
            n_models: 3,
            sessions_live: 4,
            sessions_evicted: 1,
            predictions_served: 100,
            logs: 5,
            recorded_sessions: 6,
            accepted: 10,
            rejected: 2,
            live_connections: 3,
            queue_depth: 1,
            request_latency_us: QuantileSnapshot {
                count: 100,
                min: 10.0,
                max: 500.0,
                p50: 50.0,
                p90: 200.0,
                p99: 450.0,
            },
            quality: OpsQuality {
                matched: 90,
                unmatched: 10,
                drift_alarms: 1,
                windowed_samples: 30,
                windowed_median_ape: 0.08,
                ape: vec![QualityRow {
                    key: "v2.cluster.midstream".into(),
                    count: 80,
                    min: 0.0,
                    max: 0.9,
                    p50: 0.07,
                    p90: 0.2,
                    p99: 0.5,
                }],
            },
            admission: OpsAdmission {
                level: "degraded".into(),
                pressure: 0.75,
                transitions: 3,
                served_full: 80,
                served_degraded: 15,
                served_fallback: 5,
                shed: 2,
                fallback_misses: 1,
                store_occupancy: 0.5,
                store_eviction_rate: 0.25,
            },
            faults: vec![FaultRow {
                name: "serve.fault.read_errors".into(),
                value: 2,
            }],
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let back: OpsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn prometheus_rendering_contains_every_section() {
        let text = sample().to_prometheus();
        for needle in [
            "# TYPE cs2p_predictions_served counter",
            "cs2p_predictions_served 100",
            "cs2p_model_version 2",
            "cs2p_queue_depth 1",
            "cs2p_request_latency_us{quantile=\"0.5\"} 50",
            "cs2p_request_latency_us_count 100",
            "cs2p_quality_ape{key=\"v2.cluster.midstream\",quantile=\"0.99\"} 0.5",
            "cs2p_quality_ape_count{key=\"v2.cluster.midstream\"} 80",
            "cs2p_quality_drift_alarms 1",
            "cs2p_admission_level 1",
            "cs2p_admission_level_info{level=\"degraded\"} 1",
            "cs2p_admission_pressure 0.75",
            "cs2p_admission_served_degraded 15",
            "cs2p_admission_shed 2",
            "cs2p_store_occupancy 0.5",
            "cs2p_store_eviction_rate 0.25",
            "cs2p_fault{name=\"serve.fault.read_errors\"} 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_sections_are_omitted_from_prometheus_text() {
        let mut snap = sample();
        snap.quality.ape.clear();
        snap.faults.clear();
        let text = snap.to_prometheus();
        assert!(!text.contains("cs2p_quality_ape{"));
        assert!(!text.contains("cs2p_fault{"));
        // The scalar quality counters stay.
        assert!(text.contains("cs2p_quality_matched 90"));
    }
}
