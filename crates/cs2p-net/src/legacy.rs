//! The pre-rewrite thread-per-connection server, kept as the benchmark
//! baseline for `serve_throughput` (old vs. new architecture).
//!
//! This is deliberately the old design: one global session table (a
//! single-shard store — every request serializes on one lock), an
//! unbounded thread spawned per accepted connection, and a 5 ms
//! sleep-poll accept loop. It shares the request handlers with the real
//! server ([`crate::serve_with`]) so the comparison isolates the serving
//! architecture, not the endpoint logic. Do not use it for anything but
//! comparison — it has no backpressure, no eviction, and slow shutdown.

use crate::http::{read_request, write_response, Response};
use crate::server::AppState;
use cs2p_core::PredictionEngine;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

struct Inner {
    app: AppState,
    shutdown: AtomicBool,
}

/// A running legacy server.
pub struct LegacyServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
}

impl LegacyServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total predictions served so far.
    pub fn predictions_served(&self) -> u64 {
        self.inner.app.predictions_served()
    }

    /// Stops accepting and joins the accept loop (up to one 5 ms poll
    /// late — the latency this rewrite's real server eliminates).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LegacyServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts the legacy thread-per-connection server on `addr`.
pub fn serve_legacy(engine: PredictionEngine, addr: &str) -> io::Result<LegacyServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        // One shard, effectively unbounded, no TTL: the old global map.
        // The legacy server never refreshes; default knobs are inert.
        app: AppState::new(
            engine,
            &crate::server::RefreshConfig::default(),
            crate::quality::QualityConfig::default(),
            crate::admission::AdmissionConfig::default(),
            Arc::new(cs2p_obs::MonotonicClock::new()),
            1,
            usize::MAX / 2,
            None,
        ),
        shutdown: AtomicBool::new(false),
    });

    let accept_inner = Arc::clone(&inner);
    let accept_thread = thread::Builder::new()
        .name("cs2p-legacy-accept".into())
        .spawn(move || {
            while !accept_inner.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_inner = Arc::clone(&accept_inner);
                        thread::spawn(move || {
                            let _ = handle_connection(stream, conn_inner);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;

    Ok(LegacyServerHandle {
        addr,
        inner,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // peer closed keep-alive cleanly
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = write_response(&mut writer, &Response::error(400, &e.to_string()));
                return Ok(());
            }
            Err(_) => return Ok(()), // timeout / reset
        };
        let resp = inner.app.handle(&req);
        write_response(&mut writer, &resp)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request, Request};
    use crate::protocol::{PredictRequest, PredictResponse};
    use cs2p_testkit::scenarios::tiny_engine;

    #[test]
    fn legacy_server_still_serves_predictions() {
        let server = serve_legacy(tiny_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let preq = PredictRequest {
            session_id: 1,
            features: Some(vec![1]),
            measured_mbps: None,
            horizon: 2,
        };
        write_request(
            &mut writer,
            &Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap()),
        )
        .unwrap();
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        let presp: PredictResponse = serde_json::from_slice(&resp.body).unwrap();
        assert!(presp.initial);
        assert_eq!(presp.predictions_mbps.len(), 2);
        assert_eq!(server.predictions_served(), 1);
        server.shutdown();
    }
}
