//! Bounded accumulator of completed sessions — the feedback seam that
//! turns served traffic back into training data.
//!
//! §5 of the paper assumes models are "updated periodically (e.g.,
//! daily)" from fresh session logs. This is the server-side half of that
//! loop: every session that *completes* (uploads its `/log`, or is
//! evicted from the session store) drains its registration features and
//! the throughputs it reported into a [`SessionRecorder`], which holds a
//! bounded sliding window of the most recent completed sessions. A model
//! refresh snapshots the window as a [`Dataset`] and retrains from it
//! (warm-starting from the live model — see `cs2p_core::ModelRegistry`).
//!
//! The window is a ring: when full, the oldest completed session is
//! dropped (and counted), so memory stays bounded no matter how long the
//! server runs. Sessions with fewer observed epochs than the configured
//! minimum are skipped — they carry no transition information for EM.

use cs2p_core::{Dataset, FeatureSchema, FeatureVector, Session};
use parking_lot::Mutex;
use std::collections::VecDeque;

struct Inner {
    sessions: VecDeque<Session>,
    /// Next synthetic session id (also drives the synthetic start time).
    next_id: u64,
    recorded: u64,
    dropped: u64,
    skipped: u64,
}

/// A bounded sliding window of completed sessions, snapshot-able as a
/// [`Dataset`] for retraining. See the module docs.
pub struct SessionRecorder {
    schema: FeatureSchema,
    epoch_seconds: u32,
    capacity: usize,
    min_epochs: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SessionRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SessionRecorder")
            .field("len", &inner.sessions.len())
            .field("capacity", &self.capacity)
            .field("recorded", &inner.recorded)
            .field("dropped", &inner.dropped)
            .field("skipped", &inner.skipped)
            .finish()
    }
}

impl SessionRecorder {
    /// A recorder holding at most `capacity` completed sessions with the
    /// given feature `schema`; sessions with fewer than `min_epochs`
    /// observed epochs are skipped (`capacity` and `min_epochs` are
    /// clamped to at least 1).
    pub fn new(
        schema: FeatureSchema,
        epoch_seconds: u32,
        capacity: usize,
        min_epochs: usize,
    ) -> Self {
        SessionRecorder {
            schema,
            epoch_seconds,
            capacity: capacity.max(1),
            min_epochs: min_epochs.max(1),
            inner: Mutex::new(Inner {
                sessions: VecDeque::new(),
                next_id: 0,
                recorded: 0,
                dropped: 0,
                skipped: 0,
            }),
        }
    }

    /// Records one completed session. `throughput` is the sequence of
    /// measured epoch throughputs the session reported, in order. Short
    /// sessions (fewer than `min_epochs` observations) are skipped; when
    /// the window is full the oldest session is dropped to make room.
    pub fn record(&self, features: FeatureVector, throughput: Vec<f64>) {
        debug_assert_eq!(features.len(), self.schema.len(), "feature width");
        if throughput.len() < self.min_epochs {
            self.inner.lock().skipped += 1;
            return;
        }
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        // Synthetic, strictly increasing start times: completion order is
        // the only clock the server has for these sessions.
        let start_time = id * self.epoch_seconds as u64;
        inner.sessions.push_back(Session::new(
            id,
            features,
            start_time,
            self.epoch_seconds,
            throughput,
        ));
        inner.recorded += 1;
        if inner.sessions.len() > self.capacity {
            inner.sessions.pop_front();
            inner.dropped += 1;
        }
        if cs2p_obs::enabled() {
            cs2p_obs::counter_add("serve.recorder.sessions", 1);
            cs2p_obs::gauge_set("serve.recorder.len", inner.sessions.len() as f64);
        }
    }

    /// Completed sessions currently in the window.
    pub fn len(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions recorded since startup (including ones since dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Sessions dropped off the back of the full window.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Sessions skipped for having fewer than `min_epochs` observations.
    pub fn skipped(&self) -> u64 {
        self.inner.lock().skipped
    }

    /// Snapshots the current window as a training [`Dataset`] (the window
    /// itself is untouched — it keeps sliding for the next refresh).
    /// `None` when the window is empty.
    pub fn dataset(&self) -> Option<Dataset> {
        let inner = self.inner.lock();
        if inner.sessions.is_empty() {
            return None;
        }
        let sessions: Vec<Session> = inner.sessions.iter().cloned().collect();
        Some(Dataset::new(self.schema.clone(), sessions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize) -> SessionRecorder {
        SessionRecorder::new(FeatureSchema::new(vec!["isp"]), 6, capacity, 2)
    }

    #[test]
    fn records_and_snapshots_without_draining() {
        let rec = recorder(10);
        rec.record(FeatureVector(vec![0]), vec![1.0, 1.1, 0.9]);
        rec.record(FeatureVector(vec![1]), vec![5.0, 5.2]);
        assert_eq!(rec.len(), 2);
        let d = rec.dataset().expect("non-empty");
        assert_eq!(d.len(), 2);
        // Snapshot does not drain.
        assert_eq!(rec.len(), 2);
        assert_eq!(d.get(0).features.get(0), 0);
        assert_eq!(d.get(1).features.get(0), 1);
        assert!(d.get(1).start_time > d.get(0).start_time);
    }

    #[test]
    fn window_is_bounded_and_drops_oldest() {
        let rec = recorder(3);
        for k in 0..5u32 {
            rec.record(FeatureVector(vec![k]), vec![1.0, 2.0]);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let d = rec.dataset().unwrap();
        // Oldest two (features 0 and 1) were dropped.
        let feats: Vec<u32> = d.sessions().iter().map(|s| s.features.get(0)).collect();
        assert_eq!(feats, vec![2, 3, 4]);
    }

    #[test]
    fn short_sessions_are_skipped() {
        let rec = recorder(10);
        rec.record(FeatureVector(vec![0]), vec![]);
        rec.record(FeatureVector(vec![0]), vec![3.0]);
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.skipped(), 2);
        assert!(rec.dataset().is_none());
    }
}
