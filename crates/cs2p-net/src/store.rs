//! Sharded, capacity-bounded session store for the prediction server.
//!
//! Session state (the per-viewer HMM filter) used to live in one global
//! `Mutex<HashMap>`, which serialized every request in the server. This
//! store splits the map into N shards keyed by `fnv1a(session_id)`, each
//! behind its own `parking_lot` mutex, so requests for different sessions
//! proceed in parallel while requests for the *same* session stay
//! serialized — exactly the atomicity the HMM filter update needs.
//!
//! Capacity is bounded per shard. When a shard is full, the least
//! recently used entry is evicted; when a logical TTL is configured,
//! entries idle for more than `ttl` store accesses are evicted first.
//! "Time" here is a logical tick (one per store access), not wall time,
//! so eviction behaviour is reproducible in tests. Every eviction bumps
//! [`SessionStore::evicted`] and the `serve.evicted` counter; an evicted
//! viewer that comes back simply gets the "unknown session" re-init path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// FNV-1a on the little-endian bytes of the id: cheap, stateless, and
/// well-mixed for sequential session ids.
fn fnv1a(id: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Logical-tick width of the eviction-rate telemetry window (see
/// [`SessionStore::pressure`]): the rate reported is over the last
/// *completed* window of this many store accesses, so repeated reads
/// between ticks see one consistent value.
const PRESSURE_WINDOW_TICKS: u64 = 256;

/// Point-in-time load view of the store — one consistent snapshot for
/// both the admission controller and the `/ops` surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorePressure {
    /// Live entries as a fraction of total capacity, in `[0, 1]`.
    pub occupancy: f64,
    /// Evictions per store access (logical tick) over the last completed
    /// telemetry window of [`PRESSURE_WINDOW_TICKS`] accesses; `0.0`
    /// until the first window completes.
    pub eviction_rate: f64,
}

/// Rolling bookkeeping behind [`SessionStore::pressure`].
#[derive(Debug, Default)]
struct PressureWindow {
    start_tick: u64,
    start_evicted: u64,
    rate: f64,
}

struct Entry<V> {
    value: V,
    last_touch: u64,
}

type Shard<V> = HashMap<u64, Entry<V>>;

/// Callback invoked with each evicted `(id, value)` pair (TTL, LRU, or
/// forced eviction — not explicit [`ShardGuard::remove`]). Runs while the
/// owning shard's lock is held, so it must be quick and must never
/// re-enter the store.
pub type EvictionSink<V> = Box<dyn Fn(u64, V) + Send + Sync>;

/// A sharded map from session id to per-session state with LRU + TTL
/// eviction under a per-shard capacity bound.
pub struct SessionStore<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    ttl: Option<u64>,
    tick: AtomicU64,
    evicted: AtomicU64,
    live: AtomicUsize,
    sink: Option<EvictionSink<V>>,
    pressure: Mutex<PressureWindow>,
}

impl<V> SessionStore<V> {
    /// A store with `n_shards` shards holding at most `max_sessions`
    /// entries in total; entries idle for more than `ttl` store accesses
    /// (when `Some`) are evicted eagerly.
    pub fn new(n_shards: usize, max_sessions: usize, ttl: Option<u64>) -> Self {
        let n_shards = n_shards.max(1);
        let per_shard_cap = max_sessions.div_ceil(n_shards).max(1);
        SessionStore {
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap,
            ttl,
            tick: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            sink: None,
            pressure: Mutex::new(PressureWindow::default()),
        }
    }

    /// Installs an eviction sink: every evicted `(id, value)` is handed to
    /// `sink` instead of being silently dropped. This is the server's
    /// session-recorder seam — an evicted viewer is a *completed* session
    /// whose observations flow back into training. Call before sharing the
    /// store across threads.
    pub fn set_eviction_sink(&mut self, sink: EvictionSink<V>) {
        self.sink = Some(sink);
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity bound (per-shard cap × shards).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// Entries currently live across all shards.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted so far (TTL or LRU; explicit removes not counted).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// A cheap point-in-time load view: occupancy fraction plus the
    /// eviction rate over the last completed telemetry window of store
    /// accesses. The admission controller and `/ops` both read this one
    /// snapshot instead of stitching their own from raw counters.
    pub fn pressure(&self) -> StorePressure {
        let capacity = self.capacity();
        let occupancy = if capacity == 0 {
            0.0
        } else {
            (self.len() as f64 / capacity as f64).clamp(0.0, 1.0)
        };
        let tick = self.tick.load(Ordering::Relaxed);
        let evicted = self.evicted();
        let mut w = self.pressure.lock();
        let elapsed = tick.saturating_sub(w.start_tick);
        if elapsed >= PRESSURE_WINDOW_TICKS {
            w.rate = evicted.saturating_sub(w.start_evicted) as f64 / elapsed as f64;
            w.start_tick = tick;
            w.start_evicted = evicted;
        }
        StorePressure {
            occupancy,
            eviction_rate: w.rate,
        }
    }

    /// Forcibly evicts `id` right now (chaos/ops hook): counted both as a
    /// regular eviction and in `serve.fault.forced_evictions`. Returns
    /// whether the session was present. The next request for the session
    /// takes the same "unknown session" re-register path as a TTL/LRU
    /// eviction, which is exactly what fault tests force mid-session.
    pub fn force_evict(&self, id: u64) -> bool {
        let mut guard = self.lock(id);
        match guard.guard.remove(&id) {
            Some(entry) => {
                guard.report_evicted(id, entry.value);
                cs2p_obs::counter_add("serve.fault.forced_evictions", 1);
                true
            }
            None => false,
        }
    }

    /// Counts live entries matching `pred`, locking each shard in turn
    /// (without touching LRU stamps). Used for swap-time gauges like
    /// "sessions still pinned to an older model version".
    pub fn count_values(&self, pred: impl Fn(&V) -> bool) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().values().filter(|e| pred(&e.value)).count())
            .sum()
    }

    /// Index of the shard owning `id`. Stable for the store's lifetime —
    /// the batch handler uses it to group a frame's entries so each shard
    /// lock is taken once per batch instead of once per entry.
    pub fn shard_of(&self, id: u64) -> usize {
        (fnv1a(id) % self.shards.len() as u64) as usize
    }

    /// Locks the shard owning `id` and returns a guard scoped to that
    /// shard. All reads/writes for `id` go through the guard; the shard
    /// lock-hold time is recorded to `serve.shard.lock_us` on drop.
    pub fn lock(&self, id: u64) -> ShardGuard<'_, V> {
        self.lock_shard(self.shard_of(id))
    }

    /// Locks shard `shard_idx` directly (see [`Self::shard_of`]). One
    /// logical tick is consumed per lock, not per entry, so a batched
    /// access ages the TTL clock once per shard group — an explicitly
    /// amortized reading of "one store access".
    pub fn lock_shard(&self, shard_idx: usize) -> ShardGuard<'_, V> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let guard = self.shards[shard_idx].lock();
        ShardGuard {
            store: self,
            guard,
            now,
            held_since: cs2p_obs::enabled().then(Instant::now),
        }
    }

    /// A consistent-enough copy of the store for a durability snapshot:
    /// the logical tick counter plus every `(id, last_touch, value)`
    /// triple, sorted by id for deterministic bytes on disk. Locks each
    /// shard in turn **without** consuming a tick or touching LRU stamps
    /// — snapshotting must not perturb the eviction schedule it records.
    /// Entries mutated while later shards are visited may appear in
    /// either state; WAL replay is idempotent over that window.
    pub fn snapshot(&self) -> (u64, Vec<(u64, u64, V)>)
    where
        V: Clone,
    {
        let tick = self.tick.load(Ordering::SeqCst);
        let mut entries = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.lock();
            for (id, entry) in guard.iter() {
                entries.push((*id, entry.last_touch, entry.value.clone()));
            }
        }
        entries.sort_unstable_by_key(|(id, _, _)| *id);
        (tick, entries)
    }

    /// Rebuilds a store from recovered parts: the persisted tick counter
    /// and `(id, last_touch, value)` triples. Entries are placed directly
    /// in their shards with their original LRU stamps, so TTL/LRU
    /// behaviour continues exactly where the snapshot left off. If the
    /// capacity bound shrank across the restart, the least recently
    /// touched surplus entries are dropped (counted as evictions; no
    /// sink is installed yet at restore time).
    pub fn restore(
        n_shards: usize,
        max_sessions: usize,
        ttl: Option<u64>,
        tick: u64,
        entries: Vec<(u64, u64, V)>,
    ) -> Self {
        let mut store = Self::new(n_shards, max_sessions, ttl);
        *store.tick.get_mut() = tick;
        for (id, last_touch, value) in entries {
            let idx = store.shard_of(id);
            let per_shard_cap = store.per_shard_cap;
            let shard = store.shards[idx].get_mut();
            if !shard.contains_key(&id) && shard.len() >= per_shard_cap {
                if let Some(victim) = shard
                    .iter()
                    .min_by_key(|(key, entry)| (entry.last_touch, **key))
                    .map(|(key, _)| *key)
                {
                    shard.remove(&victim);
                    *store.evicted.get_mut() += 1;
                    *store.live.get_mut() -= 1;
                }
            }
            let fresh = shard.insert(id, Entry { value, last_touch }).is_none();
            if fresh {
                *store.live.get_mut() += 1;
            }
        }
        store
    }
}

/// Exclusive access to one shard of a [`SessionStore`].
pub struct ShardGuard<'a, V> {
    store: &'a SessionStore<V>,
    guard: std::sync::MutexGuard<'a, Shard<V>>,
    now: u64,
    held_since: Option<Instant>,
}

impl<V> ShardGuard<'_, V> {
    /// The logical tick this guard was taken at — the `last_touch` stamp
    /// every mutation through this guard gets. WAL records carry it so
    /// replay restores LRU/TTL state exactly.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn expired(&self, entry: &Entry<V>) -> bool {
        match self.store.ttl {
            Some(ttl) => self.now.saturating_sub(entry.last_touch) > ttl,
            None => false,
        }
    }

    /// Books one eviction (counters + gauge) and hands the value to the
    /// eviction sink, if any. Runs under the shard lock.
    fn report_evicted(&self, id: u64, value: V) {
        self.store.evicted.fetch_add(1, Ordering::Relaxed);
        let live = self.store.live.fetch_sub(1, Ordering::Relaxed) - 1;
        cs2p_obs::counter_add("serve.evicted", 1);
        // Keep the occupancy gauge honest on the way *down* too — it
        // used to be refreshed only by the predict path, so a burst of
        // evictions left it stale until the next successful predict.
        if cs2p_obs::enabled() {
            cs2p_obs::gauge_set("serve.sessions", live as f64);
        }
        if let Some(sink) = &self.store.sink {
            sink(id, value);
        }
    }

    /// Mutable access to the session, touching its LRU stamp. An entry
    /// past its TTL is evicted here and reported as absent, so idle
    /// sessions get the same "unknown session" answer as never-seen ones.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        if self.guard.get(&id).is_some_and(|e| self.expired(e)) {
            if let Some(entry) = self.guard.remove(&id) {
                self.report_evicted(id, entry.value);
            }
            return None;
        }
        let now = self.now;
        self.guard.get_mut(&id).map(|entry| {
            entry.last_touch = now;
            &mut entry.value
        })
    }

    /// Inserts (or replaces) the session, enforcing TTL then the shard
    /// capacity bound: expired entries go first, and if the shard is
    /// still full the least recently touched entry is evicted.
    pub fn insert(&mut self, id: u64, value: V) {
        if let Some(ttl) = self.store.ttl {
            let now = self.now;
            let expired: Vec<u64> = self
                .guard
                .iter()
                .filter(|(key, entry)| **key != id && now.saturating_sub(entry.last_touch) > ttl)
                .map(|(key, _)| *key)
                .collect();
            for key in expired {
                if let Some(entry) = self.guard.remove(&key) {
                    self.report_evicted(key, entry.value);
                }
            }
        }
        let replacing = self.guard.contains_key(&id);
        if !replacing && self.guard.len() >= self.store.per_shard_cap {
            if let Some(victim) = self
                .guard
                .iter()
                .min_by_key(|(key, entry)| (entry.last_touch, **key))
                .map(|(key, _)| *key)
            {
                if let Some(entry) = self.guard.remove(&victim) {
                    self.report_evicted(victim, entry.value);
                }
            }
        }
        let fresh = self
            .guard
            .insert(
                id,
                Entry {
                    value,
                    last_touch: self.now,
                },
            )
            .is_none();
        if fresh {
            self.store.live.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes the session without counting it as an eviction.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let out = self.guard.remove(&id).map(|e| e.value);
        if out.is_some() {
            let live = self.store.live.fetch_sub(1, Ordering::Relaxed) - 1;
            if cs2p_obs::enabled() {
                cs2p_obs::gauge_set("serve.sessions", live as f64);
            }
        }
        out
    }
}

impl<V> Drop for ShardGuard<'_, V> {
    fn drop(&mut self) {
        if let Some(start) = self.held_since {
            cs2p_obs::observe("serve.shard.lock_us", start.elapsed().as_micros() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_roundtrips() {
        let store = SessionStore::new(4, 100, None);
        store.lock(7).insert(7, "state");
        assert_eq!(store.lock(7).get_mut(7).copied(), Some("state"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.evicted(), 0);
    }

    #[test]
    fn capacity_bound_evicts_lru_not_newest() {
        // One shard so every id contends for the same capacity.
        let store = SessionStore::new(1, 2, None);
        store.lock(1).insert(1, 1);
        store.lock(2).insert(2, 2);
        store.lock(1).get_mut(1); // touch 1 → 2 becomes LRU
        store.lock(3).insert(3, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        assert!(store.lock(2).get_mut(2).is_none(), "LRU entry must go");
        assert!(store.lock(1).get_mut(1).is_some());
        assert!(store.lock(3).get_mut(3).is_some());
    }

    #[test]
    fn live_count_never_exceeds_capacity_under_churn() {
        let store = SessionStore::new(4, 8, None);
        for id in 0..500u64 {
            store.lock(id).insert(id, id);
            assert!(store.len() <= store.capacity(), "len {} > cap", store.len());
        }
        assert_eq!(store.evicted() as usize + store.len(), 500);
    }

    #[test]
    fn ttl_expires_idle_sessions_on_read() {
        let store = SessionStore::new(1, 100, Some(3));
        store.lock(1).insert(1, "old");
        // Burn ticks well past the TTL without touching session 1.
        for _ in 0..10 {
            store.lock(2).insert(2, "busy");
        }
        assert!(store.lock(1).get_mut(1).is_none(), "idle session expires");
        assert!(store.evicted() >= 1);
        assert!(store.lock(2).get_mut(2).is_some(), "active session stays");
    }

    #[test]
    fn remove_is_not_counted_as_eviction() {
        let store = SessionStore::new(2, 10, None);
        store.lock(5).insert(5, ());
        assert_eq!(store.lock(5).remove(5), Some(()));
        assert_eq!(store.lock(5).remove(5), None);
        assert_eq!(store.evicted(), 0);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn eviction_sink_sees_every_evicted_value_but_not_removes() {
        use std::sync::Arc;
        let drained = Arc::new(Mutex::new(Vec::new()));
        let mut store = SessionStore::new(1, 3, Some(10));
        let sink_drained = Arc::clone(&drained);
        store.set_eviction_sink(Box::new(move |id, value: u64| {
            sink_drained.lock().push((id, value));
        }));
        store.lock(1).insert(1, 10);
        store.lock(2).insert(2, 20);
        store.lock(3).insert(3, 30);
        // Capacity bound: inserting a fourth evicts the LRU entry (id 1).
        store.lock(4).insert(4, 40);
        // Forced eviction.
        assert!(store.force_evict(2));
        // TTL: burn ticks touching only id 4, then read the idle id 3.
        for _ in 0..12 {
            assert!(store.lock(4).get_mut(4).is_some());
        }
        assert!(store.lock(3).get_mut(3).is_none(), "3 expired");
        // Explicit remove must NOT reach the sink.
        store.lock(4).remove(4);
        let seen = drained.lock().clone();
        assert!(seen.contains(&(1, 10)), "LRU victim drained: {seen:?}");
        assert!(seen.contains(&(2, 20)), "forced victim drained: {seen:?}");
        assert!(seen.contains(&(3, 30)), "TTL victim drained: {seen:?}");
        assert!(
            !seen.iter().any(|&(id, _)| id == 4),
            "remove leaked: {seen:?}"
        );
        assert_eq!(store.evicted() as usize, seen.len());
    }

    #[test]
    fn pressure_reports_occupancy_and_windowed_eviction_rate() {
        let store = SessionStore::new(1, 4, None);
        assert_eq!(store.pressure().occupancy, 0.0);
        store.lock(1).insert(1, ());
        store.lock(2).insert(2, ());
        let p = store.pressure();
        assert!((p.occupancy - 0.5).abs() < 1e-12, "{p:?}");
        assert_eq!(p.eviction_rate, 0.0, "no completed window yet");
        // Churn well past capacity for more than a full telemetry
        // window: nearly every access evicts the LRU entry.
        for id in 0..(3 * PRESSURE_WINDOW_TICKS) {
            store.lock(id + 10).insert(id + 10, ());
        }
        let p = store.pressure();
        assert!((p.occupancy - 1.0).abs() < 1e-12, "{p:?}");
        assert!(p.eviction_rate > 0.5, "sustained churn must show: {p:?}");
        // A quiet store keeps reporting the last completed window until
        // the next one finishes (no mid-window flapping).
        let again = store.pressure();
        assert_eq!(again.eviction_rate, p.eviction_rate);
    }

    #[test]
    fn count_values_scans_all_shards() {
        let store = SessionStore::new(4, 100, None);
        for id in 0..10u64 {
            store.lock(id).insert(id, id % 3);
        }
        assert_eq!(store.count_values(|v| *v == 0), 4); // 0,3,6,9
        assert_eq!(store.count_values(|_| true), 10);
    }

    #[test]
    fn lock_shard_reaches_the_same_entries_as_lock() {
        let store = SessionStore::new(4, 100, None);
        for id in 0..32u64 {
            store.lock(id).insert(id, id * 10);
        }
        for id in 0..32u64 {
            let idx = store.shard_of(id);
            assert!(idx < store.n_shards());
            assert_eq!(store.lock_shard(idx).get_mut(id).copied(), Some(id * 10));
        }
    }

    #[test]
    fn distinct_shards_lock_independently() {
        // With enough shards, two ids land on different shards; holding
        // one guard must not block the other (checked via try-style
        // access from another thread through the public API).
        let store = std::sync::Arc::new(SessionStore::<u64>::new(16, 1000, None));
        let (a, b) = {
            // Find two ids on different shards.
            let mut pair = (0u64, 1u64);
            for candidate in 1..64u64 {
                if fnv1a(candidate) % 16 != fnv1a(0) % 16 {
                    pair = (0, candidate);
                    break;
                }
            }
            pair
        };
        let mut guard_a = store.lock(a);
        guard_a.insert(a, 0);
        let store2 = std::sync::Arc::clone(&store);
        let other = std::thread::spawn(move || {
            store2.lock(b).insert(b, 1);
        });
        other.join().expect("second shard must not deadlock");
        drop(guard_a);
        assert_eq!(store.len(), 2);
    }
}
