//! Sharded, capacity-bounded session store for the prediction server.
//!
//! Session state (the per-viewer HMM filter) used to live in one global
//! `Mutex<HashMap>`, which serialized every request in the server. This
//! store splits the map into N shards keyed by `fnv1a(session_id)`, each
//! behind its own `parking_lot` mutex, so requests for different sessions
//! proceed in parallel while requests for the *same* session stay
//! serialized — exactly the atomicity the HMM filter update needs.
//!
//! Capacity is bounded per shard. When a shard is full, the least
//! recently used entry is evicted; when a logical TTL is configured,
//! entries idle for more than `ttl` store accesses are evicted first.
//! "Time" here is a logical tick (one per store access), not wall time,
//! so eviction behaviour is reproducible in tests. Every eviction bumps
//! [`SessionStore::evicted`] and the `serve.evicted` counter; an evicted
//! viewer that comes back simply gets the "unknown session" re-init path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// FNV-1a on the little-endian bytes of the id: cheap, stateless, and
/// well-mixed for sequential session ids.
fn fnv1a(id: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry<V> {
    value: V,
    last_touch: u64,
}

type Shard<V> = HashMap<u64, Entry<V>>;

/// A sharded map from session id to per-session state with LRU + TTL
/// eviction under a per-shard capacity bound.
pub struct SessionStore<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    ttl: Option<u64>,
    tick: AtomicU64,
    evicted: AtomicU64,
    live: AtomicUsize,
}

impl<V> SessionStore<V> {
    /// A store with `n_shards` shards holding at most `max_sessions`
    /// entries in total; entries idle for more than `ttl` store accesses
    /// (when `Some`) are evicted eagerly.
    pub fn new(n_shards: usize, max_sessions: usize, ttl: Option<u64>) -> Self {
        let n_shards = n_shards.max(1);
        let per_shard_cap = max_sessions.div_ceil(n_shards).max(1);
        SessionStore {
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap,
            ttl,
            tick: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            live: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity bound (per-shard cap × shards).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// Entries currently live across all shards.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted so far (TTL or LRU; explicit removes not counted).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Forcibly evicts `id` right now (chaos/ops hook): counted both as a
    /// regular eviction and in `serve.fault.forced_evictions`. Returns
    /// whether the session was present. The next request for the session
    /// takes the same "unknown session" re-register path as a TTL/LRU
    /// eviction, which is exactly what fault tests force mid-session.
    pub fn force_evict(&self, id: u64) -> bool {
        let mut guard = self.lock(id);
        let present = guard.guard.remove(&id).is_some();
        if present {
            guard.count_evictions(1);
            cs2p_obs::counter_add("serve.fault.forced_evictions", 1);
        }
        present
    }

    /// Locks the shard owning `id` and returns a guard scoped to that
    /// shard. All reads/writes for `id` go through the guard; the shard
    /// lock-hold time is recorded to `serve.shard.lock_us` on drop.
    pub fn lock(&self, id: u64) -> ShardGuard<'_, V> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let shard_idx = (fnv1a(id) % self.shards.len() as u64) as usize;
        let guard = self.shards[shard_idx].lock();
        ShardGuard {
            store: self,
            guard,
            now,
            held_since: cs2p_obs::enabled().then(Instant::now),
        }
    }
}

/// Exclusive access to one shard of a [`SessionStore`].
pub struct ShardGuard<'a, V> {
    store: &'a SessionStore<V>,
    guard: std::sync::MutexGuard<'a, Shard<V>>,
    now: u64,
    held_since: Option<Instant>,
}

impl<V> ShardGuard<'_, V> {
    fn expired(&self, entry: &Entry<V>) -> bool {
        match self.store.ttl {
            Some(ttl) => self.now.saturating_sub(entry.last_touch) > ttl,
            None => false,
        }
    }

    fn count_evictions(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.store.evicted.fetch_add(n as u64, Ordering::Relaxed);
        self.store.live.fetch_sub(n, Ordering::Relaxed);
        cs2p_obs::counter_add("serve.evicted", n as u64);
    }

    /// Mutable access to the session, touching its LRU stamp. An entry
    /// past its TTL is evicted here and reported as absent, so idle
    /// sessions get the same "unknown session" answer as never-seen ones.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        if self.guard.get(&id).is_some_and(|e| self.expired(e)) {
            self.guard.remove(&id);
            self.count_evictions(1);
            return None;
        }
        let now = self.now;
        self.guard.get_mut(&id).map(|entry| {
            entry.last_touch = now;
            &mut entry.value
        })
    }

    /// Inserts (or replaces) the session, enforcing TTL then the shard
    /// capacity bound: expired entries go first, and if the shard is
    /// still full the least recently touched entry is evicted.
    pub fn insert(&mut self, id: u64, value: V) {
        if self.store.ttl.is_some() {
            let before = self.guard.len();
            let now = self.now;
            let ttl = self.store.ttl.unwrap_or(u64::MAX);
            self.guard
                .retain(|key, entry| *key == id || now.saturating_sub(entry.last_touch) <= ttl);
            self.count_evictions(before - self.guard.len());
        }
        let replacing = self.guard.contains_key(&id);
        if !replacing && self.guard.len() >= self.store.per_shard_cap {
            if let Some(victim) = self
                .guard
                .iter()
                .min_by_key(|(key, entry)| (entry.last_touch, **key))
                .map(|(key, _)| *key)
            {
                self.guard.remove(&victim);
                self.count_evictions(1);
            }
        }
        let fresh = self
            .guard
            .insert(
                id,
                Entry {
                    value,
                    last_touch: self.now,
                },
            )
            .is_none();
        if fresh {
            self.store.live.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes the session without counting it as an eviction.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let out = self.guard.remove(&id).map(|e| e.value);
        if out.is_some() {
            self.store.live.fetch_sub(1, Ordering::Relaxed);
        }
        out
    }
}

impl<V> Drop for ShardGuard<'_, V> {
    fn drop(&mut self) {
        if let Some(start) = self.held_since {
            cs2p_obs::observe("serve.shard.lock_us", start.elapsed().as_micros() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_roundtrips() {
        let store = SessionStore::new(4, 100, None);
        store.lock(7).insert(7, "state");
        assert_eq!(store.lock(7).get_mut(7).copied(), Some("state"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.evicted(), 0);
    }

    #[test]
    fn capacity_bound_evicts_lru_not_newest() {
        // One shard so every id contends for the same capacity.
        let store = SessionStore::new(1, 2, None);
        store.lock(1).insert(1, 1);
        store.lock(2).insert(2, 2);
        store.lock(1).get_mut(1); // touch 1 → 2 becomes LRU
        store.lock(3).insert(3, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        assert!(store.lock(2).get_mut(2).is_none(), "LRU entry must go");
        assert!(store.lock(1).get_mut(1).is_some());
        assert!(store.lock(3).get_mut(3).is_some());
    }

    #[test]
    fn live_count_never_exceeds_capacity_under_churn() {
        let store = SessionStore::new(4, 8, None);
        for id in 0..500u64 {
            store.lock(id).insert(id, id);
            assert!(store.len() <= store.capacity(), "len {} > cap", store.len());
        }
        assert_eq!(store.evicted() as usize + store.len(), 500);
    }

    #[test]
    fn ttl_expires_idle_sessions_on_read() {
        let store = SessionStore::new(1, 100, Some(3));
        store.lock(1).insert(1, "old");
        // Burn ticks well past the TTL without touching session 1.
        for _ in 0..10 {
            store.lock(2).insert(2, "busy");
        }
        assert!(store.lock(1).get_mut(1).is_none(), "idle session expires");
        assert!(store.evicted() >= 1);
        assert!(store.lock(2).get_mut(2).is_some(), "active session stays");
    }

    #[test]
    fn remove_is_not_counted_as_eviction() {
        let store = SessionStore::new(2, 10, None);
        store.lock(5).insert(5, ());
        assert_eq!(store.lock(5).remove(5), Some(()));
        assert_eq!(store.lock(5).remove(5), None);
        assert_eq!(store.evicted(), 0);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn distinct_shards_lock_independently() {
        // With enough shards, two ids land on different shards; holding
        // one guard must not block the other (checked via try-style
        // access from another thread through the public API).
        let store = std::sync::Arc::new(SessionStore::<u64>::new(16, 1000, None));
        let (a, b) = {
            // Find two ids on different shards.
            let mut pair = (0u64, 1u64);
            for candidate in 1..64u64 {
                if fnv1a(candidate) % 16 != fnv1a(0) % 16 {
                    pair = (0, candidate);
                    break;
                }
            }
            pair
        };
        let mut guard_a = store.lock(a);
        guard_a.insert(a, 0);
        let store2 = std::sync::Arc::clone(&store);
        let other = std::thread::spawn(move || {
            store2.lock(b).insert(b, 1);
        });
        other.join().expect("second shard must not deadlock");
        drop(guard_a);
        assert_eq!(store.len(), 2);
    }
}
