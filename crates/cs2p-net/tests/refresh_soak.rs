//! Swap-correctness battery for the online model refresh.
//!
//! Three angles on the same contract (§5's periodic model update must be
//! invisible to in-flight sessions):
//!
//! 1. **Swap-spanning bit-identity** — a session that straddles a
//!    hot-swap must produce predictions bit-identical to the same session
//!    on a server that never swapped: pinning means the filter state
//!    never touches the new model. Meanwhile a session registered *after*
//!    the swap must see the new model (and say so in `model_version`).
//! 2. **Zero downtime** — a full load-generator run with swaps firing
//!    concurrently sees no 5xx, no errors, no lost sessions: the swap is
//!    a pointer update, never a stall or a torn engine.
//! 3. **Registry model check** — random `retrain`/`gc`/`pin`/`unpin`/
//!    `get` programs run against both the real `cs2p_core::ModelRegistry`
//!    and a naive reference model (a map from version to the regime shift
//!    its dataset was built with, plus the documented retention rules).
//!    Engines are identified by the cluster median they were trained on —
//!    exact for constant-throughput datasets — so the model also proves
//!    the registry never serves the wrong *engine* under a right version.

use cs2p_core::{Dataset, FeatureVector, ModelRegistry, ModelVersion};
use cs2p_net::http::{read_response, write_request, Request, Response};
use cs2p_net::protocol::{PredictRequest, PredictResponse};
use cs2p_net::{serve_with, RefreshConfig, ServeConfig, ServerHandle};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::{tiny_dataset, tiny_engine, tiny_train_config};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

fn refresh_server() -> ServerHandle {
    let config = ServeConfig {
        n_shards: 4,
        n_workers: 3,
        queue_depth: 1024,
        max_sessions: 10_000,
        session_ttl_requests: None,
        refresh: RefreshConfig {
            train_config: tiny_train_config(),
            retain: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    serve_with(tiny_engine(), "127.0.0.1:0", config).expect("server starts")
}

fn send(addr: SocketAddr, req: &Request) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, req).unwrap();
    read_response(&mut reader).unwrap()
}

fn predict(addr: SocketAddr, preq: &PredictRequest) -> PredictResponse {
    let body = serde_json::to_vec(preq).unwrap();
    let resp = send(addr, &Request::new("POST", "/predict", body));
    assert_eq!(resp.status, 200, "body: {:?}", resp.body);
    serde_json::from_slice(&resp.body).unwrap()
}

/// The deterministic measurement session `id` reports at `epoch`
/// (regime `1.0` or `5.0` Mbps plus a session- and epoch-specific wiggle
/// large enough that any filter-state divergence shows up bitwise).
fn measurement(id: u64, epoch: usize) -> f64 {
    let base = if id.is_multiple_of(2) { 1.0 } else { 5.0 };
    base + 0.25 * (((id * 31 + epoch as u64 * 7) % 13) as f64 - 6.0) / 6.0
}

/// Per-session prediction traces from the swapped and control servers.
type TracePair = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Angle 1: sessions spanning a hot-swap stay bit-identical to a
/// swap-free control server, while post-swap sessions get the new model.
#[test]
fn sessions_spanning_a_swap_are_bit_identical_to_a_swap_free_run() {
    let swapped = refresh_server();
    let control = refresh_server();
    let sessions: Vec<u64> = (1..=8).collect();
    let mut traces: BTreeMap<u64, TracePair> = BTreeMap::new();

    // Epoch 0: register everywhere; epochs 1-2 pre-swap measurements.
    for epoch in 0..=2usize {
        for &id in &sessions {
            let preq = PredictRequest {
                session_id: id,
                features: (epoch == 0).then(|| vec![(id % 2) as u32]),
                measured_mbps: (epoch > 0).then(|| measurement(id, epoch)),
                horizon: 2,
            };
            let a = predict(swapped.addr(), &preq);
            let b = predict(control.addr(), &preq);
            let entry = traces.entry(id).or_default();
            entry.0.push(a.predictions_mbps);
            entry.1.push(b.predictions_mbps);
        }
    }

    // Hot-swap on one server only: retrain on a regime that drifted up
    // by 2 Mbps. The control server keeps serving v1.
    let (version, summary) = swapped
        .refresh_models_with(&tiny_dataset(2.0))
        .expect("drifted dataset supports a model");
    assert_eq!(version, ModelVersion(2));
    assert!(summary.warm_started > 0, "refresh must warm-start");
    assert_eq!(swapped.model_version(), ModelVersion(2));
    assert_eq!(control.model_version(), ModelVersion(1));

    // Epochs 3-5 cross the swap midstream.
    for epoch in 3..=5usize {
        for &id in &sessions {
            let preq = PredictRequest {
                session_id: id,
                features: None,
                measured_mbps: Some(measurement(id, epoch)),
                horizon: 2,
            };
            let a = predict(swapped.addr(), &preq);
            let b = predict(control.addr(), &preq);
            // The pinned session still reports the version it started on.
            assert_eq!(a.model_version, 1, "session {id} must stay pinned");
            let entry = traces.entry(id).or_default();
            entry.0.push(a.predictions_mbps);
            entry.1.push(b.predictions_mbps);
        }
    }

    for (id, (swapped_trace, control_trace)) in &traces {
        assert_eq!(
            swapped_trace, control_trace,
            "session {id}: a swap it never asked for changed its predictions"
        );
    }

    // A session registering after the swap sees the drifted model: its
    // initial prediction is the new cluster median (3.0 for ISP 0), not
    // the old one (1.0).
    let fresh = predict(
        swapped.addr(),
        &PredictRequest {
            session_id: 100,
            features: Some(vec![0]),
            measured_mbps: None,
            horizon: 1,
        },
    );
    assert_eq!(fresh.model_version, 2);
    assert!(
        (fresh.predictions_mbps[0] - 3.0).abs() < 0.5,
        "post-swap session got {} — still the stale model?",
        fresh.predictions_mbps[0]
    );

    swapped.shutdown();
    control.shutdown();
}

/// Angle 2: swaps racing a full load run cause no downtime — every
/// request succeeds, nothing is rejected, no session is lost.
#[test]
fn hot_swaps_under_load_cause_no_downtime() {
    let server = refresh_server();
    let load = LoadConfig {
        n_clients: 4,
        n_sessions: 24,
        epochs_per_session: 12,
        horizon: 2,
        seed: 17,
        max_gap_us: 200, // open-loop pacing so swaps land mid-workload
        session_id_base: 1_000,
        trace_seed: None,
        batch: None,
    };

    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let server_ref = &server;
        let done_ref = &done;
        let swapper = scope.spawn(move || {
            let mut swaps = 0u64;
            while !done_ref.load(Ordering::Relaxed) {
                let shift = 0.5 * (swaps % 4) as f64;
                server_ref
                    .refresh_models_with(&tiny_dataset(shift))
                    .expect("tiny dataset always supports a model");
                swaps += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            swaps
        });
        let report = run_load(server.addr(), &load);
        done.store(true, Ordering::Relaxed);
        let swaps = swapper.join().expect("swapper panicked");
        assert!(swaps >= 2, "load finished before swaps fired (vacuous)");
        report
    });

    assert_eq!(report.errors, 0, "swaps must never surface as errors");
    assert_eq!(report.rejected, 0, "swaps must never cause backpressure");
    assert_eq!(report.reinit, 0, "swaps must never evict sessions");
    assert_eq!(report.ok, report.sent, "every request must succeed");
    assert_eq!(report.predictions.len(), load.n_sessions);

    // Retention held the whole time: current + at most retain-1 older.
    let versions = server.model_versions();
    assert!(
        versions.len() <= 2,
        "retention leaked versions: {versions:?}"
    );
    let stats = server.shutdown();
    assert!(stats.model_version >= 3, "at least two swaps published");
}

// ---------------------------------------------------------------------
// Angle 3: model-based property test of the registry.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Retrain on `tiny_dataset(shift)` and publish.
    Retrain(f64),
    /// Fetch a version (present or collected).
    Get(u64),
    /// Pin a version (may already be collected).
    Pin(u64),
    /// Unpin a version (may not be pinned — documented no-op).
    Unpin(u64),
    /// Explicit GC pass.
    Gc,
}

/// The documented registry semantics, written the obvious slow way: a
/// version is just the regime shift its dataset carried.
struct RefRegistry {
    retain: usize,
    next: u64,
    current: u64,
    retained: BTreeMap<u64, f64>,
    pins: BTreeMap<u64, usize>,
}

impl RefRegistry {
    fn new(retain: usize) -> Self {
        RefRegistry {
            retain: retain.max(1),
            next: 2,
            current: 1,
            retained: BTreeMap::from([(1, 0.0)]),
            pins: BTreeMap::new(),
        }
    }

    fn publish(&mut self, shift: f64) -> u64 {
        let v = self.next;
        self.next += 1;
        self.retained.insert(v, shift);
        self.current = v;
        self.gc();
        v
    }

    fn gc(&mut self) {
        let mut versions: Vec<u64> = self.retained.keys().copied().collect();
        versions.sort_unstable_by(|a, b| b.cmp(a));
        let keep_from = versions.get(self.retain - 1).copied().unwrap_or(0);
        let current = self.current;
        let pins = &self.pins;
        self.retained
            .retain(|v, _| *v >= keep_from || *v == current || pins.contains_key(v));
    }

    fn pin(&mut self, v: u64) -> Option<f64> {
        let shift = self.retained.get(&v).copied()?;
        *self.pins.entry(v).or_insert(0) += 1;
        Some(shift)
    }

    fn unpin(&mut self, v: u64) {
        if let Some(count) = self.pins.get_mut(&v) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&v);
            }
        }
    }
}

/// The shift a constant-regime engine was trained on, recovered exactly:
/// ISP 0's cluster median is `1.0 + shift` and medians of constant data
/// are exact.
fn shift_of(engine: &cs2p_core::PredictionEngine) -> f64 {
    engine.lookup(&FeatureVector(vec![0])).initial_median - 1.0
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Version operands range a little past what short programs can
    // publish, so get/pin/unpin also probe collected and future versions.
    prop::collection::vec((0u8..5, 0u64..10, 0u64..8), 1..14).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, v, shift)| match kind {
                0 => Op::Retrain(shift as f64 * 0.25),
                1 => Op::Get(v),
                2 => Op::Pin(v),
                3 => Op::Unpin(v),
                _ => Op::Gc,
            })
            .collect()
    })
}

fn run_program(retain: usize, ops: &[Op]) {
    let registry = ModelRegistry::new(tiny_engine(), tiny_train_config(), retain);
    let mut model = RefRegistry::new(retain);
    let shifted_datasets: BTreeMap<u64, Dataset> =
        (0..8).map(|s| (s, tiny_dataset(s as f64 * 0.25))).collect();

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Retrain(shift) => {
                let dataset = &shifted_datasets[&((shift / 0.25) as u64)];
                let (version, summary) = registry
                    .retrain(dataset)
                    .expect("tiny dataset always supports a model");
                let expected = model.publish(shift);
                assert_eq!(version.0, expected, "step {step}: published version");
                assert!(summary.warm_started > 0, "step {step}: cold retrain");
            }
            Op::Get(v) => {
                let real = registry.get(ModelVersion(v)).map(|e| shift_of(&e));
                let expected = model.retained.get(&v).copied();
                assert_eq!(real, expected, "step {step}: get(v{v})");
            }
            Op::Pin(v) => {
                let real = registry.pin(ModelVersion(v)).map(|e| shift_of(&e));
                let expected = model.pin(v);
                assert_eq!(real, expected, "step {step}: pin(v{v})");
            }
            Op::Unpin(v) => {
                registry.unpin(ModelVersion(v));
                model.unpin(v);
            }
            Op::Gc => {
                registry.gc();
                model.gc();
            }
        }
        assert_eq!(
            registry.current_version().0,
            model.current,
            "step {step}: current version"
        );
        assert_eq!(
            registry.versions(),
            model
                .retained
                .keys()
                .map(|&v| ModelVersion(v))
                .collect::<Vec<_>>(),
            "step {step}: retained set"
        );
        assert_eq!(registry.published(), model.next - 1, "step {step}");
    }

    // Final sweep: every version ever (plus a few never published) agrees
    // on presence, and every surviving engine is the right one.
    for v in 0..model.next + 2 {
        let real = registry.get(ModelVersion(v)).map(|e| shift_of(&e));
        let expected = model.retained.get(&v).copied();
        assert_eq!(real, expected, "final probe of v{v}");
    }
    let (version, engine) = registry.current();
    assert_eq!(version.0, model.current);
    assert_eq!(shift_of(&engine), model.retained[&model.current]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random retrain/get/pin/unpin/gc programs: the real registry and
    /// the naive model agree on the current version, the retained set,
    /// and — via the recovered regime shift — on which *engine* every
    /// version maps to.
    #[test]
    fn registry_matches_naive_model(
        ops in arb_ops(),
        retain in 1usize..4,
    ) {
        run_program(retain, &ops);
    }
}
