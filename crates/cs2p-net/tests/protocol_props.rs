//! Property tests for the wire protocol (`cs2p-net/src/protocol.rs`):
//! every message type round-trips through its JSON encoding, and a live
//! server answers malformed, truncated, and oversized frames with an
//! error response or a clean close — never a panic or a hung connection.

use cs2p_net::http::{read_response, Response, MAX_BODY_BYTES};
use cs2p_net::protocol::{
    BatchEntryResult, BatchPredictRequest, BatchPredictResponse, Degradation, Health, LogStats,
    PredictRequest, PredictResponse, SessionLog, StrategyStats, MAX_BATCH_ENTRIES,
};
use cs2p_net::{serve, ServerHandle};
use cs2p_testkit::scenarios::tiny_engine;
use proptest::prelude::*;
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Serde round-trips under generated inputs
// ---------------------------------------------------------------------------

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), 0.0f64..1e9).prop_map(|(some, v)| some.then_some(v))
}

fn arb_features() -> impl Strategy<Value = Option<Vec<u32>>> {
    (any::<bool>(), prop::collection::vec(0u32..1000, 0..6)).prop_map(|(some, v)| some.then_some(v))
}

fn arb_session_log() -> impl Strategy<Value = SessionLog> {
    (
        any::<u64>(),
        "[A-Za-z0-9+_-]{0,16}",
        (-1e6f64..1e6, 0.0f64..1e5, 0.0f64..1.0),
        (0.0f64..1e3, 0.0f64..60.0),
        prop::collection::vec((arb_opt_f64(), 0.0f64..1e3), 0..8),
        prop::collection::vec(0.0f64..1e5, 0..8),
    )
        .prop_map(
            |(session_id, strategy, (qoe, avg, good), (rebuf, startup), pairs, bitrates)| {
                SessionLog {
                    session_id,
                    strategy,
                    qoe,
                    avg_bitrate_kbps: avg,
                    good_ratio: good,
                    rebuffer_seconds: rebuf,
                    startup_delay_seconds: startup,
                    throughput_pairs: pairs,
                    bitrates_kbps: bitrates,
                }
            },
        )
}

fn arb_predict_request() -> impl Strategy<Value = PredictRequest> {
    (any::<u64>(), arb_features(), arb_opt_f64(), 1usize..16).prop_map(
        |(session_id, features, measured_mbps, horizon)| PredictRequest {
            session_id,
            features,
            measured_mbps,
            horizon,
        },
    )
}

fn arb_degradation() -> impl Strategy<Value = Option<Degradation>> {
    (0usize..3).prop_map(|pick| match pick {
        0 => None,
        1 => Some(Degradation::Degraded),
        _ => Some(Degradation::Fallback),
    })
}

fn arb_batch_entry_result() -> impl Strategy<Value = BatchEntryResult> {
    (
        0usize..3,
        any::<bool>(),
        (any::<bool>(), "[ -~]{0,32}"),
        prop::collection::vec(0.0f64..1e9, 0..5),
        arb_degradation(),
    )
        .prop_map(
            |(status_pick, with_response, (with_error, error), predictions, degradation)| {
                BatchEntryResult {
                    status: [200u16, 400, 404][status_pick],
                    // Deliberately decoupled from `status`: the wire format
                    // must round-trip whatever combination it is handed.
                    response: with_response.then_some(PredictResponse {
                        predictions_mbps: predictions,
                        initial: false,
                        cluster_sessions: 1,
                        cluster_hit: true,
                        model_version: 1,
                        degradation,
                    }),
                    error: with_error.then_some(error),
                }
            },
        )
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let bytes = serde_json::to_vec(value).expect("serialize");
    serde_json::from_slice(&bytes).expect("deserialize")
}

proptest! {
    #[test]
    fn predict_request_roundtrips(
        session_id in any::<u64>(),
        features in arb_features(),
        measured in arb_opt_f64(),
        horizon in 1usize..64,
    ) {
        let req = PredictRequest { session_id, features, measured_mbps: measured, horizon };
        prop_assert_eq!(roundtrip(&req), req);
    }

    #[test]
    fn predict_response_roundtrips(
        predictions in prop::collection::vec(0.0f64..1e9, 0..33),
        initial in any::<bool>(),
        cluster_sessions in 0usize..1_000_000,
        cluster_hit in any::<bool>(),
        model_version in any::<u64>(),
        degradation in arb_degradation(),
    ) {
        let resp = PredictResponse {
            predictions_mbps: predictions,
            initial,
            cluster_sessions,
            cluster_hit,
            model_version,
            degradation,
        };
        prop_assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn session_log_roundtrips(log in arb_session_log()) {
        prop_assert_eq!(roundtrip(&log), log);
    }

    #[test]
    fn health_roundtrips(
        n_models in 0usize..1000,
        n_sessions in 0usize..1000,
        predictions_served in any::<u64>(),
        n_logs in 0usize..1000,
    ) {
        let health = Health {
            status: "ok".into(),
            n_models,
            n_sessions,
            predictions_served,
            n_logs,
        };
        prop_assert_eq!(roundtrip(&health), health);
    }

    #[test]
    fn log_stats_roundtrip_and_aggregation_is_stable(
        logs in prop::collection::vec(arb_session_log(), 0..6)
    ) {
        let stats = LogStats::from_logs(&logs);
        let back: LogStats = roundtrip(&stats);
        prop_assert_eq!(back, stats);
    }

    #[test]
    fn batch_request_roundtrips_and_fast_writer_matches(
        entries in prop::collection::vec(arb_predict_request(), 0..24)
    ) {
        let breq = BatchPredictRequest { entries };
        prop_assert_eq!(roundtrip(&breq), breq.clone());
        // The direct writer must emit byte-for-byte what the generic
        // serializer emits — same escaping, same float formatting, same
        // None-field omission.
        prop_assert_eq!(breq.to_json_bytes(), serde_json::to_vec(&breq).unwrap());
    }

    #[test]
    fn batch_response_roundtrips_and_fast_writer_matches(
        results in prop::collection::vec(arb_batch_entry_result(), 0..24)
    ) {
        let bresp = BatchPredictResponse { results };
        prop_assert_eq!(roundtrip(&bresp), bresp.clone());
        prop_assert_eq!(bresp.to_json_bytes(), serde_json::to_vec(&bresp).unwrap());
    }

    #[test]
    fn strategy_stats_roundtrips(
        strategy in "[A-Za-z+]{1,12}",
        n_sessions in 0usize..1000,
        means in (0.0f64..1e3, 0.0f64..1e5, 0.0f64..1.0, 0.0f64..1e3, 0.0f64..60.0),
    ) {
        let s = StrategyStats {
            strategy,
            n_sessions,
            mean_qoe: means.0,
            mean_bitrate_kbps: means.1,
            mean_good_ratio: means.2,
            mean_rebuffer_seconds: means.3,
            mean_startup_seconds: means.4,
        };
        prop_assert_eq!(roundtrip(&s), s);
    }
}

// ---------------------------------------------------------------------------
// Malformed frames against a live server
// ---------------------------------------------------------------------------

/// One shared server for every malformed-frame case: surviving hundreds
/// of hostile connections *on the same instance* is part of the point.
fn shared_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| serve(tiny_engine(), "127.0.0.1:0").unwrap())
}

/// Writes raw bytes, optionally half-closes, and reads whatever comes
/// back. Returns the parsed response if the server sent one. The read
/// timeout turns a hung connection into a test failure, not a stuck CI.
fn raw_exchange(bytes: &[u8], half_close: bool) -> std::io::Result<Option<Response>> {
    let stream = TcpStream::connect(shared_server().addr())?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    // The server may legitimately reject early and close while we are
    // still writing; a broken pipe is a clean refusal, not a failure.
    if let Err(e) = writer.write_all(bytes) {
        if e.kind() == ErrorKind::BrokenPipe || e.kind() == ErrorKind::ConnectionReset {
            return Ok(None);
        }
        return Err(e);
    }
    let _ = writer.flush();
    if half_close {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut reader = BufReader::new(stream);
    match read_response(&mut reader) {
        Ok(resp) => Ok(Some(resp)),
        // A clean close (or reset while tearing down) is acceptable.
        Err(e)
            if e.kind() == ErrorKind::UnexpectedEof
                || e.kind() == ErrorKind::ConnectionReset
                || e.kind() == ErrorKind::InvalidData =>
        {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

fn assert_error_or_clean_close(bytes: &[u8], half_close: bool) {
    // `None` — a clean close — is also acceptable.
    if let Some(resp) =
        raw_exchange(bytes, half_close).expect("exchange must not hang or hard-fail")
    {
        assert!(
            resp.status >= 400,
            "malformed frame got a {} success",
            resp.status
        );
    }
}

proptest! {
    #[test]
    fn garbage_bytes_get_an_error_or_clean_close(
        garbage in prop::collection::vec(any::<u8>(), 0..1024)
    ) {
        assert_error_or_clean_close(&garbage, true);
    }

    #[test]
    fn truncated_predict_requests_never_hang(
        cut in 1usize..50,
        session_id in any::<u64>(),
    ) {
        let preq = PredictRequest {
            session_id,
            features: Some(vec![1]),
            measured_mbps: None,
            horizon: 4,
        };
        let body = serde_json::to_vec(&preq).unwrap();
        let frame = format!(
            "POST /predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut bytes = frame.into_bytes();
        bytes.extend_from_slice(&body);
        let keep = bytes.len().saturating_sub(cut.min(bytes.len() - 1));
        assert_error_or_clean_close(&bytes[..keep], true);
    }
}

/// Builds a complete `/predict_batch` HTTP frame around `body`.
fn batch_frame(body: &[u8]) -> Vec<u8> {
    let mut bytes = format!(
        "POST /predict_batch HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #[test]
    fn garbage_batch_bodies_get_an_error_or_clean_close(
        garbage in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        assert_error_or_clean_close(&batch_frame(&garbage), true);
    }

    #[test]
    fn truncated_batch_frames_never_hang(
        cut in 1usize..80,
        entries in prop::collection::vec(arb_predict_request(), 1..8),
    ) {
        let body = BatchPredictRequest { entries }.to_json_bytes();
        let bytes = batch_frame(&body);
        let keep = bytes.len().saturating_sub(cut.min(bytes.len() - 1));
        assert_error_or_clean_close(&bytes[..keep], true);
    }

    /// Frames whose entries repeat the same session keys — including
    /// re-registrations and measurement-before-registration orders the
    /// generator is free to produce — must always get one well-formed
    /// 200 with per-entry statuses, never a panic, hang, or 5xx.
    #[test]
    fn duplicate_session_key_frames_answer_per_entry_statuses(
        sids in prop::collection::vec(7770u64..7773, 1..12),
        with_features in prop::collection::vec(any::<bool>(), 12),
    ) {
        let entries: Vec<PredictRequest> = sids
            .iter()
            .zip(&with_features)
            .map(|(&sid, &reg)| PredictRequest {
                session_id: sid,
                features: reg.then(|| vec![(sid % 2) as u32]),
                measured_mbps: (!reg).then_some(2.0),
                horizon: 1,
            })
            .collect();
        let n = entries.len();
        let body = BatchPredictRequest { entries }.to_json_bytes();
        let resp = raw_exchange(&batch_frame(&body), false)
            .expect("exchange must not hang")
            .expect("a valid batch frame must get a response");
        prop_assert_eq!(resp.status, 200);
        let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
        prop_assert_eq!(bresp.results.len(), n);
        for r in &bresp.results {
            prop_assert!(
                r.status == 200 || r.status == 404,
                "unexpected per-entry status {}", r.status
            );
            prop_assert_eq!(r.response.is_some(), r.status == 200);
        }
    }
}

/// An empty batch is a client error, not a server blowup: 400, not 5xx.
#[test]
fn empty_batch_is_a_400_not_a_500() {
    let resp = raw_exchange(&batch_frame(br#"{"entries":[]}"#), false)
        .expect("must not hang")
        .expect("server must answer");
    assert_eq!(resp.status, 400, "reason: {}", resp.reason);
}

/// A frame over [`MAX_BATCH_ENTRIES`] is rejected whole with a 400 —
/// and the server goes on serving.
#[test]
fn over_cap_batch_is_rejected_whole() {
    let entries: Vec<PredictRequest> = (0..=MAX_BATCH_ENTRIES as u64)
        .map(|i| PredictRequest {
            session_id: i,
            features: None,
            measured_mbps: Some(1.0),
            horizon: 1,
        })
        .collect();
    assert!(entries.len() > MAX_BATCH_ENTRIES);
    let body = BatchPredictRequest { entries }.to_json_bytes();
    let resp = raw_exchange(&batch_frame(&body), false)
        .expect("must not hang")
        .expect("server must answer");
    assert_eq!(resp.status, 400, "reason: {}", resp.reason);
}

#[test]
fn oversized_content_length_is_rejected_without_reading_the_body() {
    // Announce a body over the 4 MiB cap but never send it: the server
    // must refuse from the header alone.
    let frame = format!(
        "POST /predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    // Refusal by close (`None`) is also acceptable.
    if let Some(resp) = raw_exchange(frame.as_bytes(), false).expect("must not hang") {
        assert_eq!(resp.status, 400, "reason: {}", resp.reason);
    }
}

#[test]
fn huge_header_block_is_rejected() {
    let mut frame = String::from("GET /healthz HTTP/1.1\r\n");
    frame.push_str(&"x".repeat(20 * 1024));
    assert_error_or_clean_close(frame.as_bytes(), true);
}

#[test]
fn server_survives_the_hostile_suite_and_still_serves() {
    // Run after (or interleaved with) the hostile cases above — the
    // instance they all hammered must still answer real requests.
    let preq = PredictRequest {
        session_id: 424242,
        features: Some(vec![0]),
        measured_mbps: None,
        horizon: 2,
    };
    let body = serde_json::to_vec(&preq).unwrap();
    let frame = format!(
        "POST /predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut bytes = frame.into_bytes();
    bytes.extend_from_slice(&body);
    let stream = TcpStream::connect(shared_server().addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(&bytes).unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    let presp: PredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(presp.predictions_mbps.len(), 2);
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
}
