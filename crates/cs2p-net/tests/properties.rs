//! Property-based tests over the HTTP layer: any request/response we can
//! construct must survive a wire round trip byte-for-byte, and malformed
//! inputs must produce errors, never panics.

use bytes::Bytes;
use cs2p_net::http::{
    read_request, read_response, write_request, write_response, Request, Response,
};
use proptest::prelude::*;
use std::io::BufReader;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,15}".prop_map(|s| s)
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (
            arb_token(),
            "[ -~&&[^\r\n]]{0,30}".prop_map(|v| v.trim().to_string()),
        ),
        0..8,
    )
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #[test]
    fn request_roundtrips(
        method in "[A-Z]{3,7}",
        path in "/[a-z0-9/_-]{0,20}",
        headers in arb_headers(),
        body in arb_body()
    ) {
        let mut req = Request::new(&method, &path, Bytes::from(body));
        req.headers = headers;
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let back = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        prop_assert_eq!(&back.method, &req.method);
        prop_assert_eq!(&back.path, &req.path);
        prop_assert_eq!(&back.body, &req.body);
        // The header list survives verbatim, order and duplicates included
        // (names were generated lowercase and values pre-trimmed, so the
        // parser's normalization is the identity here). The writer appends
        // a framing content-length header; drop it before comparing.
        let received: Vec<(String, String)> = back
            .headers
            .iter()
            .filter(|(n, _)| n != "content-length")
            .cloned()
            .collect();
        prop_assert_eq!(&received, &req.headers);
    }

    #[test]
    fn response_roundtrips(
        status in 100u16..600,
        headers in arb_headers(),
        body in arb_body()
    ) {
        let mut resp = Response::new(status, Bytes::from(body));
        resp.headers = headers;
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let back = read_response(&mut BufReader::new(&wire[..])).unwrap();
        prop_assert_eq!(back.status, resp.status);
        prop_assert_eq!(back.body, resp.body);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(garbage in prop::collection::vec(any::<u8>(), 0..2048)) {
        // Any outcome is fine except a panic.
        let _ = read_request(&mut BufReader::new(&garbage[..]));
        let _ = read_response(&mut BufReader::new(&garbage[..]));
    }

    #[test]
    fn truncated_valid_requests_error_cleanly(
        body in prop::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0
    ) {
        let req = Request::new("POST", "/predict", Bytes::from(body));
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        let truncated = &wire[..cut];
        match read_request(&mut BufReader::new(truncated)) {
            Ok(None) => prop_assert_eq!(cut, 0), // clean EOF only at zero bytes
            Ok(Some(_)) => prop_assert!(false, "parsed a truncated request"),
            Err(_) => {} // expected
        }
    }

    #[test]
    fn pipelined_requests_all_parse(n in 1usize..6, body in arb_body()) {
        let mut wire = Vec::new();
        for i in 0..n {
            let req = Request::new("POST", &format!("/r{i}"), Bytes::from(body.clone()));
            write_request(&mut wire, &req).unwrap();
        }
        let mut reader = BufReader::new(&wire[..]);
        for i in 0..n {
            let r = read_request(&mut reader).unwrap().unwrap();
            prop_assert_eq!(r.path, format!("/r{i}"));
        }
        prop_assert!(read_request(&mut reader).unwrap().is_none());
    }
}
