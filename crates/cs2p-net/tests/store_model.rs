//! Model-based property test for the sharded session store: random
//! register/get/remove/force-evict programs run against both the real
//! `SessionStore` and a naive reference model (plain maps plus the
//! documented tick/TTL/LRU rules, no sharding machinery, no atomics).
//! After every operation the two must agree on the returned value, the
//! live count, and the eviction counter; with a single shard the
//! agreement is exact for LRU victim order and TTL expiry as well, since
//! any divergence in either shows up as a presence mismatch on a later
//! probe.
//!
//! The same reference model also checks the durability layer's
//! snapshot/restore: persisting a store mid-program and continuing on
//! the restored copy must be indistinguishable from never restarting —
//! same values, same tick clock, same TTL/LRU schedule.

use cs2p_net::persist::{read_snapshot, write_snapshot, StoreSnapshot};
use cs2p_net::store::SessionStore;
use cs2p_testkit::crash::TempDir;
use proptest::prelude::*;
use std::collections::HashMap;

/// Same hash as the store (FNV-1a over the id's little-endian bytes) so
/// the reference model agrees on shard placement.
fn fnv1a(id: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
    ForceEvict(u64),
}

/// The documented store semantics, written the obvious slow way.
struct RefStore {
    shards: Vec<HashMap<u64, (u64, u64)>>, // id -> (value, last_touch)
    per_shard_cap: usize,
    ttl: Option<u64>,
    tick: u64,
    evicted: u64,
}

impl RefStore {
    fn new(n_shards: usize, max_sessions: usize, ttl: Option<u64>) -> Self {
        let n_shards = n_shards.max(1);
        RefStore {
            shards: vec![HashMap::new(); n_shards],
            per_shard_cap: max_sessions.div_ceil(n_shards).max(1),
            ttl,
            tick: 0,
            evicted: 0,
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Every operation locks one shard, which consumes one logical tick.
    fn next_tick(&mut self) -> u64 {
        let now = self.tick;
        self.tick += 1;
        now
    }

    fn shard_of(&self, id: u64) -> usize {
        (fnv1a(id) % self.shards.len() as u64) as usize
    }

    fn expired(ttl: Option<u64>, now: u64, last_touch: u64) -> bool {
        ttl.is_some_and(|t| now.saturating_sub(last_touch) > t)
    }

    fn get(&mut self, id: u64) -> Option<u64> {
        let now = self.next_tick();
        let ttl = self.ttl;
        let shard = self.shard_of(id);
        let shard = &mut self.shards[shard];
        if shard
            .get(&id)
            .is_some_and(|&(_, t)| Self::expired(ttl, now, t))
        {
            shard.remove(&id);
            self.evicted += 1;
            return None;
        }
        shard.get_mut(&id).map(|entry| {
            entry.1 = now;
            entry.0
        })
    }

    fn insert(&mut self, id: u64, value: u64) {
        let now = self.next_tick();
        let ttl = self.ttl;
        let cap = self.per_shard_cap;
        let shard = self.shard_of(id);
        let shard = &mut self.shards[shard];
        if ttl.is_some() {
            let before = shard.len();
            shard.retain(|key, &mut (_, t)| *key == id || !Self::expired(ttl, now, t));
            self.evicted += (before - shard.len()) as u64;
        }
        if !shard.contains_key(&id) && shard.len() >= cap {
            let victim = shard
                .iter()
                .min_by_key(|(key, &(_, t))| (t, **key))
                .map(|(key, _)| *key)
                .expect("full shard has a victim");
            shard.remove(&victim);
            self.evicted += 1;
        }
        shard.insert(id, (value, now));
    }

    fn remove(&mut self, id: u64) -> Option<u64> {
        let _ = self.next_tick();
        let shard = self.shard_of(id);
        self.shards[shard].remove(&id).map(|(v, _)| v)
    }

    fn force_evict(&mut self, id: u64) -> bool {
        let _ = self.next_tick();
        let shard = self.shard_of(id);
        let present = self.shards[shard].remove(&id).is_some();
        if present {
            self.evicted += 1;
        }
        present
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..4, 0u64..12, any::<u64>()), 1..80).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, id, value)| match kind {
                0 => Op::Insert(id, value),
                1 => Op::Get(id),
                2 => Op::Remove(id),
                _ => Op::ForceEvict(id),
            })
            .collect()
    })
}

fn run_program(n_shards: usize, max_sessions: usize, ttl: Option<u64>, ops: &[Op]) {
    let store: SessionStore<u64> = SessionStore::new(n_shards, max_sessions, ttl);
    let mut model = RefStore::new(n_shards, max_sessions, ttl);
    run_ops(&store, &mut model, ops, 0);

    // Final sweep: presence (and surviving value) of every id must agree.
    // The probes consume ticks and may TTL-evict on both sides, so this
    // also exercises expiry one more time.
    for id in 0..12u64 {
        let real = store.lock(id).get_mut(id).copied();
        let expected = model.get(id);
        assert_eq!(real, expected, "final probe of {id}");
    }
    assert_eq!(store.evicted(), model.evicted, "final eviction counter");
}

/// Runs `ops` on both sides, asserting agreement after every step.
/// `evicted_offset` is the model's eviction count at the point the store
/// was (re)created — a restored store restarts its counter at zero while
/// the reference model's keeps running across the restart.
fn run_ops(store: &SessionStore<u64>, model: &mut RefStore, ops: &[Op], evicted_offset: u64) {
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(id, value) => {
                store.lock(id).insert(id, value);
                model.insert(id, value);
            }
            Op::Get(id) => {
                let real = store.lock(id).get_mut(id).copied();
                let expected = model.get(id);
                assert_eq!(real, expected, "step {step}: get({id})");
            }
            Op::Remove(id) => {
                let real = store.lock(id).remove(id);
                let expected = model.remove(id);
                assert_eq!(real, expected, "step {step}: remove({id})");
            }
            Op::ForceEvict(id) => {
                let real = store.force_evict(id);
                let expected = model.force_evict(id);
                assert_eq!(real, expected, "step {step}: force_evict({id})");
            }
        }
        assert_eq!(store.len(), model.len(), "step {step}: live count");
        assert_eq!(
            store.evicted() + evicted_offset,
            model.evicted,
            "step {step}: eviction counter"
        );
        assert!(
            store.len() <= store.capacity(),
            "step {step}: live {} over capacity {}",
            store.len(),
            store.capacity()
        );
    }
}

proptest! {
    /// One shard: the reference model is exact, including LRU victim
    /// order, TTL expiry, the capacity bound, and the eviction counter.
    #[test]
    fn single_shard_store_matches_naive_model(
        ops in arb_ops(),
        max_sessions in 1usize..6,
        ttl_raw in 0u64..8,
    ) {
        let ttl = (ttl_raw > 0).then_some(ttl_raw + 1);
        run_program(1, max_sessions, ttl, &ops);
    }

    /// Multiple shards: the model reuses the store's own hash for
    /// placement, so agreement stays exact across shard boundaries.
    #[test]
    fn sharded_store_matches_naive_model(
        ops in arb_ops(),
        n_shards in 1usize..5,
        max_sessions in 1usize..10,
        ttl_raw in 0u64..8,
    ) {
        let ttl = (ttl_raw > 0).then_some(ttl_raw + 1);
        run_program(n_shards, max_sessions, ttl, &ops);
    }

    /// Snapshot/restore round trip through the on-disk format: run half
    /// the program, persist the store (`snapshot` → `write_snapshot` →
    /// `read_snapshot` → `restore`), then run the other half on the
    /// restored copy. The reference model never restarts — if the
    /// restored store disagrees with it on any value, tick, TTL expiry,
    /// or LRU victim, persistence lost or mangled state.
    #[test]
    fn snapshot_restore_is_invisible_to_the_model(
        ops_before in arb_ops(),
        ops_after in arb_ops(),
        n_shards in 1usize..5,
        max_sessions in 1usize..10,
        ttl_raw in 0u64..8,
    ) {
        let ttl = (ttl_raw > 0).then_some(ttl_raw + 1);
        let store: SessionStore<u64> = SessionStore::new(n_shards, max_sessions, ttl);
        let mut model = RefStore::new(n_shards, max_sessions, ttl);
        run_ops(&store, &mut model, &ops_before, 0);

        let (tick, entries) = store.snapshot();
        prop_assert_eq!(tick, model.tick, "snapshot tick");
        let written = StoreSnapshot { covered_gen: 3, tick, entries };
        let dir = TempDir::new("store-rt");
        let path = dir.path().join("store.snap");
        write_snapshot(&path, &written).expect("write snapshot");
        let snap = read_snapshot::<u64>(&path).expect("read snapshot back");
        prop_assert_eq!(snap.covered_gen, 3, "covered_gen survives the format");
        prop_assert_eq!(snap.tick, written.tick);
        prop_assert_eq!(&snap.entries, &written.entries);

        let evicted_at_restart = model.evicted;
        let restored: SessionStore<u64> =
            SessionStore::restore(n_shards, max_sessions, ttl, snap.tick, snap.entries);
        prop_assert_eq!(restored.len(), model.len(), "live count after restore");
        run_ops(&restored, &mut model, &ops_after, evicted_at_restart);

        for id in 0..12u64 {
            let real = restored.lock(id).get_mut(id).copied();
            let expected = model.get(id);
            prop_assert_eq!(real, expected, "post-restore probe of {}", id);
        }
    }
}
