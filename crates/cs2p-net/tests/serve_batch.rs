//! Differential equivalence battery for `POST /predict_batch`.
//!
//! The batched endpoint's contract is that a frame is *semantically
//! identical* to sending its entries as sequential singleton `/predict`
//! POSTs — not "close", bit-identical. These tests prove it three ways:
//!
//! - a loadgen matrix over worker counts {1, 2, 8} × frame sizes
//!   {1, 7, 64}, where every batched run must reproduce the singleton
//!   baseline's per-session prediction sequences bit-for-bit
//!   (via [`assert_serving_concurrency_independence`]);
//! - a twin-server differential drive comparing, per entry, the exact
//!   `(status, response, error)` triple — including per-entry 404s for
//!   unregistered sessions mid-frame — and afterwards the surviving
//!   session *states* (identical follow-up probes must answer
//!   identically) and the quality monitor's APE sketches via `GET /ops`;
//! - frame-order semantics for same-session entries inside one frame
//!   (register + several measurements in a single batch).

use cs2p_net::http::{read_response, write_request, Request, Response};
use cs2p_net::protocol::{
    BatchPredictRequest, BatchPredictResponse, PredictRequest, PredictResponse,
};
use cs2p_net::{serve_with, OpsSnapshot, ServeConfig, ServerHandle};
use cs2p_testkit::invariants::assert_serving_concurrency_independence;
use cs2p_testkit::loadgen::{BatchSpec, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

fn send(addr: SocketAddr, req: &Request) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, req).unwrap();
    read_response(&mut reader).unwrap()
}

fn ops(addr: SocketAddr) -> OpsSnapshot {
    let resp = send(addr, &Request::new("GET", "/ops", Vec::new()));
    assert_eq!(resp.status, 200);
    serde_json::from_slice(&resp.body).unwrap()
}

fn server(n_workers: usize) -> ServerHandle {
    let config = ServeConfig {
        n_workers,
        n_shards: 4,
        queue_depth: 4096,
        max_sessions: 1 << 20,
        session_ttl_requests: None,
        ..ServeConfig::default()
    };
    serve_with(tiny_engine(), "127.0.0.1:0", config).expect("server starts")
}

/// What one entry produced, normalized across both endpoints: the
/// singleton endpoint's `(HTTP status, parsed response | error text)`
/// and a batch entry's `(status, response, error)` must map to the same
/// triple for the paths to count as equivalent.
type EntryOutcome = (u16, Option<PredictResponse>, Option<String>);

/// A deterministic mixed entry stream: `n_sessions` sessions walked
/// epoch-major (registration first, then measurements), so consecutive
/// entries belong to *different* sessions and a 7-entry frame spans
/// several shard groups. Session id `base + n_sessions` is a ghost: its
/// entries carry a measurement but no features and must answer 404 from
/// both endpoints without derailing neighbours.
fn entry_stream(base: u64, n_sessions: u64, epochs: usize) -> Vec<PredictRequest> {
    let mut entries = Vec::new();
    for epoch in 0..epochs {
        for sid in base..base + n_sessions {
            let measured = 1.0 + ((sid * 31 + epoch as u64 * 7) % 50) as f64 / 10.0;
            entries.push(PredictRequest {
                session_id: sid,
                features: (epoch == 0).then(|| vec![(sid % 2) as u32]),
                measured_mbps: (epoch > 0).then_some(measured),
                horizon: 2,
            });
        }
        // The ghost entry: never registered, so both paths answer 404.
        entries.push(PredictRequest {
            session_id: base + n_sessions,
            features: None,
            measured_mbps: Some(3.0),
            horizon: 1,
        });
    }
    entries
}

fn drive_singleton(addr: SocketAddr, entries: &[PredictRequest]) -> Vec<EntryOutcome> {
    entries
        .iter()
        .map(|preq| {
            let body = serde_json::to_vec(preq).unwrap();
            let resp = send(addr, &Request::new("POST", "/predict", body));
            if resp.status == 200 {
                (200, Some(serde_json::from_slice(&resp.body).unwrap()), None)
            } else {
                (
                    resp.status,
                    None,
                    Some(String::from_utf8(resp.body.to_vec()).unwrap()),
                )
            }
        })
        .collect()
}

fn drive_batched(
    addr: SocketAddr,
    entries: &[PredictRequest],
    frame_size: usize,
) -> Vec<EntryOutcome> {
    let mut outcomes = Vec::new();
    for frame in entries.chunks(frame_size) {
        let breq = BatchPredictRequest {
            entries: frame.to_vec(),
        };
        let resp = send(
            addr,
            &Request::new("POST", "/predict_batch", breq.to_json_bytes()),
        );
        assert_eq!(resp.status, 200, "batch frame failed: {:?}", resp.body);
        let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(bresp.results.len(), frame.len(), "frame length mismatch");
        for r in bresp.results {
            outcomes.push((r.status, r.response, r.error));
        }
    }
    outcomes
}

/// Identical follow-up singleton probes against both servers: if any
/// session's filter state (posterior, epoch, pending prediction)
/// diverged, a horizon-3 probe with one more measurement exposes it.
fn probe_states(a: SocketAddr, b: SocketAddr, base: u64, n_sessions: u64, frame_size: usize) {
    for sid in base..base + n_sessions {
        let probe = PredictRequest {
            session_id: sid,
            features: None,
            measured_mbps: Some(2.5 + (sid % 3) as f64),
            horizon: 3,
        };
        let body = serde_json::to_vec(&probe).unwrap();
        let ra = send(a, &Request::new("POST", "/predict", body.clone()));
        let rb = send(b, &Request::new("POST", "/predict", body));
        assert_eq!(ra.status, 200);
        assert_eq!(rb.status, 200);
        let pa: PredictResponse = serde_json::from_slice(&ra.body).unwrap();
        let pb: PredictResponse = serde_json::from_slice(&rb.body).unwrap();
        assert_eq!(
            pa, pb,
            "session {sid} state diverged after frame_size={frame_size}"
        );
    }
}

/// Worker counts {1, 2, 8} × frame sizes {1, 7, 64}: every cell must
/// reproduce the singleton single-worker baseline's per-session
/// prediction sequences bit-identically, under 2 concurrent clients.
#[test]
fn batch_matrix_reproduces_singleton_predictions_across_worker_counts() {
    for &frame_size in &[1usize, 7, 64] {
        let workload = LoadConfig {
            n_clients: 2,
            n_sessions: 32,
            epochs_per_session: 4,
            horizon: 2,
            seed: 81,
            session_id_base: 40_000,
            batch: Some(BatchSpec::fixed(frame_size)),
            ..LoadConfig::default()
        };
        assert_serving_concurrency_independence(&[1, 2, 8], &workload);
    }
}

/// Mixed (not fixed) frame sizes must be equivalent too: the frame
/// boundaries are drawn from the seeded distribution, and wherever they
/// fall the predictions must match the singleton baseline.
#[test]
fn ragged_frame_sizes_reproduce_singleton_predictions() {
    let workload = LoadConfig {
        n_clients: 3,
        n_sessions: 12,
        epochs_per_session: 4,
        horizon: 2,
        seed: 82,
        session_id_base: 41_000,
        batch: Some(BatchSpec {
            min_entries: 1,
            max_entries: 9,
        }),
        ..LoadConfig::default()
    };
    assert_serving_concurrency_independence(&[2], &workload);
}

/// Twin-server differential: the same entry stream driven as singleton
/// POSTs against server A and as `/predict_batch` frames against server
/// B must produce identical per-entry outcomes (including mid-frame
/// 404s), identical surviving session states, and identical quality
/// sketches (`matched`/`unmatched` counts and every APE quantile row).
#[test]
fn batch_frames_match_sequential_singles_end_to_end() {
    const BASE: u64 = 50_000;
    const N_SESSIONS: u64 = 6;
    let entries = entry_stream(BASE, N_SESSIONS, 5);
    for &frame_size in &[1usize, 7, 64] {
        let a = server(2);
        let b = server(2);
        let singles = drive_singleton(a.addr(), &entries);
        let batched = drive_batched(b.addr(), &entries, frame_size);
        assert_eq!(
            singles.len(),
            batched.len(),
            "outcome count mismatch at frame_size={frame_size}"
        );
        for (i, (s, bt)) in singles.iter().zip(&batched).enumerate() {
            assert_eq!(
                s, bt,
                "entry {i} diverged at frame_size={frame_size} \
                 (session {})",
                entries[i].session_id
            );
        }

        probe_states(a.addr(), b.addr(), BASE, N_SESSIONS, frame_size);

        let (oa, ob) = (ops(a.addr()), ops(b.addr()));
        assert_eq!(
            oa.quality, ob.quality,
            "quality monitor diverged at frame_size={frame_size}"
        );
        assert_eq!(oa.predictions_served, ob.predictions_served);
        assert_eq!(oa.sessions_live, ob.sessions_live);
        assert_eq!(oa.sessions_evicted, ob.sessions_evicted);

        a.shutdown();
        b.shutdown();
    }
}

/// Same-session entries inside one frame run in frame order: a single
/// frame carrying `[register s1, measure s1, register s2, measure s1]`
/// must behave exactly like its sequential expansion, interleaved
/// sessions and all.
#[test]
fn same_session_entries_in_one_frame_follow_frame_order() {
    let entries = vec![
        PredictRequest {
            session_id: 60_001,
            features: Some(vec![1]),
            measured_mbps: None,
            horizon: 2,
        },
        PredictRequest {
            session_id: 60_001,
            features: None,
            measured_mbps: Some(4.0),
            horizon: 2,
        },
        PredictRequest {
            session_id: 60_002,
            features: Some(vec![0]),
            measured_mbps: None,
            horizon: 1,
        },
        PredictRequest {
            session_id: 60_001,
            features: None,
            measured_mbps: Some(4.5),
            horizon: 2,
        },
        // Re-registration attempt mid-frame: features on an already
        // registered session are ignored, exactly like the singleton
        // endpoint.
        PredictRequest {
            session_id: 60_002,
            features: Some(vec![1]),
            measured_mbps: Some(1.5),
            horizon: 1,
        },
    ];
    let a = server(1);
    let b = server(1);
    let singles = drive_singleton(a.addr(), &entries);
    // The whole script in ONE frame.
    let batched = drive_batched(b.addr(), &entries, entries.len());
    assert_eq!(singles, batched);
    probe_states(a.addr(), b.addr(), 60_001, 2, entries.len());
    let (oa, ob) = (ops(a.addr()), ops(b.addr()));
    assert_eq!(oa.quality, ob.quality);
    a.shutdown();
    b.shutdown();
}
