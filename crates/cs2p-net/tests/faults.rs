//! Forcing tests: one deterministic scenario per fault class, each
//! pinned to the `serve.fault.*` / `client.retry.*` counter it must
//! move and to the recovery behaviour it must trigger — plus the
//! player-facing degradation scenarios (server death/disconnect/restart,
//! malformed responses and manifests) folded in from the former
//! `failure_injection.rs`.
//!
//! This file is its own test binary with a single `#[test]` because the
//! scenarios flip the *global* cs2p-obs registry and diff its counters;
//! concurrent tests in the same process would corrupt the diffs. Each
//! scenario runs against its own server and shuts it down before the
//! next baseline is taken, so late asynchronous counter bumps (e.g. a
//! server thread noticing a reset after the client moved on) land
//! inside the scenario that caused them.

use cs2p_core::ThroughputPredictor;
use cs2p_net::dash::{AbrKind, DashPlayer, Manifest, PlayerConfig};
use cs2p_net::protocol::{PredictRequest, PredictResponse};
use cs2p_net::{
    serve, serve_with, HttpClient, RemotePredictor, RetryPolicy, ServeConfig, ServerHandle,
};
use cs2p_obs::ManualClock;
use cs2p_testkit::faults::{FaultAction, FaultPlan};
use cs2p_testkit::scenarios::tiny_engine;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn counter(name: &str) -> u64 {
    cs2p_obs::Registry::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Sample count of an `observe()`-style stat (e.g. `client.retry.backoff_us`).
fn stat_count(name: &str) -> u64 {
    cs2p_obs::Registry::global()
        .snapshot()
        .histograms
        .get(name)
        .map(|h| h.count)
        .unwrap_or(0)
}

/// Polls (against wall time, but with a generous bound) until `name`
/// reaches at least `target` — for counters bumped by server threads
/// after the client already saw its side of the fault.
fn wait_counter_at_least(name: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(name) < target {
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {} < {target}",
            counter(name)
        );
        std::thread::yield_now();
    }
}

fn server(config: ServeConfig) -> ServerHandle {
    serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap()
}

/// A client that never really sleeps (retry backoff is observed through
/// counters, not wall time) and retries up to 4 times.
fn patient_client(server: &ServerHandle, plan: FaultPlan) -> HttpClient {
    HttpClient::new(server.addr())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            seed: 7,
            ..RetryPolicy::default()
        })
        .with_sleeper(Arc::new(|_| {}))
        .with_transport_wrapper(Arc::new(plan))
}

fn register_request(id: u64) -> cs2p_net::http::Request {
    let preq = PredictRequest {
        session_id: id,
        features: Some(vec![1]),
        measured_mbps: None,
        horizon: 2,
    };
    cs2p_net::http::Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap())
}

fn assert_predictions(resp: &cs2p_net::http::Response) {
    assert_eq!(resp.status, 200, "body: {:?}", resp.body);
    let presp: PredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(presp.predictions_mbps.len(), 2);
}

/// Connection reset mid-response: the client loses the first response
/// after reading part of it, retries once with backoff, and succeeds on
/// a fresh connection.
fn reset_mid_response_recovers_via_client_retry() {
    let server = server(ServeConfig::default());
    let attempts0 = counter("client.retry.attempts");
    let backoffs0 = stat_count("client.retry.backoff_us");

    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterReadBytes(20));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(1)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_read, 1, "fault must actually fire");
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    assert!(
        stat_count("client.retry.backoff_us") > backoffs0,
        "retry must back off"
    );
    assert_eq!(client.consecutive_failures(), 0, "success resets backoff");
    server.shutdown();
}

/// Connection reset mid-request write: the server sees a partial frame
/// (counted as a read error), the client retries and succeeds.
fn reset_mid_request_counts_a_server_read_error() {
    let server = server(ServeConfig {
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    let attempts0 = counter("client.retry.attempts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterWriteBytes(10));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(2)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_write, 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    wait_counter_at_least("serve.fault.read_errors", read_errors0 + 1);
    server.shutdown();
}

/// Frame truncation: bytes silently vanish mid-request while the
/// connection stays open. The server's read timeout (not the 30 s
/// slow-peer budget) reaps it; the client retries and succeeds.
fn truncation_is_reaped_by_read_timeout_and_retried() {
    let server = server(ServeConfig {
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let attempts0 = counter("client.retry.attempts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(0, FaultAction::TruncateWritesAfter(25));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(3)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().truncations, 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    wait_counter_at_least("serve.fault.read_errors", read_errors0 + 1);
    server.shutdown();
}

/// Frame corruption: one flipped byte in the method makes the request
/// line non-UTF-8; the server answers 400 (`serve.fault.bad_frames`),
/// closes, and a clean resend on a fresh connection succeeds.
fn corruption_gets_a_400_bad_frame_then_clean_resend() {
    let server = server(ServeConfig::default());
    let bad_frames0 = counter("serve.fault.bad_frames");

    let plan = FaultPlan::new().fault(0, FaultAction::CorruptWriteByte(1));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(4)).unwrap();
    assert_eq!(
        resp.status, 400,
        "corrupted frame must be rejected, not served"
    );
    assert_eq!(tally.snapshot().corruptions, 1);
    assert_eq!(counter("serve.fault.bad_frames") - bad_frames0, 1);

    client.reset_connection();
    let resp = client.send(&register_request(4)).unwrap();
    assert_predictions(&resp);
    server.shutdown();
}

/// Slow-client byte-dribbling within the budget: the request arrives one
/// byte at a time, and the server serves it normally — no aborts, no
/// errors. Dribbling is a survivable fault.
fn dribbled_request_within_budget_is_served_normally() {
    let server = server(ServeConfig::default());
    let aborts0 = counter("serve.fault.slow_peer_aborts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(
        0,
        FaultAction::DribbleWrites {
            advance_us_per_write: 0,
        },
    );
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(5)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().dribbles, 1);
    assert_eq!(counter("serve.fault.slow_peer_aborts"), aborts0);
    assert_eq!(counter("serve.fault.read_errors"), read_errors0);
    server.shutdown();
}

/// Injected delay past the slow-peer budget: a server-side `DelayReads`
/// fault advances the shared manual clock past the per-request deadline
/// while a raw client dribbles an incomplete request, forcing exactly
/// one `serve.fault.slow_peer_aborts`.
fn delay_past_budget_forces_a_slow_peer_abort() {
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::new()
        .fault(
            0,
            FaultAction::DelayReads {
                advance_us_per_read: 60_000,
            },
        )
        .with_clock(Arc::clone(&clock));
    let tally = plan.tally();
    let server = server(ServeConfig {
        slow_peer_deadline: Some(Duration::from_millis(100)),
        read_timeout: Duration::from_secs(2),
        clock,
        transport_wrapper: Some(Arc::new(plan)),
        ..ServeConfig::default()
    });
    let aborts0 = counter("serve.fault.slow_peer_aborts");

    // Dribble an incomplete request line byte by byte; every server-side
    // read advances the clock 60 ms against a 100 ms budget, so the
    // deadline check must fire within a handful of reads.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let partial = b"POST /predict HTTP/1.1\r\ncontent-";
    let deadline = Instant::now() + Duration::from_secs(5);
    'dribble: for chunk in partial.iter().cycle() {
        if stream.write_all(&[*chunk]).is_err() {
            break 'dribble; // server aborted us — exactly what we want
        }
        if counter("serve.fault.slow_peer_aborts") > aborts0 {
            break 'dribble;
        }
        assert!(Instant::now() < deadline, "slow-peer abort never fired");
        std::thread::sleep(Duration::from_millis(5));
    }
    wait_counter_at_least("serve.fault.slow_peer_aborts", aborts0 + 1);
    assert!(tally.snapshot().delays >= 1, "delay fault must have fired");
    drop(stream);
    server.shutdown();
}

/// The slow-peer deadline is per-request, not an idle timeout: a
/// keep-alive connection may sit idle arbitrarily long (by the injected
/// clock) between requests without being reaped.
fn idle_keepalive_survives_clock_advance_past_budget() {
    let clock = Arc::new(ManualClock::new());
    let server = server(ServeConfig {
        slow_peer_deadline: Some(Duration::from_millis(100)),
        clock: Arc::clone(&clock) as Arc<dyn cs2p_obs::Clock>,
        ..ServeConfig::default()
    });
    let aborts0 = counter("serve.fault.slow_peer_aborts");

    let mut client = HttpClient::new(server.addr());
    assert_predictions(&client.send(&register_request(6)).unwrap());
    // Idle for "hours" of injected time between requests.
    clock.advance(3_600_000_000);
    assert_predictions(&client.send(&register_request(6)).unwrap());
    assert_eq!(counter("serve.fault.slow_peer_aborts"), aborts0);
    server.shutdown();
}

/// Forced store eviction mid-session: the next request hits the
/// "unknown session" path and the client replays registration
/// idempotently, keeping the pending measurement.
fn forced_eviction_replays_registration_with_pending_measurement() {
    let server = server(ServeConfig::default());
    let evictions0 = counter("serve.fault.forced_evictions");
    let reinit0 = counter("predict.client.reinit");

    let mut predictor = RemotePredictor::new(server.addr(), 7, vec![1]);
    assert!(predictor.predict_initial().is_some(), "registration");
    assert!(!server.force_evict(99), "unknown session is not evicted");
    assert!(server.force_evict(7), "live session must evict");
    assert_eq!(counter("serve.fault.forced_evictions") - evictions0, 1);

    // The observation made while evicted must survive the replay.
    predictor.observe(5.0);
    assert!(
        predictor.predict_ahead(1).is_some(),
        "prediction after forced eviction must recover via re-register"
    );
    assert_eq!(counter("predict.client.reinit") - reinit0, 1);
    assert_eq!(server.stats().sessions_live, 1, "session re-registered");
    server.shutdown();
}

/// Forced eviction mid-batch: a `/predict_batch` frame carrying the
/// evicted session's measurement between two healthy neighbours answers
/// 200 at the frame level with a per-entry 404 for the victim only —
/// the blast radius of an eviction is one entry, not the frame. The 404
/// carries the re-register hint, `serve.batch.partial_failures` counts
/// exactly the victim, and a re-registration replay (same measurement,
/// features attached) restores the session through the batch path.
fn forced_eviction_mid_batch_answers_a_per_entry_404() {
    use cs2p_net::protocol::{BatchPredictRequest, BatchPredictResponse};

    let server = server(ServeConfig::default());
    let evictions0 = counter("serve.fault.forced_evictions");
    let partial0 = counter("serve.batch.partial_failures");

    let mut client = HttpClient::new(server.addr());
    for id in [21u64, 22, 23] {
        assert_predictions(&client.send(&register_request(id)).unwrap());
    }
    assert!(server.force_evict(22), "live session must evict");
    assert_eq!(counter("serve.fault.forced_evictions") - evictions0, 1);

    let measure = |id: u64| PredictRequest {
        session_id: id,
        features: None,
        measured_mbps: Some(4.0),
        horizon: 2,
    };
    let breq = BatchPredictRequest {
        entries: vec![measure(21), measure(22), measure(23)],
    };
    let resp = client
        .send(&cs2p_net::http::Request::new(
            "POST",
            "/predict_batch",
            breq.to_json_bytes(),
        ))
        .unwrap();
    assert_eq!(resp.status, 200, "the frame itself must succeed");
    let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(bresp.results.len(), 3);
    for healthy in [0, 2] {
        assert_eq!(
            bresp.results[healthy].status, 200,
            "neighbour entries must be unaffected by the eviction"
        );
        assert!(bresp.results[healthy].response.is_some());
    }
    assert_eq!(bresp.results[1].status, 404, "evicted entry answers 404");
    assert!(bresp.results[1].response.is_none());
    assert!(
        bresp.results[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("re)register"),
        "the per-entry 404 must carry the re-register hint: {:?}",
        bresp.results[1].error
    );
    assert_eq!(
        counter("serve.batch.partial_failures") - partial0,
        1,
        "exactly the victim counts as a partial failure"
    );

    // The replay: re-registration with features, still carrying the
    // measurement that hit the 404 — through the batch path itself.
    let breq = BatchPredictRequest {
        entries: vec![PredictRequest {
            features: Some(vec![1]),
            ..measure(22)
        }],
    };
    let resp = client
        .send(&cs2p_net::http::Request::new(
            "POST",
            "/predict_batch",
            breq.to_json_bytes(),
        ))
        .unwrap();
    assert_eq!(resp.status, 200);
    let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(
        bresp.results[0].status, 200,
        "re-registration replay must work mid-batch"
    );
    assert_eq!(server.stats().sessions_live, 3, "session re-registered");
    server.shutdown();
}

/// Server-side reset mid-response write: the server's own write fails
/// (`serve.fault.write_errors`), and the client's retry on a fresh
/// connection succeeds.
fn server_side_write_reset_is_counted_and_retried() {
    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterWriteBytes(20));
    let tally = plan.tally();
    let server = server(ServeConfig {
        transport_wrapper: Some(Arc::new(plan)),
        ..ServeConfig::default()
    });
    let write_errors0 = counter("serve.fault.write_errors");
    let attempts0 = counter("client.retry.attempts");

    let mut client = HttpClient::new(server.addr())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            seed: 11,
            ..RetryPolicy::default()
        })
        .with_sleeper(Arc::new(|_| {}));
    let resp = client.send(&register_request(8)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_write, 1);
    wait_counter_at_least("serve.fault.write_errors", write_errors0 + 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    server.shutdown();
}

/// A fault on every connection exhausts the retry budget: the client
/// gives up with an error (counted in `client.retry.giveups`) instead of
/// hanging.
fn unrecoverable_faults_exhaust_retries_and_give_up() {
    let server = server(ServeConfig::default());
    let giveups0 = counter("client.retry.giveups");

    let mut plan = FaultPlan::new();
    for conn in 0..8 {
        plan = plan.fault(conn, FaultAction::ResetAfterWriteBytes(5));
    }
    let mut client = patient_client(&server, plan);
    let err = client.send(&register_request(9)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    assert_eq!(counter("client.retry.giveups") - giveups0, 1);
    // back_off() runs before attempts 2..4, so three failures are charged.
    assert_eq!(client.consecutive_failures(), 3, "failures kept, not reset");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Player-facing failure injection (folded in from the former
// `failure_injection.rs`): the DASH player must degrade gracefully —
// never panic, never stall the playback loop — when the prediction
// server misbehaves or the manifest is broken. These scenarios don't
// diff obs counters, but they kill and restart servers, so they run in
// the same single-test binary to keep counter diffs above undisturbed.
// ---------------------------------------------------------------------

/// A predictor whose retry backoff never really sleeps: these scenarios
/// hammer dead servers on purpose, and real exponential backoff would
/// only stretch the wall clock without changing any outcome.
fn sleepless_predictor(addr: std::net::SocketAddr, id: u64, features: Vec<u32>) -> RemotePredictor {
    RemotePredictor::from_client(
        HttpClient::new(addr).with_sleeper(Arc::new(|_| {})),
        id,
        features,
    )
}

fn server_death_mid_session_degrades_but_playback_finishes() {
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut predictor = sleepless_predictor(addr, 1, vec![1]);
    // Warm up: a few successful epochs.
    assert!(predictor.predict_initial().is_some());
    predictor.observe(5.0);
    assert!(predictor.predict_next().is_some());

    // Kill the server mid-session. The open keep-alive connection may
    // drain one final request before closing.
    server.shutdown();
    predictor.observe(5.0);
    let _ = predictor.predict_next();

    // Subsequent predictions fail soft (None), observe never panics.
    predictor.observe(5.0);
    assert_eq!(predictor.predict_next(), None);
    predictor.observe(4.8);
    assert_eq!(predictor.predict_ahead(3), None);

    // The player plays the entire video anyway: MPC falls back to the
    // conservative no-prediction path.
    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );
    let trace = vec![5.0; 120];
    let mut dead = sleepless_predictor(addr, 2, vec![1]);
    let log = player.play(&trace, 6.0, &mut dead, 2, "CS2P+MPC");
    assert_eq!(log.bitrates_kbps.len(), 43);
    assert!(log.qoe.is_finite());
    // Every chunk got the lowest rung — the documented no-information
    // behaviour — rather than crashing or hanging.
    assert!(log.bitrates_kbps.iter().all(|&b| b == 350.0));
}

/// Remote predictor whose server dies *during* playback: after
/// `kill_after` observed epochs it shuts the server down, deterministically
/// injecting the disconnect mid-session from inside the playback loop.
struct DisconnectingPredictor {
    inner: RemotePredictor,
    server: Option<ServerHandle>,
    kill_after: usize,
    observed: usize,
}

impl ThroughputPredictor for DisconnectingPredictor {
    fn name(&self) -> &str {
        "CS2P-disconnecting"
    }

    fn predict_initial(&mut self) -> Option<f64> {
        self.inner.predict_initial()
    }

    fn predict_ahead(&mut self, k: usize) -> Option<f64> {
        self.inner.predict_ahead(k)
    }

    fn observe(&mut self, throughput: f64) {
        self.observed += 1;
        if self.observed == self.kill_after {
            if let Some(server) = self.server.take() {
                server.shutdown();
            }
        }
        self.inner.observe(throughput);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

fn server_disconnect_during_playback_finishes_the_video() {
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );
    let trace = vec![5.0; 120];
    let mut predictor = DisconnectingPredictor {
        inner: sleepless_predictor(addr, 4, vec![1]),
        server: Some(server),
        kill_after: 10,
        observed: 0,
    };
    let log = player.play(&trace, 6.0, &mut predictor, 4, "CS2P+MPC");

    // The server died after 10 chunks but the whole video still played.
    assert!(predictor.server.is_none(), "kill switch must have fired");
    assert_eq!(log.bitrates_kbps.len(), 43);
    assert!(log.qoe.is_finite());
    assert!(log.rebuffer_seconds.is_finite());
    // Early chunks had predictions and climbed the ladder; after the
    // disconnect MPC degrades to its conservative no-prediction path
    // rather than panicking or freezing playback.
    let had_pred = log
        .throughput_pairs
        .iter()
        .filter(|(pred, _)| pred.is_some())
        .count();
    assert!(had_pred > 0, "no predictions served before the kill");
    assert!(
        had_pred < log.throughput_pairs.len(),
        "every chunk kept a prediction — the disconnect never bit"
    );
}

fn server_restart_is_picked_up_by_reconnecting_client() {
    // First server instance.
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut predictor = sleepless_predictor(addr, 9, vec![0]);
    assert!(predictor.predict_initial().is_some());
    let port = addr.port();
    server.shutdown();

    // Dead in between. The previous keep-alive connection may drain one
    // final request before closing; the one after that must fail soft.
    predictor.observe(1.0);
    let _ = predictor.predict_next();
    predictor.observe(1.0);
    assert_eq!(predictor.predict_next(), None);

    // Restart on the same port (may occasionally be taken; skip if so).
    let Ok(server2) = serve(tiny_engine(), &format!("127.0.0.1:{port}")) else {
        return;
    };
    // The keep-alive client reconnects transparently; the session state
    // was lost server-side, so the predictor re-registers via features.
    predictor.reset();
    assert!(predictor.predict_initial().is_some());
    server2.shutdown();
}

fn malformed_server_responses_do_not_panic_client() {
    // A fake "server" that answers garbage to whatever arrives.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut s) = stream else {
                break;
            };
            use std::io::Read;
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\n{not}");
        }
    });

    let mut predictor = RemotePredictor::new(addr, 3, vec![0]);
    // Invalid JSON body -> soft failure, no panic.
    assert_eq!(predictor.predict_initial(), None);
    let _ = handle;
}

fn syntactically_malformed_manifests_are_rejected_not_panicked_on() {
    for garbage in [
        "",
        "{not json",
        "[1,2,3]",
        r#"{"title":"x"}"#,
        r#"{"title":"x","video":{"chunk_seconds":"six"}}"#,
    ] {
        let err = Manifest::from_json(garbage);
        assert!(err.is_err(), "garbage manifest {garbage:?} was accepted");
    }
}

fn semantically_broken_manifests_are_rejected_up_front() {
    let good = Manifest::envivio();
    assert!(good.validate().is_ok());

    let mut empty_ladder = good.clone();
    empty_ladder.video.bitrates_kbps.clear();
    assert!(empty_ladder.validate().is_err());
    assert!(DashPlayer::try_new(empty_ladder, PlayerConfig::default()).is_err());

    let mut zero_chunks = good.clone();
    zero_chunks.video.n_chunks = 0;
    assert!(zero_chunks.validate().is_err());

    let mut descending = good.clone();
    descending.video.bitrates_kbps.reverse();
    assert!(descending.validate().is_err());

    let mut nan_rate = good.clone();
    nan_rate.video.bitrates_kbps[0] = f64::NAN;
    assert!(nan_rate.validate().is_err());

    let mut zero_epoch = good.clone();
    zero_epoch.video.chunk_seconds = 0.0;
    assert!(zero_epoch.validate().is_err());

    let mut no_buffer = good.clone();
    no_buffer.video.buffer_capacity_seconds = -1.0;
    assert!(no_buffer.validate().is_err());

    // A round trip through JSON of a valid manifest still validates.
    let json = serde_json::to_string(&good).unwrap();
    let reparsed = Manifest::from_json(&json).unwrap();
    assert_eq!(reparsed, good);
    assert!(DashPlayer::try_new(
        reparsed,
        PlayerConfig {
            abr: AbrKind::Bb,
            ..Default::default()
        }
    )
    .is_ok());
}

/// Runs one scenario, echoing its wall time (visible with
/// `--nocapture`) so a slow CI run points at the guilty scenario.
fn timed(name: &str, scenario: fn()) {
    let start = Instant::now();
    scenario();
    println!("fault scenario {name}: {:?}", start.elapsed());
}

#[test]
fn every_fault_class_has_a_forcing_scenario() {
    cs2p_obs::set_enabled(true);
    timed(
        "reset_mid_response",
        reset_mid_response_recovers_via_client_retry,
    );
    timed(
        "reset_mid_request",
        reset_mid_request_counts_a_server_read_error,
    );
    timed(
        "truncation",
        truncation_is_reaped_by_read_timeout_and_retried,
    );
    timed(
        "corruption",
        corruption_gets_a_400_bad_frame_then_clean_resend,
    );
    timed("dribble", dribbled_request_within_budget_is_served_normally);
    timed(
        "delay_past_budget",
        delay_past_budget_forces_a_slow_peer_abort,
    );
    timed(
        "idle_keepalive",
        idle_keepalive_survives_clock_advance_past_budget,
    );
    timed(
        "forced_eviction",
        forced_eviction_replays_registration_with_pending_measurement,
    );
    timed(
        "forced_eviction_batch",
        forced_eviction_mid_batch_answers_a_per_entry_404,
    );
    timed(
        "server_write_reset",
        server_side_write_reset_is_counted_and_retried,
    );
    timed(
        "retry_exhaustion",
        unrecoverable_faults_exhaust_retries_and_give_up,
    );
    // Player-facing degradation scenarios (former failure_injection.rs).
    timed(
        "server_death",
        server_death_mid_session_degrades_but_playback_finishes,
    );
    timed(
        "disconnect_mid_playback",
        server_disconnect_during_playback_finishes_the_video,
    );
    timed(
        "server_restart",
        server_restart_is_picked_up_by_reconnecting_client,
    );
    timed(
        "malformed_responses",
        malformed_server_responses_do_not_panic_client,
    );
    timed(
        "malformed_manifests",
        syntactically_malformed_manifests_are_rejected_not_panicked_on,
    );
    timed(
        "broken_manifests",
        semantically_broken_manifests_are_rejected_up_front,
    );
    cs2p_obs::set_enabled(false);
}
