//! Forcing tests: one deterministic scenario per fault class, each
//! pinned to the `serve.fault.*` / `client.retry.*` counter it must
//! move and to the recovery behaviour it must trigger.
//!
//! This file is its own test binary with a single `#[test]` because the
//! scenarios flip the *global* cs2p-obs registry and diff its counters;
//! concurrent tests in the same process would corrupt the diffs. Each
//! scenario runs against its own server and shuts it down before the
//! next baseline is taken, so late asynchronous counter bumps (e.g. a
//! server thread noticing a reset after the client moved on) land
//! inside the scenario that caused them.

use cs2p_net::protocol::{PredictRequest, PredictResponse};
use cs2p_net::{serve_with, HttpClient, RemotePredictor, RetryPolicy, ServeConfig, ServerHandle};
use cs2p_obs::ManualClock;
use cs2p_testkit::faults::{FaultAction, FaultPlan};
use cs2p_testkit::scenarios::tiny_engine;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn counter(name: &str) -> u64 {
    cs2p_obs::Registry::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Sample count of an `observe()`-style stat (e.g. `client.retry.backoff_us`).
fn stat_count(name: &str) -> u64 {
    cs2p_obs::Registry::global()
        .snapshot()
        .histograms
        .get(name)
        .map(|h| h.count)
        .unwrap_or(0)
}

/// Polls (against wall time, but with a generous bound) until `name`
/// reaches at least `target` — for counters bumped by server threads
/// after the client already saw its side of the fault.
fn wait_counter_at_least(name: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(name) < target {
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {} < {target}",
            counter(name)
        );
        std::thread::yield_now();
    }
}

fn server(config: ServeConfig) -> ServerHandle {
    serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap()
}

/// A client that never really sleeps (retry backoff is observed through
/// counters, not wall time) and retries up to 4 times.
fn patient_client(server: &ServerHandle, plan: FaultPlan) -> HttpClient {
    HttpClient::new(server.addr())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            seed: 7,
            ..RetryPolicy::default()
        })
        .with_sleeper(Arc::new(|_| {}))
        .with_transport_wrapper(Arc::new(plan))
}

fn register_request(id: u64) -> cs2p_net::http::Request {
    let preq = PredictRequest {
        session_id: id,
        features: Some(vec![1]),
        measured_mbps: None,
        horizon: 2,
    };
    cs2p_net::http::Request::new("POST", "/predict", serde_json::to_vec(&preq).unwrap())
}

fn assert_predictions(resp: &cs2p_net::http::Response) {
    assert_eq!(resp.status, 200, "body: {:?}", resp.body);
    let presp: PredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(presp.predictions_mbps.len(), 2);
}

/// Connection reset mid-response: the client loses the first response
/// after reading part of it, retries once with backoff, and succeeds on
/// a fresh connection.
fn reset_mid_response_recovers_via_client_retry() {
    let server = server(ServeConfig::default());
    let attempts0 = counter("client.retry.attempts");
    let backoffs0 = stat_count("client.retry.backoff_us");

    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterReadBytes(20));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(1)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_read, 1, "fault must actually fire");
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    assert!(
        stat_count("client.retry.backoff_us") > backoffs0,
        "retry must back off"
    );
    assert_eq!(client.consecutive_failures(), 0, "success resets backoff");
    server.shutdown();
}

/// Connection reset mid-request write: the server sees a partial frame
/// (counted as a read error), the client retries and succeeds.
fn reset_mid_request_counts_a_server_read_error() {
    let server = server(ServeConfig {
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    let attempts0 = counter("client.retry.attempts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterWriteBytes(10));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(2)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_write, 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    wait_counter_at_least("serve.fault.read_errors", read_errors0 + 1);
    server.shutdown();
}

/// Frame truncation: bytes silently vanish mid-request while the
/// connection stays open. The server's read timeout (not the 30 s
/// slow-peer budget) reaps it; the client retries and succeeds.
fn truncation_is_reaped_by_read_timeout_and_retried() {
    let server = server(ServeConfig {
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let attempts0 = counter("client.retry.attempts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(0, FaultAction::TruncateWritesAfter(25));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(3)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().truncations, 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    wait_counter_at_least("serve.fault.read_errors", read_errors0 + 1);
    server.shutdown();
}

/// Frame corruption: one flipped byte in the method makes the request
/// line non-UTF-8; the server answers 400 (`serve.fault.bad_frames`),
/// closes, and a clean resend on a fresh connection succeeds.
fn corruption_gets_a_400_bad_frame_then_clean_resend() {
    let server = server(ServeConfig::default());
    let bad_frames0 = counter("serve.fault.bad_frames");

    let plan = FaultPlan::new().fault(0, FaultAction::CorruptWriteByte(1));
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(4)).unwrap();
    assert_eq!(
        resp.status, 400,
        "corrupted frame must be rejected, not served"
    );
    assert_eq!(tally.snapshot().corruptions, 1);
    assert_eq!(counter("serve.fault.bad_frames") - bad_frames0, 1);

    client.reset_connection();
    let resp = client.send(&register_request(4)).unwrap();
    assert_predictions(&resp);
    server.shutdown();
}

/// Slow-client byte-dribbling within the budget: the request arrives one
/// byte at a time, and the server serves it normally — no aborts, no
/// errors. Dribbling is a survivable fault.
fn dribbled_request_within_budget_is_served_normally() {
    let server = server(ServeConfig::default());
    let aborts0 = counter("serve.fault.slow_peer_aborts");
    let read_errors0 = counter("serve.fault.read_errors");

    let plan = FaultPlan::new().fault(
        0,
        FaultAction::DribbleWrites {
            advance_us_per_write: 0,
        },
    );
    let tally = plan.tally();
    let mut client = patient_client(&server, plan);
    let resp = client.send(&register_request(5)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().dribbles, 1);
    assert_eq!(counter("serve.fault.slow_peer_aborts"), aborts0);
    assert_eq!(counter("serve.fault.read_errors"), read_errors0);
    server.shutdown();
}

/// Injected delay past the slow-peer budget: a server-side `DelayReads`
/// fault advances the shared manual clock past the per-request deadline
/// while a raw client dribbles an incomplete request, forcing exactly
/// one `serve.fault.slow_peer_aborts`.
fn delay_past_budget_forces_a_slow_peer_abort() {
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::new()
        .fault(
            0,
            FaultAction::DelayReads {
                advance_us_per_read: 60_000,
            },
        )
        .with_clock(Arc::clone(&clock));
    let tally = plan.tally();
    let server = server(ServeConfig {
        slow_peer_deadline: Some(Duration::from_millis(100)),
        read_timeout: Duration::from_secs(2),
        clock,
        transport_wrapper: Some(Arc::new(plan)),
        ..ServeConfig::default()
    });
    let aborts0 = counter("serve.fault.slow_peer_aborts");

    // Dribble an incomplete request line byte by byte; every server-side
    // read advances the clock 60 ms against a 100 ms budget, so the
    // deadline check must fire within a handful of reads.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let partial = b"POST /predict HTTP/1.1\r\ncontent-";
    let deadline = Instant::now() + Duration::from_secs(5);
    'dribble: for chunk in partial.iter().cycle() {
        if stream.write_all(&[*chunk]).is_err() {
            break 'dribble; // server aborted us — exactly what we want
        }
        if counter("serve.fault.slow_peer_aborts") > aborts0 {
            break 'dribble;
        }
        assert!(Instant::now() < deadline, "slow-peer abort never fired");
        std::thread::sleep(Duration::from_millis(5));
    }
    wait_counter_at_least("serve.fault.slow_peer_aborts", aborts0 + 1);
    assert!(tally.snapshot().delays >= 1, "delay fault must have fired");
    drop(stream);
    server.shutdown();
}

/// The slow-peer deadline is per-request, not an idle timeout: a
/// keep-alive connection may sit idle arbitrarily long (by the injected
/// clock) between requests without being reaped.
fn idle_keepalive_survives_clock_advance_past_budget() {
    let clock = Arc::new(ManualClock::new());
    let server = server(ServeConfig {
        slow_peer_deadline: Some(Duration::from_millis(100)),
        clock: Arc::clone(&clock) as Arc<dyn cs2p_obs::Clock>,
        ..ServeConfig::default()
    });
    let aborts0 = counter("serve.fault.slow_peer_aborts");

    let mut client = HttpClient::new(server.addr());
    assert_predictions(&client.send(&register_request(6)).unwrap());
    // Idle for "hours" of injected time between requests.
    clock.advance(3_600_000_000);
    assert_predictions(&client.send(&register_request(6)).unwrap());
    assert_eq!(counter("serve.fault.slow_peer_aborts"), aborts0);
    server.shutdown();
}

/// Forced store eviction mid-session: the next request hits the
/// "unknown session" path and the client replays registration
/// idempotently, keeping the pending measurement.
fn forced_eviction_replays_registration_with_pending_measurement() {
    let server = server(ServeConfig::default());
    let evictions0 = counter("serve.fault.forced_evictions");
    let reinit0 = counter("predict.client.reinit");

    let mut predictor = RemotePredictor::new(server.addr(), 7, vec![1]);
    use cs2p_core::ThroughputPredictor;
    assert!(predictor.predict_initial().is_some(), "registration");
    assert!(!server.force_evict(99), "unknown session is not evicted");
    assert!(server.force_evict(7), "live session must evict");
    assert_eq!(counter("serve.fault.forced_evictions") - evictions0, 1);

    // The observation made while evicted must survive the replay.
    predictor.observe(5.0);
    assert!(
        predictor.predict_ahead(1).is_some(),
        "prediction after forced eviction must recover via re-register"
    );
    assert_eq!(counter("predict.client.reinit") - reinit0, 1);
    assert_eq!(server.stats().sessions_live, 1, "session re-registered");
    server.shutdown();
}

/// Forced eviction mid-batch: a `/predict_batch` frame carrying the
/// evicted session's measurement between two healthy neighbours answers
/// 200 at the frame level with a per-entry 404 for the victim only —
/// the blast radius of an eviction is one entry, not the frame. The 404
/// carries the re-register hint, `serve.batch.partial_failures` counts
/// exactly the victim, and a re-registration replay (same measurement,
/// features attached) restores the session through the batch path.
fn forced_eviction_mid_batch_answers_a_per_entry_404() {
    use cs2p_net::protocol::{BatchPredictRequest, BatchPredictResponse};

    let server = server(ServeConfig::default());
    let evictions0 = counter("serve.fault.forced_evictions");
    let partial0 = counter("serve.batch.partial_failures");

    let mut client = HttpClient::new(server.addr());
    for id in [21u64, 22, 23] {
        assert_predictions(&client.send(&register_request(id)).unwrap());
    }
    assert!(server.force_evict(22), "live session must evict");
    assert_eq!(counter("serve.fault.forced_evictions") - evictions0, 1);

    let measure = |id: u64| PredictRequest {
        session_id: id,
        features: None,
        measured_mbps: Some(4.0),
        horizon: 2,
    };
    let breq = BatchPredictRequest {
        entries: vec![measure(21), measure(22), measure(23)],
    };
    let resp = client
        .send(&cs2p_net::http::Request::new(
            "POST",
            "/predict_batch",
            breq.to_json_bytes(),
        ))
        .unwrap();
    assert_eq!(resp.status, 200, "the frame itself must succeed");
    let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(bresp.results.len(), 3);
    for healthy in [0, 2] {
        assert_eq!(
            bresp.results[healthy].status, 200,
            "neighbour entries must be unaffected by the eviction"
        );
        assert!(bresp.results[healthy].response.is_some());
    }
    assert_eq!(bresp.results[1].status, 404, "evicted entry answers 404");
    assert!(bresp.results[1].response.is_none());
    assert!(
        bresp.results[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("re)register"),
        "the per-entry 404 must carry the re-register hint: {:?}",
        bresp.results[1].error
    );
    assert_eq!(
        counter("serve.batch.partial_failures") - partial0,
        1,
        "exactly the victim counts as a partial failure"
    );

    // The replay: re-registration with features, still carrying the
    // measurement that hit the 404 — through the batch path itself.
    let breq = BatchPredictRequest {
        entries: vec![PredictRequest {
            features: Some(vec![1]),
            ..measure(22)
        }],
    };
    let resp = client
        .send(&cs2p_net::http::Request::new(
            "POST",
            "/predict_batch",
            breq.to_json_bytes(),
        ))
        .unwrap();
    assert_eq!(resp.status, 200);
    let bresp: BatchPredictResponse = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(
        bresp.results[0].status, 200,
        "re-registration replay must work mid-batch"
    );
    assert_eq!(server.stats().sessions_live, 3, "session re-registered");
    server.shutdown();
}

/// Server-side reset mid-response write: the server's own write fails
/// (`serve.fault.write_errors`), and the client's retry on a fresh
/// connection succeeds.
fn server_side_write_reset_is_counted_and_retried() {
    let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterWriteBytes(20));
    let tally = plan.tally();
    let server = server(ServeConfig {
        transport_wrapper: Some(Arc::new(plan)),
        ..ServeConfig::default()
    });
    let write_errors0 = counter("serve.fault.write_errors");
    let attempts0 = counter("client.retry.attempts");

    let mut client = HttpClient::new(server.addr())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            seed: 11,
            ..RetryPolicy::default()
        })
        .with_sleeper(Arc::new(|_| {}));
    let resp = client.send(&register_request(8)).unwrap();
    assert_predictions(&resp);

    assert_eq!(tally.snapshot().resets_write, 1);
    wait_counter_at_least("serve.fault.write_errors", write_errors0 + 1);
    assert_eq!(counter("client.retry.attempts") - attempts0, 1);
    server.shutdown();
}

/// A fault on every connection exhausts the retry budget: the client
/// gives up with an error (counted in `client.retry.giveups`) instead of
/// hanging.
fn unrecoverable_faults_exhaust_retries_and_give_up() {
    let server = server(ServeConfig::default());
    let giveups0 = counter("client.retry.giveups");

    let mut plan = FaultPlan::new();
    for conn in 0..8 {
        plan = plan.fault(conn, FaultAction::ResetAfterWriteBytes(5));
    }
    let mut client = patient_client(&server, plan);
    let err = client.send(&register_request(9)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    assert_eq!(counter("client.retry.giveups") - giveups0, 1);
    // back_off() runs before attempts 2..4, so three failures are charged.
    assert_eq!(client.consecutive_failures(), 3, "failures kept, not reset");
    server.shutdown();
}

#[test]
fn every_fault_class_has_a_forcing_scenario() {
    cs2p_obs::set_enabled(true);
    reset_mid_response_recovers_via_client_retry();
    reset_mid_request_counts_a_server_read_error();
    truncation_is_reaped_by_read_timeout_and_retried();
    corruption_gets_a_400_bad_frame_then_clean_resend();
    dribbled_request_within_budget_is_served_normally();
    delay_past_budget_forces_a_slow_peer_abort();
    idle_keepalive_survives_clock_advance_past_budget();
    forced_eviction_replays_registration_with_pending_measurement();
    forced_eviction_mid_batch_answers_a_per_entry_404();
    server_side_write_reset_is_counted_and_retried();
    unrecoverable_faults_exhaust_retries_and_give_up();
    cs2p_obs::set_enabled(false);
}
