//! End-to-end drift story, fully deterministic: a server trained on the
//! tiny two-ISP world serves accurate predictions, the world drifts
//! (ISP0 1.0 → 3.0 Mbps, ISP1 5.0 → 15.0 Mbps), the quality monitor's
//! windowed median APE crosses the threshold and fires
//! `quality.drift.alarm`, the alarm triggers a model refresh from the
//! recorded drifted sessions (`serve.model.swapped`), and sessions
//! registering on the new version score near-zero APE again — the
//! recovery is visible in the same ops snapshot that showed the drift.
//!
//! Every request goes through a trace-seeded [`HttpClient`], so the test
//! also proves the tracing contract: every `serve.request` span the
//! server emits carries the client's `trace_id`.
//!
//! This binary holds exactly one test because it flips the process-global
//! `cs2p-obs` registry (the `serve_soak.rs` convention).

use cs2p_core::ModelVersion;
use cs2p_net::http::Request;
use cs2p_net::protocol::{PredictRequest, PredictResponse, SessionLog};
use cs2p_net::{serve_with, QualityConfig, RefreshConfig, ServeConfig};
use cs2p_obs::{MemorySink, RecordKind, Registry};
use cs2p_testkit::scenarios::{tiny_engine, tiny_train_config};
use std::sync::Arc;
use std::time::Duration;

/// Register+measure one session to completion: epoch 0 carries features,
/// later epochs the measured throughput (scoring the previous prediction
/// in the quality monitor).
fn stream_session(
    client: &mut cs2p_net::HttpClient,
    sid: u64,
    isp: u32,
    mbps: f64,
    epochs: usize,
) -> Vec<PredictResponse> {
    (0..epochs)
        .map(|epoch| {
            let preq = PredictRequest {
                session_id: sid,
                features: (epoch == 0).then(|| vec![isp]),
                measured_mbps: (epoch > 0).then_some(mbps),
                horizon: 1,
            };
            let body = serde_json::to_vec(&preq).unwrap();
            let resp = client
                .send(&Request::new("POST", "/predict", body))
                .unwrap();
            assert_eq!(resp.status, 200, "session {sid} epoch {epoch}");
            serde_json::from_slice(&resp.body).unwrap()
        })
        .collect()
}

/// Complete a session via `/log` so the recorder keeps it for retraining.
fn log_session(client: &mut cs2p_net::HttpClient, sid: u64) {
    let log = SessionLog {
        session_id: sid,
        strategy: "CS2P+MPC".into(),
        qoe: 1.0,
        avg_bitrate_kbps: 1000.0,
        good_ratio: 1.0,
        rebuffer_seconds: 0.0,
        startup_delay_seconds: 0.5,
        throughput_pairs: vec![],
        bitrates_kbps: vec![],
    };
    let resp = client
        .send(&Request::new(
            "POST",
            "/log",
            serde_json::to_vec(&log).unwrap(),
        ))
        .unwrap();
    assert_eq!(resp.status, 204);
}

#[test]
fn drift_alarm_triggers_refresh_and_windowed_ape_recovers() {
    let sink = Arc::new(MemorySink::new());
    Registry::global().add_sink(sink.clone());
    Registry::global().set_enabled(true);

    let config = ServeConfig {
        quality: QualityConfig {
            window: 4,
            threshold_ape: 0.5,
            min_samples: 4,
            cooldown: Duration::ZERO,
            trigger_refresh: true,
        },
        refresh: RefreshConfig {
            train_config: tiny_train_config(),
            // Exactly the number of drifted sessions phase B records, so
            // the refresh the alarm triggers is a no-op until the full
            // drifted world has been observed — deterministic swap point.
            min_sessions: 12,
            ..RefreshConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).expect("server starts");
    let mut client = cs2p_net::HttpClient::new(server.addr()).with_trace_seed(42);

    // ---- Phase A: the trained world. Predictions match measurements,
    // the window's median APE stays ~0, no alarm fires.
    for (sid, isp, mbps) in [(1u64, 0u32, 1.0f64), (2, 1, 5.0)] {
        let preds = stream_session(&mut client, sid, isp, mbps, 5);
        assert!(
            (preds[0].predictions_mbps[0] - mbps).abs() < 0.5,
            "v1 must predict the trained regime, got {:?}",
            preds[0].predictions_mbps
        );
        assert!(preds[0].cluster_hit, "tiny engine clusters both ISPs");
        assert_eq!(preds[0].model_version, 1);
    }
    let calm = server.metrics_snapshot();
    assert_eq!(calm.quality.drift_alarms, 0, "no alarm on accurate serving");
    assert!(calm.quality.matched >= 8);
    assert!(calm.quality.windowed_median_ape < 0.1);

    // ---- Phase B: the world drifts (ISP0 → 3.0, ISP1 → 15.0; APE vs the
    // v1 models is ~0.67 everywhere). Alarms fire as the window fills,
    // but the triggered refreshes no-op until all 12 drifted sessions
    // have completed into the recorder.
    for sid in 100u64..112 {
        let isp = (sid % 2) as u32;
        let mbps = if isp == 0 { 3.0 } else { 15.0 };
        stream_session(&mut client, sid, isp, mbps, 5);
        log_session(&mut client, sid);
    }
    assert_eq!(server.recorded_sessions(), 12);
    assert_eq!(
        server.model_version(),
        ModelVersion(1),
        "refresh must not fire before the recorder holds min_sessions"
    );
    let drifted = server.metrics_snapshot();
    assert!(
        drifted.quality.drift_alarms >= 1,
        "drifted serving must alarm"
    );

    // ---- Phase C, part 1: one more drifted session re-fills the window
    // (cooldown is zero), and this alarm's refresh finally has enough
    // recorded sessions — the server hot-swaps to a model trained on the
    // drifted world.
    let mut swapped = false;
    for epoch in 0..10 {
        let preq = PredictRequest {
            session_id: 500,
            features: (epoch == 0).then(|| vec![1]),
            measured_mbps: (epoch > 0).then_some(15.0),
            horizon: 1,
        };
        let body = serde_json::to_vec(&preq).unwrap();
        let resp = client
            .send(&Request::new("POST", "/predict", body))
            .unwrap();
        assert_eq!(resp.status, 200);
        if server.model_version() == ModelVersion(2) {
            swapped = true;
            break;
        }
    }
    assert!(swapped, "drift alarm must trigger the refresh to v2");

    // ---- Phase C, part 2: a session registering on v2 predicts the
    // drifted regime, so its APE is ~0 and the window recovers below the
    // alarm threshold.
    let preds = stream_session(&mut client, 600, 1, 15.0, 5);
    assert_eq!(preds[0].model_version, 2, "new session pins v2");
    assert!(
        (preds[0].predictions_mbps[0] - 15.0).abs() < 1.0,
        "v2 must predict the drifted regime, got {:?}",
        preds[0].predictions_mbps
    );

    let recovered = server.metrics_snapshot();
    assert_eq!(recovered.model_version, 2);
    assert_eq!(recovered.quality.windowed_samples, 4);
    assert!(
        recovered.quality.windowed_median_ape < 0.5,
        "windowed APE must recover below the threshold after the swap, got {}",
        recovered.quality.windowed_median_ape
    );
    assert_eq!(
        recovered.quality.drift_alarms,
        server.metrics_snapshot().quality.drift_alarms,
        "recovered serving must not alarm"
    );
    let keys: Vec<&str> = recovered
        .quality
        .ape
        .iter()
        .map(|r| r.key.as_str())
        .collect();
    for expected in [
        "v1.cluster.initial",
        "v1.cluster.midstream",
        "v2.cluster.initial",
        "v2.cluster.midstream",
    ] {
        assert!(
            keys.contains(&expected),
            "missing APE key {expected} in {keys:?}"
        );
    }

    server.shutdown();

    // ---- The event record stream tells the same story in order: at
    // least one drift alarm precedes the model swap.
    let records = sink.records();
    let swap_idx = records
        .iter()
        .position(|r| r.name == "serve.model.swapped")
        .expect("swap event recorded");
    let alarm_idxs: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.name == "quality.drift.alarm")
        .map(|(i, _)| i)
        .collect();
    assert!(!alarm_idxs.is_empty(), "alarm events recorded");
    assert!(
        alarm_idxs.iter().any(|&i| i < swap_idx),
        "a drift alarm must precede the swap (alarms {alarm_idxs:?}, swap {swap_idx})"
    );

    // ---- Tracing contract: every `serve.request` span the server
    // emitted carries the trace-seeded client's id.
    let request_spans: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.kind, RecordKind::Span { .. }) && r.name == "serve.request")
        .collect();
    assert!(!request_spans.is_empty(), "serve.request spans recorded");
    for span in &request_spans {
        assert!(
            span.field("trace_id").is_some(),
            "span missing trace_id: {span:?}"
        );
    }

    Registry::global().set_enabled(false);
    Registry::global().clear_sinks();
}
