//! Chaos soak: the full loadgen workload under seeded fault schedules.
//!
//! For every seed (fixed CI matrix, overridable via `CHAOS_SEEDS`, e.g.
//! `CHAOS_SEEDS=5,6,7`), the suite runs a fault-free golden pass and a
//! chaos pass with half the clients behind seeded [`FaultPlan`]s plus
//! forced mid-session store evictions, then checks:
//!
//! - **liveness**: no panics, every request eventually answered, no
//!   give-ups, and shutdown completes within a hard bound (a stuck
//!   worker or poller fails the join timeout);
//! - **fault accounting identity**: every injected fault is either
//!   observed in the recovery telemetry (`client.retry.*`,
//!   `serve.fault.*`) or survived outright — nothing disappears;
//! - **blast-radius isolation**: sessions owned by fault-free clients
//!   produce bit-identical predictions to the golden run.
//!
//! A second pass re-runs the schedule with model hot-swaps firing
//! concurrently (both the explicit-dataset path and the recorder path,
//! so a retrain races the forced evictions that feed it): the same
//! accounting identities must stay exact, shutdown must stay bounded
//! (no refresh/eviction/slow-peer deadlock), and the registry must not
//! leak versions past its retention window.
//!
//! A third pass crashes durable servers mid-load at seeded WAL commit
//! points and recovers them (see `crash_restart_one_seed`): recovery
//! must be a deterministic function of the directory bytes, post-restart
//! sessions must be bit-identical to a never-crashed server, and the
//! WAL's record/commit accounting must stay exact across the restart.
//!
//! Own test binary, single `#[test]`: the identities diff the global
//! cs2p-obs registry, which concurrent tests would corrupt.

use cs2p_net::http::Request;
use cs2p_net::protocol::PredictRequest;
use cs2p_net::{
    serve_with, HttpClient, PersistConfig, RefreshConfig, ServeConfig, ServerHandle, WalFaultHook,
};
use cs2p_testkit::crash::{CrashPlan, TempDir};
use cs2p_testkit::faults::{run_chaos, ChaosConfig};
use cs2p_testkit::loadgen::{run_load, BatchSpec, LoadConfig};
use cs2p_testkit::scenarios::{tiny_dataset, tiny_engine, tiny_train_config};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn counter(name: &str) -> u64 {
    cs2p_obs::Registry::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
            .collect(),
        Err(_) => vec![11, 23, 47, 91],
    }
}

fn chaos_server() -> ServerHandle {
    let config = ServeConfig {
        n_shards: 4,
        n_workers: 3,
        queue_depth: 1024,
        max_sessions: 10_000,
        session_ttl_requests: None,
        // Short enough that a truncated frame is reaped quickly (well
        // under the client's 10 s read timeout), long enough that a
        // healthy keep-alive request never trips it.
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap()
}

/// Shuts the server down on a helper thread and panics if it does not
/// drain within the bound — a stuck worker/poller/acceptor shows up here.
fn shutdown_bounded(server: ServerHandle) -> cs2p_net::ServeStats {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.shutdown());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must complete in bounded time (stuck thread?)")
}

fn soak_one_seed(seed: u64) -> (u64, usize) {
    let config = ChaosConfig {
        load: LoadConfig {
            n_clients: 4,
            n_sessions: 8,
            epochs_per_session: 5,
            horizon: 2,
            seed,
            session_id_base: 1_000,
            ..LoadConfig::default()
        },
        ..ChaosConfig::default()
    };

    // Golden pass: identical workload, no faults, fresh identical server.
    let golden_server = chaos_server();
    let golden = run_load(golden_server.addr(), &config.load);
    assert_eq!(golden.errors, 0, "seed {seed}: golden run must be clean");
    assert_eq!(golden.rejected, 0);
    shutdown_bounded(golden_server);

    let attempts0 = counter("client.retry.attempts");
    let giveups0 = counter("client.retry.giveups");
    let bad_frames0 = counter("serve.fault.bad_frames");
    let read_errors0 = counter("serve.fault.read_errors");
    let evictions0 = counter("serve.fault.forced_evictions");
    let aborts0 = counter("serve.fault.slow_peer_aborts");

    let server = chaos_server();
    let addr = server.addr();
    let report = run_chaos(&server, &config);
    let stats = shutdown_bounded(server);

    let fired = report.fired;
    let d_attempts = counter("client.retry.attempts") - attempts0;
    let d_giveups = counter("client.retry.giveups") - giveups0;
    let d_bad_frames = counter("serve.fault.bad_frames") - bad_frames0;
    let d_read_errors = counter("serve.fault.read_errors") - read_errors0;
    let d_evictions = counter("serve.fault.forced_evictions") - evictions0;

    // Liveness: everything was eventually answered, nothing gave up,
    // nothing was shed (the queue is sized for the workload).
    assert_eq!(report.gave_up, 0, "seed {seed}: requests abandoned");
    assert_eq!(d_giveups, 0, "seed {seed}: client send() gave up");
    assert_eq!(report.load.errors, 0, "seed {seed}");
    assert_eq!(report.load.rejected, 0, "seed {seed}");
    assert_eq!(stats.rejected, 0, "seed {seed}");
    for s in 0..config.load.n_sessions as u64 {
        let id = config.load.session_id_base + s;
        let preds = report.load.predictions.get(&id).map_or(0, Vec::len);
        assert_eq!(
            preds, config.load.epochs_per_session,
            "seed {seed}: session {id} lost predictions"
        );
    }
    // Request conservation: every sent request is accounted to exactly
    // one outcome.
    assert_eq!(
        report.load.sent,
        report.load.ok + report.load.reinit + report.load.rejected + report.error_statuses,
        "seed {seed}: request ledger out of balance"
    );

    // Fault accounting identity — injected == observed + survived:
    // every transport-failure fault surfaces as exactly one client
    // retry, every corruption as exactly one 400 bad frame, every
    // forced eviction as exactly one re-registration; dribbles (and
    // in-budget delays) are survived with no error at all.
    assert_eq!(
        d_attempts,
        fired.transport_failures(),
        "seed {seed}: retries vs injected transport faults"
    );
    assert_eq!(
        d_bad_frames, fired.corruptions,
        "seed {seed}: bad frames vs injected corruptions"
    );
    assert_eq!(
        report.error_statuses, fired.corruptions,
        "seed {seed}: client-visible error statuses vs corruptions"
    );
    // Resets mid-request and truncations are each reaped as exactly one
    // server read error; a reset mid-response *may* additionally surface
    // server-side (close-with-unread-data RST timing), so the total is
    // bounded, not exact.
    assert!(
        d_read_errors >= fired.resets_write + fired.truncations
            && d_read_errors <= fired.transport_failures(),
        "seed {seed}: read errors {d_read_errors} outside [{}, {}]",
        fired.resets_write + fired.truncations,
        fired.transport_failures()
    );
    assert_eq!(d_evictions, report.forced_evictions, "seed {seed}");
    assert_eq!(
        report.load.reinit, report.forced_evictions,
        "seed {seed}: every forced eviction re-registers exactly once"
    );
    assert_eq!(
        stats.sessions_evicted, report.forced_evictions,
        "seed {seed}: only forced evictions may evict (no TTL, huge cap)"
    );
    assert_eq!(
        counter("serve.fault.slow_peer_aborts"),
        aborts0,
        "seed {seed}: no slow-peer aborts without injected delay"
    );

    // Admission-ladder accounting: the ladder is disabled (default
    // config), so every 200 is booked as a Full-level serve, nothing
    // degrades, and the level never moves — exactly.
    assert_eq!(
        stats.admission.served_full
            + stats.admission.served_degraded
            + stats.admission.served_fallback,
        stats.predictions_served,
        "seed {seed}: ladder serve ledger out of balance"
    );
    assert_eq!(stats.admission.served_degraded, 0, "seed {seed}");
    assert_eq!(stats.admission.served_fallback, 0, "seed {seed}");
    assert_eq!(stats.admission.shed, 0, "seed {seed}");
    assert_eq!(stats.admission.transitions, 0, "seed {seed}");

    // Blast-radius isolation: fault-free clients' sessions are
    // bit-identical to the golden run.
    for &id in &report.clean_sessions {
        assert_eq!(
            report.load.predictions.get(&id),
            golden.predictions.get(&id),
            "seed {seed}: clean session {id} diverged from fault-free run"
        );
    }

    // The listener is really gone: a fresh connect is refused.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "seed {seed}: port still accepting after shutdown"
    );

    (
        fired.error_class_total() + fired.survivable_total(),
        report.clean_sessions.len(),
    )
}

/// The chaos schedule driven through `/predict_batch`: every client
/// chunks its request stream into seeded ragged frames (1..=7 entries)
/// and the fault schedules now fire *mid-batch* — a reset can kill a
/// frame carrying seven sessions' requests, a corruption 400s the whole
/// frame, and a forced eviction surfaces as a per-entry 404 inside an
/// otherwise-healthy frame. The golden baseline stays the *singleton*
/// fault-free run: clean sessions must be bit-identical across the
/// framing change AND the fault schedule simultaneously.
///
/// The batched ledger differs from the singleton one: a frame-level
/// 503/400 books one `rejected`/`error_statuses` without a `sent`
/// (nothing was applied), while per-entry 404s replay as singletons
/// that book their own sends. What stays exact: every logical entry
/// yields exactly one `ok`, every corruption exactly one client-visible
/// error status, every forced eviction exactly one re-registration.
fn batched_soak_one_seed(seed: u64) -> (u64, u64) {
    let config = ChaosConfig {
        load: LoadConfig {
            n_clients: 4,
            n_sessions: 8,
            epochs_per_session: 5,
            horizon: 2,
            seed,
            session_id_base: 1_000,
            batch: Some(BatchSpec {
                min_entries: 1,
                max_entries: 7,
            }),
            ..LoadConfig::default()
        },
        ..ChaosConfig::default()
    };

    // Golden pass: the same workload as sequential singleton requests,
    // no faults — the strongest baseline the batched chaos pass can be
    // held to.
    let golden_config = LoadConfig {
        batch: None,
        ..config.load.clone()
    };
    let golden_server = chaos_server();
    let golden = run_load(golden_server.addr(), &golden_config);
    assert_eq!(golden.errors, 0, "seed {seed}: golden run must be clean");
    assert_eq!(golden.rejected, 0);
    shutdown_bounded(golden_server);

    let attempts0 = counter("client.retry.attempts");
    let giveups0 = counter("client.retry.giveups");
    let bad_frames0 = counter("serve.fault.bad_frames");
    let read_errors0 = counter("serve.fault.read_errors");
    let evictions0 = counter("serve.fault.forced_evictions");
    let batch_requests0 = counter("serve.batch.requests");
    let batch_entries0 = counter("serve.batch.entries");
    let partial_failures0 = counter("serve.batch.partial_failures");

    let server = chaos_server();
    let addr = server.addr();
    let report = run_chaos(&server, &config);
    let stats = shutdown_bounded(server);

    let fired = report.fired;
    let d_attempts = counter("client.retry.attempts") - attempts0;
    let d_giveups = counter("client.retry.giveups") - giveups0;
    let d_bad_frames = counter("serve.fault.bad_frames") - bad_frames0;
    let d_read_errors = counter("serve.fault.read_errors") - read_errors0;
    let d_evictions = counter("serve.fault.forced_evictions") - evictions0;
    let d_batch_requests = counter("serve.batch.requests") - batch_requests0;
    let d_batch_entries = counter("serve.batch.entries") - batch_entries0;
    let d_partial_failures = counter("serve.batch.partial_failures") - partial_failures0;

    // Liveness: every frame was eventually answered, nothing abandoned.
    assert_eq!(report.gave_up, 0, "seed {seed}: batch frames abandoned");
    assert_eq!(d_giveups, 0, "seed {seed}: client send() gave up");
    assert_eq!(report.load.errors, 0, "seed {seed}");
    assert_eq!(report.load.rejected, 0, "seed {seed}");
    assert_eq!(stats.rejected, 0, "seed {seed}");
    for s in 0..config.load.n_sessions as u64 {
        let id = config.load.session_id_base + s;
        let preds = report.load.predictions.get(&id).map_or(0, Vec::len);
        assert_eq!(
            preds, config.load.epochs_per_session,
            "seed {seed}: session {id} lost predictions in batched chaos"
        );
    }
    // Entry conservation: every logical entry produced exactly one
    // success, whether in-frame or via a per-entry-404 singleton replay.
    let total_entries = (config.load.n_sessions * config.load.epochs_per_session) as u64;
    assert_eq!(
        report.load.ok, total_entries,
        "seed {seed}: entry ledger out of balance"
    );
    // Replays only ever *add* sends on top of the framed entries.
    assert!(
        report.load.sent >= report.load.ok + report.load.reinit,
        "seed {seed}: sent {} < ok {} + reinit {}",
        report.load.sent,
        report.load.ok,
        report.load.reinit
    );
    // The server really was driven through the batch path, and its
    // entry meter matches frame arithmetic: applied frames account all
    // entries that ever got a 200 (duplicates from reset-mid-response
    // resends can only add).
    assert!(
        d_batch_requests > 0,
        "seed {seed}: batched soak never hit /predict_batch"
    );
    assert!(
        d_batch_entries >= total_entries,
        "seed {seed}: server batch entries {d_batch_entries} < {total_entries}"
    );

    // Fault accounting identity, unchanged by framing: every transport
    // fault is exactly one retry, every corruption exactly one 400
    // (whole-frame, never applied), every forced eviction exactly one
    // re-registration — a mid-frame eviction answers a per-entry 404
    // and the harness re-registers once no matter how many of that
    // session's entries shared the frame.
    assert_eq!(
        d_attempts,
        fired.transport_failures(),
        "seed {seed}: retries vs injected transport faults"
    );
    assert_eq!(
        d_bad_frames, fired.corruptions,
        "seed {seed}: bad frames vs injected corruptions"
    );
    assert_eq!(
        report.error_statuses, fired.corruptions,
        "seed {seed}: client-visible error statuses vs corruptions"
    );
    assert!(
        d_read_errors >= fired.resets_write + fired.truncations
            && d_read_errors <= fired.transport_failures(),
        "seed {seed}: read errors {d_read_errors} outside [{}, {}]",
        fired.resets_write + fired.truncations,
        fired.transport_failures()
    );
    assert_eq!(d_evictions, report.forced_evictions, "seed {seed}");
    assert_eq!(
        report.load.reinit, report.forced_evictions,
        "seed {seed}: every forced eviction re-registers exactly once"
    );
    assert_eq!(
        stats.sessions_evicted, report.forced_evictions,
        "seed {seed}: only forced evictions may evict (no TTL, huge cap)"
    );
    // Every mid-frame eviction shows up as a partially-failed frame
    // (a 404 entry inside a 200 frame). Corrupted frames are refused
    // whole, so they never count here.
    assert!(
        d_partial_failures >= report.forced_evictions,
        "seed {seed}: partial failures {d_partial_failures} < evictions {}",
        report.forced_evictions
    );

    // Blast-radius isolation across the framing change: fault-free
    // clients' batched sessions are bit-identical to the *singleton*
    // golden run.
    for &id in &report.clean_sessions {
        assert_eq!(
            report.load.predictions.get(&id),
            golden.predictions.get(&id),
            "seed {seed}: clean batched session {id} diverged from singleton golden"
        );
    }

    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "seed {seed}: port still accepting after shutdown"
    );

    (
        fired.error_class_total() + fired.survivable_total(),
        report.forced_evictions,
    )
}

/// Same shards/workers/timeouts as [`chaos_server`], plus an active
/// refresh configuration: tiny training knobs, a 2-version retention
/// window, and a recorder that accepts a refresh from the very first
/// completed session (so the recorder retrain path actually runs).
fn refresh_chaos_server() -> ServerHandle {
    let config = ServeConfig {
        n_shards: 4,
        n_workers: 3,
        queue_depth: 1024,
        max_sessions: 10_000,
        session_ttl_requests: None,
        read_timeout: Duration::from_millis(150),
        refresh: RefreshConfig {
            train_config: tiny_train_config(),
            retain: 2,
            min_sessions: 1,
            ..Default::default()
        },
        ..ServeConfig::default()
    };
    serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap()
}

/// The chaos schedule with hot-swaps racing it: a swapper thread
/// alternates explicit-dataset refreshes with recorder refreshes (the
/// latter retrains from sessions the concurrent forced evictions just
/// completed) while the full fault schedule runs. Blast-radius
/// bit-identity is not asserted here — sessions registering after a swap
/// legitimately see a different model; `refresh_soak.rs` proves pinning
/// bit-identity deterministically. Everything else must hold unchanged.
/// Returns the number of swaps published.
fn refresh_chaos_one_seed(seed: u64) -> u64 {
    let config = ChaosConfig {
        load: LoadConfig {
            n_clients: 4,
            n_sessions: 8,
            epochs_per_session: 5,
            horizon: 2,
            seed,
            session_id_base: 1_000,
            ..LoadConfig::default()
        },
        ..ChaosConfig::default()
    };

    let attempts0 = counter("client.retry.attempts");
    let giveups0 = counter("client.retry.giveups");
    let bad_frames0 = counter("serve.fault.bad_frames");
    let read_errors0 = counter("serve.fault.read_errors");
    let evictions0 = counter("serve.fault.forced_evictions");
    let aborts0 = counter("serve.fault.slow_peer_aborts");
    let swaps0 = counter("serve.model.swaps");

    let server = refresh_chaos_server();
    let addr = server.addr();
    let done = AtomicBool::new(false);
    let (report, swaps) = std::thread::scope(|scope| {
        let server_ref = &server;
        let done_ref = &done;
        let swapper = scope.spawn(move || {
            let mut swaps = 0u64;
            let mut round = 0u64;
            while !done_ref.load(Ordering::Relaxed) {
                let published = if round.is_multiple_of(2) {
                    // Operator push: always trains.
                    let shift = 0.5 * (round % 4) as f64;
                    server_ref
                        .refresh_models_with(&tiny_dataset(shift))
                        .is_some()
                } else {
                    // Recorder path: races the forced evictions feeding
                    // it; a no-op until the first session completes.
                    server_ref.refresh_models().is_some()
                };
                if published {
                    swaps += 1;
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            swaps
        });
        let report = run_chaos(&server, &config);
        done.store(true, Ordering::Relaxed);
        (report, swapper.join().expect("swapper panicked"))
    });

    // Version retention under churn: at most `retain` versions (nothing
    // pins past the window — session pins are Arcs, not registry pins).
    let versions = server.model_versions();
    assert!(
        versions.len() <= 2,
        "seed {seed}: swaps under chaos leaked versions: {versions:?}"
    );

    let stats = shutdown_bounded(server);

    let fired = report.fired;
    let d_attempts = counter("client.retry.attempts") - attempts0;
    let d_giveups = counter("client.retry.giveups") - giveups0;
    let d_bad_frames = counter("serve.fault.bad_frames") - bad_frames0;
    let d_read_errors = counter("serve.fault.read_errors") - read_errors0;
    let d_evictions = counter("serve.fault.forced_evictions") - evictions0;
    let d_swaps = counter("serve.model.swaps") - swaps0;

    // Liveness with swaps in the mix: nothing abandoned, nothing shed.
    assert_eq!(report.gave_up, 0, "seed {seed}: requests abandoned");
    assert_eq!(d_giveups, 0, "seed {seed}: client send() gave up");
    assert_eq!(report.load.errors, 0, "seed {seed}");
    assert_eq!(report.load.rejected, 0, "seed {seed}");
    assert_eq!(stats.rejected, 0, "seed {seed}");
    for s in 0..config.load.n_sessions as u64 {
        let id = config.load.session_id_base + s;
        let preds = report.load.predictions.get(&id).map_or(0, Vec::len);
        assert_eq!(
            preds, config.load.epochs_per_session,
            "seed {seed}: session {id} lost predictions under swaps"
        );
    }
    assert_eq!(
        report.load.sent,
        report.load.ok + report.load.reinit + report.load.rejected + report.error_statuses,
        "seed {seed}: request ledger out of balance under swaps"
    );

    // The fault accounting identities are swap-independent: a refresh
    // must neither absorb nor duplicate any fault observation.
    assert_eq!(d_attempts, fired.transport_failures(), "seed {seed}");
    assert_eq!(d_bad_frames, fired.corruptions, "seed {seed}");
    assert_eq!(report.error_statuses, fired.corruptions, "seed {seed}");
    assert!(
        d_read_errors >= fired.resets_write + fired.truncations
            && d_read_errors <= fired.transport_failures(),
        "seed {seed}: read errors {d_read_errors} outside [{}, {}]",
        fired.resets_write + fired.truncations,
        fired.transport_failures()
    );
    assert_eq!(d_evictions, report.forced_evictions, "seed {seed}");
    assert_eq!(report.load.reinit, report.forced_evictions, "seed {seed}");
    assert_eq!(
        stats.sessions_evicted, report.forced_evictions,
        "seed {seed}: only forced evictions may evict (no TTL, huge cap)"
    );
    assert_eq!(
        counter("serve.fault.slow_peer_aborts"),
        aborts0,
        "seed {seed}"
    );

    // Swap accounting: every publish bumped the counter and the version
    // exactly once (versions are dense), and the recorder only ever held
    // sessions the evictions completed.
    assert_eq!(d_swaps, swaps, "seed {seed}: swap counter vs publishes");
    assert_eq!(
        stats.model_version,
        1 + swaps,
        "seed {seed}: versions must be dense in publishes"
    );
    assert!(
        (stats.recorded_sessions as u64) <= report.forced_evictions,
        "seed {seed}: recorder invented sessions"
    );

    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "seed {seed}: port still accepting after shutdown"
    );

    swaps
}

/// Same shards/workers as [`chaos_server`], but durable: opened over a
/// persistence directory with per-record group commit and a compaction
/// cadence short enough that several WAL rotations race the workload.
fn durable_chaos_server(dir: &Path, hook: Option<Arc<CrashPlan>>) -> ServerHandle {
    let config = ServeConfig {
        n_shards: 4,
        n_workers: 3,
        queue_depth: 1024,
        max_sessions: 10_000,
        session_ttl_requests: None,
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let persist = PersistConfig {
        commit_every_records: 1,
        snapshot_every_records: 16,
        fsync_data: false,
        fault_hook: hook.map(|h| h as Arc<dyn WalFaultHook>),
        ..PersistConfig::default()
    };
    ServerHandle::open_or_recover(dir, tiny_engine(), "127.0.0.1:0", config, persist).unwrap()
}

/// Recursively copies a persistence directory (WAL segments, snapshot,
/// model bundles) — taken *after* shutdown, so the bytes are quiescent.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// One identical probe request per session id, answered as raw
/// `(status, body bytes)` — 404s included, since which sessions survived
/// the crash is part of the recovered state being compared.
fn probe_sessions(server: &ServerHandle, ids: impl Iterator<Item = u64>) -> Vec<(u16, Vec<u8>)> {
    let mut client = HttpClient::new(server.addr());
    ids.map(|id| {
        let preq = PredictRequest {
            session_id: id,
            features: None,
            measured_mbps: Some(2.5),
            horizon: 2,
        };
        let resp = client
            .send(&Request::new(
                "POST",
                "/predict",
                serde_json::to_vec(&preq).unwrap(),
            ))
            .unwrap();
        (resp.status, resp.body.to_vec())
    })
    .collect()
}

/// Crash-restart differential: the full multi-client loadgen workload
/// runs against a durable server whose WAL is killed (or torn) at a
/// seeded commit point mid-load — with group commits and compactions
/// racing four client threads, the crash lands at an arbitrary,
/// schedule-dependent place. What must still hold exactly:
///
/// - **liveness through the crash**: the process model keeps serving
///   from memory after its disk dies — the workload finishes cleanly;
/// - **recovery determinism**: two recoveries of the same directory
///   bytes are response-byte-identical on every session (replay is a
///   function of the log, not of timing);
/// - **post-restart blast radius**: sessions born after the restart are
///   bit-identical to the same workload on a never-crashed server;
/// - **persistence accounting across the restart**: on the recovered
///   server every successful post-restart request appends exactly one
///   WAL record, every record is group-committed (commit-per-record
///   config), and the WAL stays alive.
fn crash_restart_one_seed(seed: u64) -> u64 {
    let phase1 = LoadConfig {
        n_clients: 4,
        n_sessions: 8,
        epochs_per_session: 5,
        horizon: 2,
        seed,
        session_id_base: 1_000,
        ..LoadConfig::default()
    };

    // Phase 1: crash mid-load. ~40 predict records land across the run;
    // the plan kills (or tears) one of the first 30 commits.
    let dir = TempDir::new("soak-crash");
    let plan = CrashPlan::seeded(seed, 30);
    let server = durable_chaos_server(dir.path(), Some(Arc::clone(&plan)));
    let report = run_load(server.addr(), &phase1);
    assert_eq!(
        report.errors, 0,
        "seed {seed}: crash must not drop requests"
    );
    assert_eq!(report.rejected, 0, "seed {seed}");
    assert!(plan.killed(), "seed {seed}: the seeded crash never fired");
    let crashed_stats = server.persist_stats().expect("durable server");
    assert!(
        crashed_stats.dead,
        "seed {seed}: WAL must be dead post-crash"
    );
    shutdown_bounded(server);

    // Recovery determinism: recover the directory twice (one from a
    // byte-for-byte copy) and compare every session's probe exactly.
    let dir_copy = TempDir::new("soak-crash-copy");
    copy_dir(dir.path(), dir_copy.path());
    let recovered = durable_chaos_server(dir.path(), None);
    let twin = durable_chaos_server(dir_copy.path(), None);
    let ids = || (0..phase1.n_sessions as u64).map(|s| phase1.session_id_base + s);
    let got = probe_sessions(&recovered, ids());
    let twin_got = probe_sessions(&twin, ids());
    assert_eq!(
        got, twin_got,
        "seed {seed}: two recoveries of the same bytes diverged"
    );
    let survivors = got.iter().filter(|(status, _)| *status == 200).count() as u64;
    shutdown_bounded(twin);

    // Phase 2 on the recovered server: a fresh cohort of sessions, with
    // a golden in-memory server as the never-crashed baseline.
    let phase2 = LoadConfig {
        session_id_base: 2_000,
        seed: seed ^ 0x0051_EED2,
        ..phase1.clone()
    };
    let stats_before = recovered.persist_stats().expect("durable server");
    assert!(
        !stats_before.dead,
        "seed {seed}: recovered WAL must be live"
    );
    let golden_server = chaos_server();
    let golden = run_load(golden_server.addr(), &phase2);
    shutdown_bounded(golden_server);
    let phase2_report = run_load(recovered.addr(), &phase2);
    assert_eq!(phase2_report.errors, 0, "seed {seed}");
    assert_eq!(phase2_report.rejected, 0, "seed {seed}");
    assert_eq!(
        phase2_report.reinit, 0,
        "seed {seed}: fresh cohort must never re-register"
    );
    for s in 0..phase2.n_sessions as u64 {
        let id = phase2.session_id_base + s;
        assert_eq!(
            phase2_report.predictions.get(&id),
            golden.predictions.get(&id),
            "seed {seed}: post-restart session {id} diverged from never-crashed golden"
        );
    }

    // Persistence accounting: exactly one WAL record per successful
    // post-restart request (no evictions: huge cap, no TTL), all of
    // them committed record-by-record, WAL still alive.
    let stats_after = recovered.persist_stats().expect("durable server");
    let d_records = stats_after.records - stats_before.records;
    let d_commits = stats_after.commits - stats_before.commits;
    assert_eq!(
        d_records, phase2_report.ok,
        "seed {seed}: WAL records vs successful requests"
    );
    assert_eq!(
        d_commits, d_records,
        "seed {seed}: commit-per-record config must commit every record"
    );
    assert!(!stats_after.dead, "seed {seed}: WAL died without a fault");
    shutdown_bounded(recovered);
    survivors
}

/// Degradation-ladder accounting under the full multi-client workload:
/// one fresh cohort of sessions per forced ladder level, then recovery.
/// What must hold *exactly*, three ways at once (load report ↔ handle
/// snapshot ↔ telemetry registry):
///
/// - every 200 is booked at exactly one ladder level, and the three
///   level counters sum to `predictions_served`;
/// - Degraded and Fallback answers all carry their provenance mark;
/// - at Fallback, exactly the no-history registrations miss (one 503
///   per session, booked as a fallback miss, not a shed);
/// - at Shed, every request is refused and the server neither panics
///   nor stops answering the next cohort after recovery;
/// - the transition counter counts exactly the four forced level
///   changes (Full→Degraded→Fallback→Shed→Full).
fn ladder_accounting_one_seed(seed: u64) -> (u64, u64) {
    use cs2p_net::AdmissionLevel;
    let base = LoadConfig {
        n_clients: 4,
        n_sessions: 8,
        epochs_per_session: 5,
        horizon: 2,
        seed,
        session_id_base: 1_000,
        ..LoadConfig::default()
    };
    let cohort = |base_id: u64| LoadConfig {
        session_id_base: base_id,
        ..base.clone()
    };
    let full0 = counter("serve.admission.full");
    let degraded0 = counter("serve.admission.degraded");
    let fallback0 = counter("serve.admission.fallback");
    let shed0 = counter("serve.admission.shed");
    let misses0 = counter("serve.admission.fallback_misses");
    let transitions0 = counter("serve.admission.transitions");

    let server = chaos_server();
    let full_run = run_load(server.addr(), &base);
    assert_eq!(full_run.ok, full_run.sent, "seed {seed}");
    assert_eq!(full_run.degraded + full_run.fallback, 0, "seed {seed}");

    server.force_admission_level(Some(AdmissionLevel::Degraded));
    let degraded_run = run_load(server.addr(), &cohort(2_000));
    assert_eq!(degraded_run.ok, degraded_run.sent, "seed {seed}");
    assert_eq!(
        degraded_run.degraded, degraded_run.ok,
        "seed {seed}: every Degraded answer must carry provenance"
    );

    server.force_admission_level(Some(AdmissionLevel::Fallback));
    let fallback_run = run_load(server.addr(), &cohort(3_000));
    assert_eq!(
        fallback_run.rejected, base.n_sessions as u64,
        "seed {seed}: exactly the no-history registrations miss"
    );
    assert_eq!(
        fallback_run.ok,
        (base.n_sessions * (base.epochs_per_session - 1)) as u64,
        "seed {seed}: every measurement-carrying epoch answers"
    );
    assert_eq!(fallback_run.fallback, fallback_run.ok, "seed {seed}");

    server.force_admission_level(Some(AdmissionLevel::Shed));
    let shed_run = run_load(server.addr(), &cohort(4_000));
    assert_eq!(shed_run.ok, 0, "seed {seed}");
    assert_eq!(shed_run.rejected, shed_run.sent, "seed {seed}");

    server.force_admission_level(None);
    assert_eq!(
        server.admission_level(),
        AdmissionLevel::Full,
        "seed {seed}"
    );
    let recovered_run = run_load(server.addr(), &cohort(5_000));
    assert_eq!(recovered_run.ok, recovered_run.sent, "seed {seed}");
    assert_eq!(
        recovered_run.degraded + recovered_run.fallback,
        0,
        "seed {seed}: recovery serves the full path again"
    );

    let stats = shutdown_bounded(server);
    let snap = stats.admission;
    assert_eq!(
        snap.served_full + snap.served_degraded + snap.served_fallback,
        stats.predictions_served,
        "seed {seed}: ladder serve ledger out of balance"
    );
    assert_eq!(
        snap.served_full,
        full_run.ok + recovered_run.ok,
        "seed {seed}"
    );
    assert_eq!(snap.served_degraded, degraded_run.ok, "seed {seed}");
    assert_eq!(snap.served_fallback, fallback_run.ok, "seed {seed}");
    assert_eq!(snap.shed, shed_run.rejected, "seed {seed}");
    assert_eq!(snap.fallback_misses, fallback_run.rejected, "seed {seed}");
    assert_eq!(snap.transitions, 4, "seed {seed}");
    // The telemetry registry agrees with the handle snapshot exactly.
    assert_eq!(
        counter("serve.admission.full") - full0,
        snap.served_full,
        "seed {seed}"
    );
    assert_eq!(
        counter("serve.admission.degraded") - degraded0,
        snap.served_degraded,
        "seed {seed}"
    );
    assert_eq!(
        counter("serve.admission.fallback") - fallback0,
        snap.served_fallback,
        "seed {seed}"
    );
    assert_eq!(
        counter("serve.admission.shed") - shed0,
        snap.shed,
        "seed {seed}"
    );
    assert_eq!(
        counter("serve.admission.fallback_misses") - misses0,
        snap.fallback_misses,
        "seed {seed}"
    );
    assert_eq!(
        counter("serve.admission.transitions") - transitions0,
        snap.transitions,
        "seed {seed}"
    );
    (snap.served_degraded + snap.served_fallback, snap.shed)
}

#[test]
fn seeded_chaos_schedules_are_survived_with_exact_accounting() {
    cs2p_obs::set_enabled(true);
    let mut total_fired = 0;
    let mut total_clean = 0;
    for seed in seeds() {
        let (fired, clean) = soak_one_seed(seed);
        total_fired += fired;
        total_clean += clean;
    }
    // The suite must not be vacuous: across the seed matrix, faults
    // actually fired and clean sessions were actually compared.
    assert!(
        total_fired > 0,
        "no fault ever fired across the seed matrix"
    );
    assert!(total_clean > 0, "no clean session was ever compared");

    // Batched-framing pass (a subset of the matrix): the same fault
    // schedules fire mid-batch, and clean sessions must still be
    // bit-identical to the singleton fault-free golden run.
    let mut batched_fired = 0;
    let mut batched_evictions = 0;
    for seed in seeds().into_iter().take(2) {
        let (fired, evictions) = batched_soak_one_seed(seed);
        batched_fired += fired;
        batched_evictions += evictions;
    }
    assert!(batched_fired > 0, "no fault ever fired mid-batch");
    assert!(
        batched_evictions > 0,
        "no forced eviction ever hit a batch frame"
    );

    // Refresh-under-chaos pass (a subset of the matrix — each pass costs
    // a full chaos run): hot-swaps racing the same fault schedules.
    let mut total_swaps = 0;
    for seed in seeds().into_iter().take(2) {
        total_swaps += refresh_chaos_one_seed(seed);
    }
    assert!(total_swaps > 0, "no swap ever published under chaos");

    // Crash-restart differential pass: durable servers killed mid-load
    // at seeded WAL commit points, recovered, and held to determinism,
    // blast-radius, and persistence-accounting identities.
    let mut total_survivors = 0;
    for seed in seeds().into_iter().take(2) {
        total_survivors += crash_restart_one_seed(seed);
    }
    assert!(
        total_survivors > 0,
        "no session ever survived a crash across the seed matrix"
    );

    // Degradation-ladder accounting pass: forced ladder levels under
    // the full workload, with exact level accounting across the load
    // report, the handle snapshot, and the telemetry registry.
    let mut ladder_degraded = 0;
    let mut ladder_shed = 0;
    for seed in seeds().into_iter().take(2) {
        let (non_full, shed) = ladder_accounting_one_seed(seed);
        ladder_degraded += non_full;
        ladder_shed += shed;
    }
    assert!(
        ladder_degraded > 0,
        "no degraded/fallback answer was ever served"
    );
    assert!(ladder_shed > 0, "no request was ever shed");
    cs2p_obs::set_enabled(false);
}
