//! Soak/churn test: hundreds of short-lived sessions against a server
//! with a tight session-capacity bound and TTL eviction.
//!
//! This file is its own test binary (one `#[test]`) because it flips the
//! *global* cs2p-obs registry on and diffs its counters; sharing a
//! process with unrelated concurrent tests would make the counter diff
//! meaningless.

use cs2p_net::protocol::Health;
use cs2p_net::{serve_with, HttpClient, ServeConfig};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;

#[test]
fn churn_of_500_sessions_respects_capacity_and_reports_evictions() {
    let registry = cs2p_obs::Registry::global();
    cs2p_obs::set_enabled(true);
    let evicted_before = registry
        .snapshot()
        .counters
        .get("serve.evicted")
        .copied()
        .unwrap_or(0);

    let config = ServeConfig {
        n_shards: 4,
        n_workers: 2,
        queue_depth: 2048,
        max_sessions: 64,
        session_ttl_requests: Some(200),
        ..ServeConfig::default()
    };
    let capacity = config.max_sessions;
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();

    let workload = LoadConfig {
        n_clients: 4,
        n_sessions: 500,
        epochs_per_session: 2,
        horizon: 1,
        seed: 31,
        session_id_base: 10_000,
        ..LoadConfig::default()
    };
    let report = run_load(server.addr(), &workload);

    // Nothing was shed or lost: every request (including the re-init
    // retries after a 404) was eventually answered 200.
    assert_eq!(report.rejected, 0, "workload must not overload the queue");
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok, report.sent - report.reinit);
    assert!(
        report.reinit > 0,
        "500 sessions over a 64-session bound must evict live sessions \
         and exercise the 404 re-init path"
    );
    // Every session produced its two predictions (one may have come from
    // a re-registered filter).
    assert_eq!(report.predictions.len(), workload.n_sessions);
    for (id, preds) in &report.predictions {
        assert_eq!(preds.len(), workload.epochs_per_session, "session {id}");
    }

    // The session map never outgrew its bound, and the server agrees
    // over HTTP.
    let stats = server.stats();
    assert!(
        stats.sessions_live <= capacity,
        "live {} > capacity {}",
        stats.sessions_live,
        capacity
    );
    assert!(stats.session_capacity >= capacity);
    assert!(
        stats.sessions_evicted >= (workload.n_sessions - capacity) as u64,
        "evicted only {} of the inevitable {}",
        stats.sessions_evicted,
        workload.n_sessions - capacity
    );
    let mut client = HttpClient::new(server.addr());
    let health: Health = serde_json::from_slice(&client.get("/healthz").unwrap().body).unwrap();
    assert!(health.n_sessions <= capacity);

    // The `serve.evicted` telemetry matches the store's own count.
    let evicted_after = registry
        .snapshot()
        .counters
        .get("serve.evicted")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        evicted_after - evicted_before,
        stats.sessions_evicted,
        "serve.evicted telemetry out of sync with the store"
    );

    let final_stats = server.shutdown();
    assert_eq!(final_stats.predictions_served, report.ok);
    cs2p_obs::set_enabled(false);
}
