//! The live ops surface and the in-band prediction-quality monitor,
//! observed over plain HTTP (no global registry involved — the monitor
//! keeps its own sketches, so `/ops` works with telemetry disabled).
//!
//! Covers:
//! - `GET /ops` returns the full [`OpsSnapshot`] as JSON, consistent
//!   with [`ServerHandle::metrics_snapshot`];
//! - `GET /ops/metrics` renders Prometheus text with the documented
//!   content type;
//! - `/predict` measurements score the *previous* prediction, keyed by
//!   model version and provenance (`v1.cluster.*` vs `v1.global.*`);
//! - `/log` closes a live session's open prediction as unmatched, and
//!   scores offline `throughput_pairs` into the `log` sketch;
//! - `PredictResponse.cluster_hit` reports cluster vs global fallback.

use cs2p_net::http::{read_response, write_request, Request, Response};
use cs2p_net::protocol::{PredictRequest, PredictResponse, SessionLog};
use cs2p_net::{serve, OpsSnapshot, ServerHandle};
use cs2p_testkit::scenarios::tiny_engine;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

fn send(addr: SocketAddr, req: &Request) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, req).unwrap();
    read_response(&mut reader).unwrap()
}

fn predict(addr: SocketAddr, preq: &PredictRequest) -> PredictResponse {
    let body = serde_json::to_vec(preq).unwrap();
    let resp = send(addr, &Request::new("POST", "/predict", body));
    assert_eq!(resp.status, 200, "body: {:?}", resp.body);
    serde_json::from_slice(&resp.body).unwrap()
}

fn ops(addr: SocketAddr) -> OpsSnapshot {
    let resp = send(addr, &Request::new("GET", "/ops", Vec::new()));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    serde_json::from_slice(&resp.body).unwrap()
}

fn server() -> ServerHandle {
    serve(tiny_engine(), "127.0.0.1:0").expect("server starts")
}

/// Streams `epochs` requests for one session (features first, then
/// measurements), returning every response.
fn stream(
    addr: SocketAddr,
    sid: u64,
    features: Vec<u32>,
    mbps: f64,
    epochs: usize,
) -> Vec<PredictResponse> {
    (0..epochs)
        .map(|epoch| {
            predict(
                addr,
                &PredictRequest {
                    session_id: sid,
                    features: (epoch == 0).then(|| features.clone()),
                    measured_mbps: (epoch > 0).then_some(mbps),
                    horizon: 1,
                },
            )
        })
        .collect()
}

#[test]
fn ops_json_matches_the_embedded_snapshot() {
    let server = server();
    let addr = server.addr();
    stream(addr, 1, vec![1], 5.0, 4);

    let over_http = ops(addr);
    let embedded = server.metrics_snapshot();
    // Stable fields agree between the HTTP surface and the embedded
    // accessor (latency/connection gauges move with the /ops request
    // itself, so the comparison sticks to the model and quality state).
    assert_eq!(over_http.status, "ok");
    assert_eq!(over_http.model_version, embedded.model_version);
    assert_eq!(over_http.n_models, embedded.n_models);
    assert_eq!(over_http.predictions_served, 4);
    assert_eq!(over_http.sessions_live, 1);
    assert_eq!(over_http.quality, embedded.quality);
    // No global registry in this test: fault rows must be empty, not
    // fabricated.
    assert!(over_http.faults.is_empty());
    server.shutdown();
}

#[test]
fn ops_metrics_renders_prometheus_text() {
    let server = server();
    let addr = server.addr();
    stream(addr, 7, vec![1], 5.0, 3);

    let resp = send(addr, &Request::new("GET", "/ops/metrics", Vec::new()));
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    for needle in [
        "cs2p_up 1",
        "cs2p_model_version 1",
        "cs2p_predictions_served 3",
        "# TYPE cs2p_request_latency_us summary",
        "cs2p_quality_matched 2",
        "cs2p_quality_ape{key=\"v1.cluster.initial\",quantile=\"0.5\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    server.shutdown();
}

#[test]
fn measurements_score_the_previous_prediction_by_provenance() {
    let server = server();
    let addr = server.addr();
    // Cluster session: first scored sample is the initial prediction,
    // the rest are midstream.
    stream(addr, 10, vec![1], 5.0, 4);
    // Unknown feature vector falls back to the global model.
    let global = stream(addr, 11, vec![9], 5.0, 3);
    assert!(
        !global[0].cluster_hit,
        "unseen ISP must fall back to global"
    );

    let snap = server.metrics_snapshot();
    assert_eq!(snap.quality.matched, 5); // 3 cluster + 2 global
    let find = |key: &str| {
        snap.quality
            .ape
            .iter()
            .find(|r| r.key == key)
            .unwrap_or_else(|| panic!("missing {key} in {:?}", snap.quality.ape))
            .clone()
    };
    assert_eq!(find("v1.cluster.initial").count, 1);
    assert_eq!(find("v1.cluster.midstream").count, 2);
    assert_eq!(find("v1.global.initial").count, 1);
    assert_eq!(find("v1.global.midstream").count, 1);
    // The tiny world is constant, so cluster APE is ~0 throughout.
    assert!(find("v1.cluster.initial").p50 < 0.05);
    server.shutdown();
}

#[test]
fn cluster_hit_is_constant_per_session_and_true_for_clustered_isps() {
    let server = server();
    let addr = server.addr();
    let clustered = stream(addr, 20, vec![0], 1.0, 3);
    assert!(clustered.iter().all(|r| r.cluster_hit));
    let fallback = stream(addr, 21, vec![42], 1.0, 3);
    assert!(fallback.iter().all(|r| !r.cluster_hit));
    server.shutdown();
}

#[test]
fn log_closes_open_predictions_as_unmatched_and_scores_offline_pairs() {
    let server = server();
    let addr = server.addr();
    // Live session: the last prediction is still pending when /log
    // arrives, so it counts unmatched.
    stream(addr, 30, vec![1], 5.0, 3);
    let live_log = SessionLog {
        session_id: 30,
        strategy: "CS2P+MPC".into(),
        qoe: 1.0,
        avg_bitrate_kbps: 1000.0,
        good_ratio: 1.0,
        rebuffer_seconds: 0.0,
        startup_delay_seconds: 0.5,
        throughput_pairs: vec![],
        bitrates_kbps: vec![],
    };
    let resp = send(
        addr,
        &Request::new("POST", "/log", serde_json::to_vec(&live_log).unwrap()),
    );
    assert_eq!(resp.status, 204);

    // Offline upload for a session the server never saw: scored pairs go
    // into the dedicated `log` sketch. A pair with a zero measurement
    // counts unmatched; a pair with no prediction is skipped outright
    // (there was never a prediction to score).
    let offline_log = SessionLog {
        session_id: 999,
        strategy: "offline".into(),
        qoe: 0.5,
        avg_bitrate_kbps: 800.0,
        good_ratio: 0.9,
        rebuffer_seconds: 1.0,
        startup_delay_seconds: 1.0,
        throughput_pairs: vec![
            (Some(4.0), 5.0),
            (Some(5.0), 5.0),
            (None, 5.0),
            (Some(3.0), 0.0),
        ],
        bitrates_kbps: vec![],
    };
    let resp = send(
        addr,
        &Request::new("POST", "/log", serde_json::to_vec(&offline_log).unwrap()),
    );
    assert_eq!(resp.status, 204);

    let snap = server.metrics_snapshot();
    // 2 scored in-band + 2 scored offline pairs.
    assert_eq!(snap.quality.matched, 4);
    // 1 pending-at-log + 1 unusable (zero) actual.
    assert_eq!(snap.quality.unmatched, 2);
    let log_row = snap
        .quality
        .ape
        .iter()
        .find(|r| r.key == "log")
        .expect("log sketch present");
    assert_eq!(log_row.count, 2);
    server.shutdown();
}
