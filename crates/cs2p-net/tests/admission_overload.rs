//! Overload battery for the admission-control degradation ladder.
//!
//! Three kinds of proof, all built on the deterministic loadgen:
//!
//! - **forced-level semantics**: each ladder level is pinned via
//!   [`ServerHandle::force_admission_level`] and held to its exact
//!   contract — Degraded answers the cluster prior without touching
//!   per-session filters (shown differentially against a server that
//!   never saw the degraded-phase measurements), Fallback reproduces
//!   the paper's harmonic-mean baseline bit-for-bit, Shed refuses
//!   predict traffic with `Retry-After` while `/ops` keeps answering;
//! - **the Full-level differential**: a 16-client run against a
//!   1-worker server pinned at Full must produce per-session
//!   predictions bit-identical to an unloaded 1-client golden run —
//!   admission machinery in the request path must not perturb the
//!   model's answers;
//! - **liveness**: with real watermarks enabled and a 4-deep queue
//!   under 16 closed-loop clients, the server survives (no panics, the
//!   request ledger balances exactly), recovers to Full after the
//!   storm, and drains within the shutdown bound at every level.

use cs2p_core::baselines::HarmonicMean;
use cs2p_core::ThroughputPredictor;
use cs2p_net::http::Request;
use cs2p_net::protocol::{Degradation, PredictRequest, PredictResponse};
use cs2p_net::{
    serve_with, AdmissionConfig, AdmissionLevel, HttpClient, OpsSnapshot, ServeConfig, ServeStats,
    ServerHandle,
};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::time::{Duration, Instant};

fn default_server() -> ServerHandle {
    serve_with(tiny_engine(), "127.0.0.1:0", ServeConfig::default()).unwrap()
}

/// Shuts the server down on a helper thread and panics if it does not
/// drain within the bound (the ≤10 s acceptance criterion).
fn shutdown_bounded(server: ServerHandle) -> ServeStats {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.shutdown());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must complete in bounded time (stuck thread?)")
}

fn predict(client: &mut HttpClient, preq: &PredictRequest) -> (u16, Option<PredictResponse>) {
    let resp = client
        .send(&Request::new(
            "POST",
            "/predict",
            serde_json::to_vec(preq).unwrap(),
        ))
        .unwrap();
    let parsed = (resp.status == 200).then(|| serde_json::from_slice(&resp.body).unwrap());
    (resp.status, parsed)
}

#[test]
fn forced_full_under_overload_matches_unloaded_golden() {
    // Golden: one client, default server, no admission machinery armed.
    let workload = LoadConfig {
        n_clients: 1,
        n_sessions: 16,
        epochs_per_session: 5,
        horizon: 2,
        seed: 41,
        session_id_base: 1_000,
        ..LoadConfig::default()
    };
    let golden_server = default_server();
    let golden = run_load(golden_server.addr(), &workload);
    assert_eq!(golden.ok, golden.sent);
    shutdown_bounded(golden_server);

    // Overloaded: 16 clients against one worker, watermarks armed but
    // pinned at Full, queue deep enough that nothing is rejected. The
    // admission layer sits in the request path for every one of these
    // requests — and must not change a single bit of any answer.
    let config = ServeConfig {
        n_workers: 1,
        queue_depth: 1024,
        admission: AdmissionConfig::watermarks(),
        ..ServeConfig::default()
    };
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
    server.force_admission_level(Some(AdmissionLevel::Full));
    let overloaded = run_load(
        server.addr(),
        &LoadConfig {
            n_clients: 16,
            ..workload.clone()
        },
    );
    let stats = shutdown_bounded(server);
    assert_eq!(overloaded.rejected, 0, "queue sized for the workload");
    assert_eq!(overloaded.ok, overloaded.sent);
    assert_eq!(overloaded.degraded + overloaded.fallback, 0);
    assert_eq!(
        golden.predictions, overloaded.predictions,
        "Full under overload must be bit-identical to the unloaded golden"
    );
    assert_eq!(stats.admission.served_full, stats.predictions_served);
}

#[test]
fn degraded_level_skips_filter_updates_differentially() {
    // Server A: session 7 registers, then reports m1/m2 while the
    // ladder is pinned Degraded, then m3 after recovery.
    let server_a = default_server();
    let mut client_a = HttpClient::new(server_a.addr());
    let register = PredictRequest {
        session_id: 7,
        features: Some(vec![1]),
        measured_mbps: None,
        horizon: 3,
    };
    let (status, first) = predict(&mut client_a, &register);
    assert_eq!(status, 200);
    let first = first.unwrap();
    assert!(first.initial);
    assert_eq!(first.degradation, None);

    server_a.force_admission_level(Some(AdmissionLevel::Degraded));
    let mut degraded_answers = Vec::new();
    for m in [4.8, 5.3] {
        let (status, resp) = predict(
            &mut client_a,
            &PredictRequest {
                session_id: 7,
                features: None,
                measured_mbps: Some(m),
                horizon: 3,
            },
        );
        assert_eq!(status, 200);
        let resp = resp.unwrap();
        assert_eq!(resp.degradation, Some(Degradation::Degraded));
        assert!(
            resp.initial,
            "no filter update at Degraded: the session never leaves epoch 0"
        );
        degraded_answers.push(resp.predictions_mbps);
    }
    // The cluster prior is one constant vector, identical across epochs.
    assert_eq!(degraded_answers[0], degraded_answers[1]);
    assert_eq!(degraded_answers[0].len(), 3);
    assert!(degraded_answers[0]
        .windows(2)
        .all(|w| w[0].to_bits() == w[1].to_bits()));

    server_a.force_admission_level(None);
    let (status, after) = predict(
        &mut client_a,
        &PredictRequest {
            session_id: 7,
            features: None,
            measured_mbps: Some(5.1),
            horizon: 3,
        },
    );
    assert_eq!(status, 200);
    let after = after.unwrap();
    assert_eq!(after.degradation, None);

    // Server B never degrades and never sees m1/m2: if Degraded really
    // dropped them, the post-recovery answer is bit-identical to a
    // session whose first measurement is m3.
    let server_b = default_server();
    let mut client_b = HttpClient::new(server_b.addr());
    let (status, _) = predict(&mut client_b, &register);
    assert_eq!(status, 200);
    let (status, golden) = predict(
        &mut client_b,
        &PredictRequest {
            session_id: 7,
            features: None,
            measured_mbps: Some(5.1),
            horizon: 3,
        },
    );
    assert_eq!(status, 200);
    assert_eq!(
        after.predictions_mbps,
        golden.unwrap().predictions_mbps,
        "measurements reported at Degraded must never reach the filter"
    );
    let stats = shutdown_bounded(server_a);
    assert_eq!(stats.admission.served_degraded, 2);
    assert_eq!(
        stats.admission.served_full + stats.admission.served_degraded,
        stats.predictions_served
    );
    shutdown_bounded(server_b);
}

#[test]
fn fallback_level_reproduces_the_harmonic_mean_baseline_exactly() {
    let config = ServeConfig {
        retry_after_seconds: 3,
        ..ServeConfig::default()
    };
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
    server.force_admission_level(Some(AdmissionLevel::Fallback));
    let mut client = HttpClient::new(server.addr());

    // No measurement, no history: shed with the configured Retry-After.
    let resp = client
        .send(&Request::new(
            "POST",
            "/predict",
            serde_json::to_vec(&PredictRequest {
                session_id: 42,
                features: Some(vec![0]),
                measured_mbps: None,
                horizon: 2,
            })
            .unwrap(),
        ))
        .unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("3"));
    client.reset_connection();

    // Every measurement-carrying request answers exactly what the
    // paper's HarmonicMean baseline would after the same observations.
    let mut hm = HarmonicMean::new();
    for (i, m) in [2.0, 6.0, 3.0, 0.0, 4.5].into_iter().enumerate() {
        let (status, resp) = predict(
            &mut client,
            &PredictRequest {
                session_id: 42,
                features: None,
                measured_mbps: Some(m),
                horizon: 4,
            },
        );
        assert_eq!(status, 200, "sample {i}");
        let resp = resp.unwrap();
        assert_eq!(resp.degradation, Some(Degradation::Fallback));
        hm.observe(m);
        let want = hm.predict_ahead(1).unwrap();
        assert_eq!(resp.predictions_mbps.len(), 4);
        for p in &resp.predictions_mbps {
            assert_eq!(p.to_bits(), want.to_bits(), "sample {i}");
        }
    }
    let stats = shutdown_bounded(server);
    assert_eq!(stats.admission.served_fallback, 5);
    assert_eq!(stats.admission.fallback_misses, 1);
    assert_eq!(
        stats.admission.served_fallback + stats.admission.served_full,
        stats.predictions_served
    );
}

#[test]
fn ops_surface_never_sheds_and_reports_the_current_level() {
    let server = default_server();
    server.force_admission_level(Some(AdmissionLevel::Shed));
    let mut client = HttpClient::new(server.addr());

    // Predict traffic is refused…
    let resp = client
        .send(&Request::new(
            "POST",
            "/predict",
            serde_json::to_vec(&PredictRequest {
                session_id: 1,
                features: Some(vec![1]),
                measured_mbps: None,
                horizon: 1,
            })
            .unwrap(),
        ))
        .unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.header("retry-after").is_some());
    client.reset_connection();

    // …but the operator's read-only surface keeps answering, and
    // truthfully reports the level doing the refusing.
    let ops = client.get("/ops").unwrap();
    assert_eq!(ops.status, 200);
    let snap: OpsSnapshot = serde_json::from_slice(&ops.body).unwrap();
    assert_eq!(snap.admission.level, "shed");
    assert_eq!(snap.admission.shed, 1);
    assert!(snap.admission.store_occupancy >= 0.0);

    let prom = client.get("/ops/metrics").unwrap();
    assert_eq!(prom.status, 200);
    let text = String::from_utf8(prom.body.to_vec()).unwrap();
    assert!(text.contains("cs2p_admission_level 3"), "{text}");
    assert!(
        text.contains(r#"cs2p_admission_level_info{level="shed"} 1"#),
        "{text}"
    );
    assert!(text.contains("cs2p_admission_shed 1"), "{text}");

    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let stats = shutdown_bounded(server);
    assert_eq!(stats.admission.shed, 1);
}

#[test]
fn graceful_shutdown_is_bounded_at_every_forced_level() {
    for level in [
        None,
        Some(AdmissionLevel::Degraded),
        Some(AdmissionLevel::Fallback),
        Some(AdmissionLevel::Shed),
    ] {
        let server = default_server();
        server.force_admission_level(level);
        let report = run_load(
            server.addr(),
            &LoadConfig {
                n_clients: 2,
                n_sessions: 4,
                epochs_per_session: 3,
                seed: 9,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "level {level:?}");
        let stats = shutdown_bounded(server);
        assert_eq!(
            stats.admission.served_full
                + stats.admission.served_degraded
                + stats.admission.served_fallback,
            stats.predictions_served,
            "level {level:?}: ladder serve ledger out of balance"
        );
    }
}

#[test]
fn enabled_watermarks_survive_overload_and_recover_to_full() {
    // A storm the watermarks can actually see: 16 closed-loop clients
    // against one worker and a 4-deep queue. Which requests land at
    // which level is scheduling-dependent; what must hold exactly is
    // the ledger, survival, and recovery. The outer loop re-rolls the
    // (practically certain) overload in the unlikely event a scheduler
    // quirk let the queue stay shallow all run.
    for attempt in 0..3 {
        let config = ServeConfig {
            n_workers: 1,
            queue_depth: 4,
            admission: AdmissionConfig::watermarks(),
            ..ServeConfig::default()
        };
        let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
        let report = run_load(
            server.addr(),
            &LoadConfig {
                n_clients: 16,
                n_sessions: 32,
                epochs_per_session: 6,
                horizon: 2,
                seed: 17 + attempt,
                session_id_base: 1_000,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "overload must never error, only shed");

        // Recovery: keep sampling with cheap requests until the dwell
        // timers walk the ladder back down to Full (condition polling,
        // not a fixed sleep — the watermark clock is real time here).
        let mut probe = HttpClient::new(server.addr());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(resp) = probe.send(&Request::new("GET", "/healthz", bytes::Bytes::new())) {
                if resp.status == 503 {
                    probe.reset_connection();
                }
            } else {
                probe.reset_connection();
            }
            if server.admission_level() == AdmissionLevel::Full {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "ladder never recovered to Full after the storm (stuck at {:?})",
                server.admission_level()
            );
            std::thread::yield_now();
        }

        let stats = shutdown_bounded(server);
        let snap = stats.admission;
        // Exact ledgers even under a scheduling-dependent storm: every
        // 200 at exactly one level, every client-visible 503 accounted
        // to queue backpressure, an admission shed, or a fallback miss.
        assert_eq!(
            snap.served_full + snap.served_degraded + snap.served_fallback,
            stats.predictions_served
        );
        assert_eq!(
            report.rejected,
            stats.rejected + snap.shed + snap.fallback_misses,
            "503 ledger out of balance: {report:?} vs {stats:?}"
        );
        assert_eq!(report.ok, stats.predictions_served);
        assert_eq!(
            report.degraded, snap.served_degraded,
            "every degraded answer carries its provenance mark"
        );
        assert_eq!(report.fallback, snap.served_fallback);

        // Non-vacuity: the storm actually moved the ladder (or re-roll).
        if snap.transitions > 0 {
            assert!(snap.served_degraded + snap.served_fallback + snap.shed + stats.rejected > 0);
            return;
        }
    }
    panic!("16 clients against a 4-deep queue never built pressure in 3 attempts");
}
