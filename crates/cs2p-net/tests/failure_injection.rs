//! Failure injection: the player must degrade gracefully — never panic,
//! never stall the playback loop — when the prediction server misbehaves
//! or the manifest is broken.

use cs2p_core::ThroughputPredictor;
use cs2p_net::dash::{AbrKind, DashPlayer, Manifest, PlayerConfig};
use cs2p_net::{serve, RemotePredictor, ServerHandle};
use cs2p_testkit::scenarios::tiny_engine;

#[test]
fn server_death_mid_session_degrades_but_playback_finishes() {
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut predictor = RemotePredictor::new(addr, 1, vec![1]);
    // Warm up: a few successful epochs.
    assert!(predictor.predict_initial().is_some());
    predictor.observe(5.0);
    assert!(predictor.predict_next().is_some());

    // Kill the server mid-session. The open keep-alive connection may
    // drain one final request before closing.
    server.shutdown();
    predictor.observe(5.0);
    let _ = predictor.predict_next();

    // Subsequent predictions fail soft (None), observe never panics.
    predictor.observe(5.0);
    assert_eq!(predictor.predict_next(), None);
    predictor.observe(4.8);
    assert_eq!(predictor.predict_ahead(3), None);

    // The player plays the entire video anyway: MPC falls back to the
    // conservative no-prediction path.
    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );
    let trace = vec![5.0; 120];
    let mut dead = RemotePredictor::new(addr, 2, vec![1]);
    let log = player.play(&trace, 6.0, &mut dead, 2, "CS2P+MPC");
    assert_eq!(log.bitrates_kbps.len(), 43);
    assert!(log.qoe.is_finite());
    // Every chunk got the lowest rung — the documented no-information
    // behaviour — rather than crashing or hanging.
    assert!(log.bitrates_kbps.iter().all(|&b| b == 350.0));
}

/// Remote predictor whose server dies *during* playback: after
/// `kill_after` observed epochs it shuts the server down, deterministically
/// injecting the disconnect mid-session from inside the playback loop.
struct DisconnectingPredictor {
    inner: RemotePredictor,
    server: Option<ServerHandle>,
    kill_after: usize,
    observed: usize,
}

impl ThroughputPredictor for DisconnectingPredictor {
    fn name(&self) -> &str {
        "CS2P-disconnecting"
    }

    fn predict_initial(&mut self) -> Option<f64> {
        self.inner.predict_initial()
    }

    fn predict_ahead(&mut self, k: usize) -> Option<f64> {
        self.inner.predict_ahead(k)
    }

    fn observe(&mut self, throughput: f64) {
        self.observed += 1;
        if self.observed == self.kill_after {
            if let Some(server) = self.server.take() {
                server.shutdown();
            }
        }
        self.inner.observe(throughput);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[test]
fn server_disconnect_during_playback_finishes_the_video() {
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );
    let trace = vec![5.0; 120];
    let mut predictor = DisconnectingPredictor {
        inner: RemotePredictor::new(addr, 4, vec![1]),
        server: Some(server),
        kill_after: 10,
        observed: 0,
    };
    let log = player.play(&trace, 6.0, &mut predictor, 4, "CS2P+MPC");

    // The server died after 10 chunks but the whole video still played.
    assert!(predictor.server.is_none(), "kill switch must have fired");
    assert_eq!(log.bitrates_kbps.len(), 43);
    assert!(log.qoe.is_finite());
    assert!(log.rebuffer_seconds.is_finite());
    // Early chunks had predictions and climbed the ladder; after the
    // disconnect MPC degrades to its conservative no-prediction path
    // rather than panicking or freezing playback.
    let had_pred = log
        .throughput_pairs
        .iter()
        .filter(|(pred, _)| pred.is_some())
        .count();
    assert!(had_pred > 0, "no predictions served before the kill");
    assert!(
        had_pred < log.throughput_pairs.len(),
        "every chunk kept a prediction — the disconnect never bit"
    );
}

#[test]
fn server_restart_is_picked_up_by_reconnecting_client() {
    // First server instance.
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut predictor = RemotePredictor::new(addr, 9, vec![0]);
    assert!(predictor.predict_initial().is_some());
    let port = addr.port();
    server.shutdown();

    // Dead in between. The previous keep-alive connection may drain one
    // final request before closing; the one after that must fail soft.
    predictor.observe(1.0);
    let _ = predictor.predict_next();
    predictor.observe(1.0);
    assert_eq!(predictor.predict_next(), None);

    // Restart on the same port (may occasionally be taken; skip if so).
    let Ok(server2) = serve(tiny_engine(), &format!("127.0.0.1:{port}")) else {
        return;
    };
    // The keep-alive client reconnects transparently; the session state
    // was lost server-side, so the predictor re-registers via features.
    predictor.reset();
    assert!(predictor.predict_initial().is_some());
    server2.shutdown();
}

#[test]
fn malformed_server_responses_do_not_panic_client() {
    // A fake "server" that answers garbage to whatever arrives.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut s) = stream else {
                break;
            };
            use std::io::{Read, Write};
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\n{not}");
        }
    });

    let mut predictor = RemotePredictor::new(addr, 3, vec![0]);
    // Invalid JSON body -> soft failure, no panic.
    assert_eq!(predictor.predict_initial(), None);
    let _ = handle;
}

#[test]
fn syntactically_malformed_manifests_are_rejected_not_panicked_on() {
    for garbage in [
        "",
        "{not json",
        "[1,2,3]",
        r#"{"title":"x"}"#,
        r#"{"title":"x","video":{"chunk_seconds":"six"}}"#,
    ] {
        let err = Manifest::from_json(garbage);
        assert!(err.is_err(), "garbage manifest {garbage:?} was accepted");
    }
}

#[test]
fn semantically_broken_manifests_are_rejected_up_front() {
    let good = Manifest::envivio();
    assert!(good.validate().is_ok());

    let mut empty_ladder = good.clone();
    empty_ladder.video.bitrates_kbps.clear();
    assert!(empty_ladder.validate().is_err());
    assert!(DashPlayer::try_new(empty_ladder, PlayerConfig::default()).is_err());

    let mut zero_chunks = good.clone();
    zero_chunks.video.n_chunks = 0;
    assert!(zero_chunks.validate().is_err());

    let mut descending = good.clone();
    descending.video.bitrates_kbps.reverse();
    assert!(descending.validate().is_err());

    let mut nan_rate = good.clone();
    nan_rate.video.bitrates_kbps[0] = f64::NAN;
    assert!(nan_rate.validate().is_err());

    let mut zero_epoch = good.clone();
    zero_epoch.video.chunk_seconds = 0.0;
    assert!(zero_epoch.validate().is_err());

    let mut no_buffer = good.clone();
    no_buffer.video.buffer_capacity_seconds = -1.0;
    assert!(no_buffer.validate().is_err());

    // A round trip through JSON of a valid manifest still validates.
    let json = serde_json::to_string(&good).unwrap();
    let reparsed = Manifest::from_json(&json).unwrap();
    assert_eq!(reparsed, good);
    assert!(DashPlayer::try_new(
        reparsed,
        PlayerConfig {
            abr: AbrKind::Bb,
            ..Default::default()
        }
    )
    .is_ok());
}
