//! Failure injection: the player must degrade gracefully — never panic,
//! never stall the playback loop — when the prediction server misbehaves.

use cs2p_core::engine::EngineConfig;
use cs2p_core::{Dataset, FeatureSchema, FeatureVector, PredictionEngine, Session};
use cs2p_core::ThroughputPredictor;
use cs2p_net::dash::{DashPlayer, Manifest, PlayerConfig};
use cs2p_net::{serve, RemotePredictor};

fn tiny_engine() -> PredictionEngine {
    let schema = FeatureSchema::new(vec!["isp"]);
    let sessions: Vec<Session> = (0..40)
        .map(|k| {
            let isp = (k % 2) as u32;
            let tp = if isp == 0 { 1.0 } else { 5.0 };
            Session::new(k, FeatureVector(vec![isp]), k * 50, 6, vec![tp; 8])
        })
        .collect();
    let d = Dataset::new(schema, sessions);
    let mut config = EngineConfig::default();
    config.cluster.min_cluster_size = 5;
    config.hmm.n_states = 2;
    config.hmm.max_iters = 10;
    PredictionEngine::train(&d, &config).unwrap().0
}

#[test]
fn server_death_mid_session_degrades_but_playback_finishes() {
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut predictor = RemotePredictor::new(addr, 1, vec![1]);
    // Warm up: a few successful epochs.
    assert!(predictor.predict_initial().is_some());
    predictor.observe(5.0);
    assert!(predictor.predict_next().is_some());

    // Kill the server mid-session. The open keep-alive connection may
    // drain one final request before closing.
    server.shutdown();
    predictor.observe(5.0);
    let _ = predictor.predict_next();

    // Subsequent predictions fail soft (None), observe never panics.
    predictor.observe(5.0);
    assert_eq!(predictor.predict_next(), None);
    predictor.observe(4.8);
    assert_eq!(predictor.predict_ahead(3), None);

    // The player plays the entire video anyway: MPC falls back to the
    // conservative no-prediction path.
    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );
    let trace = vec![5.0; 120];
    let mut dead = RemotePredictor::new(addr, 2, vec![1]);
    let log = player.play(&trace, 6.0, &mut dead, 2, "CS2P+MPC");
    assert_eq!(log.bitrates_kbps.len(), 43);
    assert!(log.qoe.is_finite());
    // Every chunk got the lowest rung — the documented no-information
    // behaviour — rather than crashing or hanging.
    assert!(log.bitrates_kbps.iter().all(|&b| b == 350.0));
}

#[test]
fn server_restart_is_picked_up_by_reconnecting_client() {
    // First server instance.
    let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut predictor = RemotePredictor::new(addr, 9, vec![0]);
    assert!(predictor.predict_initial().is_some());
    let port = addr.port();
    server.shutdown();

    // Dead in between. The previous keep-alive connection may drain one
    // final request before closing; the one after that must fail soft.
    predictor.observe(1.0);
    let _ = predictor.predict_next();
    predictor.observe(1.0);
    assert_eq!(predictor.predict_next(), None);

    // Restart on the same port (may occasionally be taken; skip if so).
    let Ok(server2) = serve(tiny_engine(), &format!("127.0.0.1:{port}")) else {
        return;
    };
    // The keep-alive client reconnects transparently; the session state
    // was lost server-side, so the predictor re-registers via features.
    predictor.reset();
    assert!(predictor.predict_initial().is_some());
    server2.shutdown();
}

#[test]
fn malformed_server_responses_do_not_panic_client() {
    // A fake "server" that answers garbage to whatever arrives.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut s) = stream else {
                break;
            };
            use std::io::{Read, Write};
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\n{not}");
        }
    });

    let mut predictor = RemotePredictor::new(addr, 3, vec![0]);
    // Invalid JSON body -> soft failure, no panic.
    assert_eq!(predictor.predict_initial(), None);
    let _ = handle;
}
