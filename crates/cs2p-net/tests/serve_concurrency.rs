//! Concurrency correctness, overload backpressure, and graceful-drain
//! tests for the sharded prediction server (driven by the testkit load
//! generator — see TESTING.md).

use cs2p_net::http::{Request, Response};
use cs2p_net::protocol::PredictRequest;
use cs2p_net::{serve_with, HttpClient, ServeConfig};
use cs2p_testkit::invariants::assert_serving_concurrency_independence;
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// K concurrent clients against worker counts {1, 2, 8} must produce
/// per-session prediction sequences bit-identical to one client against
/// one worker.
#[test]
fn concurrent_serving_matches_single_threaded_run() {
    let workload = LoadConfig {
        n_clients: 4,
        n_sessions: 8,
        epochs_per_session: 4,
        horizon: 2,
        seed: 21,
        ..LoadConfig::default()
    };
    assert_serving_concurrency_independence(&[1, 2, 8], &workload);
}

/// Interleaved arrival *timing* must not matter either: a paced
/// (open-loop, seeded gaps) multi-client run sees the same per-session
/// predictions as the closed-loop run.
#[test]
fn paced_interleaving_does_not_change_predictions() {
    let workload = LoadConfig {
        n_clients: 3,
        n_sessions: 6,
        epochs_per_session: 3,
        seed: 22,
        max_gap_us: 300,
        ..LoadConfig::default()
    };
    assert_serving_concurrency_independence(&[2], &workload);
}

/// Overload (tiny queue, one worker, many clients) must answer 503 —
/// never panic, deadlock, or silently drop a connection: every request
/// is accounted for as ok, rejected, or a clean transport error, and the
/// server keeps serving afterwards.
#[test]
fn overload_yields_503_backpressure_and_stays_healthy() {
    let config = ServeConfig {
        n_workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
    let workload = LoadConfig {
        n_clients: 16,
        n_sessions: 32,
        epochs_per_session: 4,
        seed: 23,
        ..LoadConfig::default()
    };
    let report = run_load(server.addr(), &workload);
    // Every request is accounted for: answered 200, shed with a 503,
    // answered 404 (a 503'd registration makes the session unknown, and
    // the load generator re-registers), or a clean transport error.
    assert_eq!(
        report.ok + report.rejected + report.reinit + report.errors,
        report.sent,
        "every request must be accounted for"
    );
    assert!(
        report.rejected > 0,
        "a 1-deep queue under 16 clients must shed load via 503"
    );
    assert!(report.ok > 0, "the server must still make progress");

    // The server survived the storm and still answers.
    let mut client = HttpClient::new(server.addr());
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    let stats = server.shutdown();
    assert!(stats.rejected >= report.rejected);
    // The server never served more 200s than clients observed plus the
    // (rare) retransmits after a broken keep-alive connection.
    assert!(stats.predictions_served >= report.ok);
}

fn spawn_streamer(addr: SocketAddr, session_id: u64) -> std::thread::JoinHandle<(u64, bool)> {
    std::thread::spawn(move || {
        let mut client = HttpClient::new(addr);
        let mut ok = 0u64;
        let mut clean_exit = false;
        for epoch in 0..10_000u64 {
            let preq = PredictRequest {
                session_id,
                features: (epoch == 0).then(|| vec![(session_id % 2) as u32]),
                measured_mbps: (epoch > 0).then_some(2.5),
                horizon: 1,
            };
            let body = serde_json::to_vec(&preq).unwrap();
            match client.send(&Request::new("POST", "/predict", body)) {
                Ok(Response { status: 200, .. }) => ok += 1,
                // Any refusal/close during shutdown is a *clean* end:
                // the request was answered or never read, not dropped.
                _ => {
                    clean_exit = true;
                    break;
                }
            }
        }
        (ok, clean_exit)
    })
}

/// `shutdown()` must complete in bounded time while clients are actively
/// streaming, and every request the server accepted must have been
/// answered (clients' 200-counts never exceed the server's own count —
/// nothing in flight was dropped; streamers terminate promptly instead
/// of hanging on a half-closed connection).
#[test]
fn shutdown_is_bounded_and_drains_in_flight_requests() {
    let config = ServeConfig {
        n_workers: 2,
        read_timeout: Duration::from_secs(1),
        write_timeout: Duration::from_secs(1),
        ..ServeConfig::default()
    };
    let server = serve_with(tiny_engine(), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();
    let streamers: Vec<_> = (0..4).map(|i| spawn_streamer(addr, 500 + i)).collect();

    // Let traffic build — polling the server's own served counter rather
    // than sleeping a fixed interval, so a slow machine waits longer and
    // a fast one doesn't wait at all — then pull the plug mid-stream.
    let traffic_deadline = Instant::now() + Duration::from_secs(30);
    while server.predictions_served() < 50 {
        assert!(
            Instant::now() < traffic_deadline,
            "streamers never produced traffic"
        );
        std::thread::yield_now();
    }
    let start = Instant::now();
    let stats = server.shutdown();
    let shutdown_elapsed = start.elapsed();
    assert!(
        shutdown_elapsed < Duration::from_secs(5),
        "shutdown took {shutdown_elapsed:?}"
    );

    let mut client_ok = 0u64;
    for h in streamers {
        let (ok, clean_exit) = h.join().expect("streamer panicked");
        assert!(clean_exit, "streamer outlived the server");
        client_ok += ok;
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "streamers did not unblock promptly after shutdown"
    );
    assert!(client_ok > 0, "no traffic flowed before shutdown");
    assert!(
        stats.predictions_served >= client_ok,
        "server answered {} but clients saw {} — in-flight work dropped",
        stats.predictions_served,
        client_ok
    );
}

/// Restarting on the same port right after shutdown works: all threads,
/// sockets, and the listener are actually gone.
#[test]
fn shutdown_releases_the_port() {
    let server = serve_with(tiny_engine(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr();
    server.shutdown();
    let again = serve_with(tiny_engine(), &addr.to_string(), ServeConfig::default())
        .expect("rebinding the freed port");
    let mut client = HttpClient::new(again.addr());
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    again.shutdown();
}
