//! Torn-write recovery battery for the durability layer (see DESIGN.md
//! §3f and TESTING.md "Crash recovery").
//!
//! Three layers of attack, bottom-up:
//!
//! - **framing**: a WAL written through the real `Wal` is truncated at
//!   *every* byte offset and bit-flipped at seeded positions — decoding
//!   must never panic, must recover exactly the longest valid frame
//!   prefix, and must report `clean` only at true frame boundaries;
//! - **registry**: random publish/GC programs against the on-disk model
//!   directory — the files present must always equal the retained set,
//!   the `CURRENT` pointer must follow the latest publish, and a corrupt
//!   bundle is skipped, never fatal;
//! - **end-to-end**: a server opened with `ServerHandle::open_or_recover`
//!   is killed (cleanly or with a torn final commit) at every commit
//!   point of a deterministic request stream, reopened, and compared —
//!   response-byte-identical — against a control server that was only
//!   ever fed the committed prefix. The same battery checks the graceful
//!   path: flush-on-shutdown makes the whole stream durable.
//!
//! Commit-point arithmetic: with `commit_every_records = 1` and a
//! single-threaded driver, every step of the stream appends exactly one
//! WAL record and therefore owns exactly one commit index, so
//! "crash at commit k" and "control fed the first k steps" describe the
//! same durable state. The stream is built to keep that invariant (no
//! TTL, capacity far above the session count, `/log` only for live
//! sessions — nothing ever evicts or no-ops).

use cs2p_net::http::{Request, Response};
use cs2p_net::persist::{decode_frames, RegistryDir, Wal};
use cs2p_net::protocol::{PredictRequest, SessionLog};
use cs2p_net::{HttpClient, PersistConfig, ServeConfig, ServerHandle};
use cs2p_obs::ManualClock;
use cs2p_testkit::crash::{CrashPlan, TempDir};
use cs2p_testkit::scenarios::tiny_engine;
use proptest::prelude::*;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// `tiny_engine()` trains from scratch; this battery spins ~100 servers,
/// so train once and clone.
fn cached_engine() -> cs2p_core::PredictionEngine {
    static ENGINE: OnceLock<cs2p_core::PredictionEngine> = OnceLock::new();
    ENGINE.get_or_init(tiny_engine).clone()
}

// ---------------------------------------------------------------------
// Framing layer
// ---------------------------------------------------------------------

const FRAME_HEADER: usize = 8;

/// Frames written through the real `Wal`, then truncated at every byte
/// offset: the decoder must return exactly the frames that fit whole,
/// flag every mid-frame cut as unclean, and never panic.
#[test]
fn truncation_at_every_byte_offset_yields_longest_valid_prefix() {
    let dir = TempDir::new("trunc");
    let path = dir.path().join("wal-000001.log");
    // Varied sizes, including empty, so cuts land in headers, payloads,
    // and exactly on boundaries.
    let payloads: Vec<Vec<u8>> = (0..6u8).map(|i| vec![0xA0 ^ i; (i as usize) * 3]).collect();
    {
        let wal = Wal::open(&path, Arc::new(ManualClock::new()), 1, None, false, None).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.flush().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let boundaries: Vec<usize> = payloads
        .iter()
        .scan(0usize, |pos, p| {
            *pos += FRAME_HEADER + p.len();
            Some(*pos)
        })
        .collect();
    assert_eq!(*boundaries.last().unwrap(), bytes.len(), "Wal framing size");

    for cut in 0..=bytes.len() {
        let replay = decode_frames(&bytes[..cut]);
        let whole = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            replay.records,
            &payloads[..whole],
            "cut at {cut}: wrong record prefix"
        );
        let on_boundary = cut == 0 || boundaries.contains(&cut);
        assert_eq!(replay.clean, on_boundary, "cut at {cut}: clean flag");
        let expected_valid = boundaries
            .iter()
            .rev()
            .find(|&&b| b <= cut)
            .copied()
            .unwrap_or(0);
        assert_eq!(
            replay.valid_bytes, expected_valid as u64,
            "cut at {cut}: valid_bytes"
        );
    }
}

proptest! {
    /// A single flipped bit anywhere in a framed stream: every frame
    /// that ends before the flipped byte decodes intact, decoding stops
    /// at the corrupted frame (CRC32 catches any single-bit error), the
    /// log is flagged unclean, and nothing panics.
    #[test]
    fn single_bit_flip_never_panics_and_preserves_the_prefix(
        sizes in prop::collection::vec(0usize..48, 1..8),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&cs2p_net::persist::crc32(p).to_le_bytes());
            bytes.extend_from_slice(p);
            boundaries.push(bytes.len());
        }
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;

        let replay = decode_frames(&bytes);
        // Frames that end at or before the flipped byte are untouched;
        // the flip lands inside the next frame, which must fail its CRC
        // (or bounds check, if the flip grew the length field).
        let intact = boundaries.iter().filter(|&&b| b <= pos).count();
        prop_assert_eq!(&replay.records, &payloads[..intact]);
        prop_assert!(!replay.clean, "a flipped bit must mark the log unclean");
    }
}

// ---------------------------------------------------------------------
// Registry layer
// ---------------------------------------------------------------------

proptest! {
    /// Random publish/GC programs against the model directory: after
    /// every program the files on disk are exactly the retained set,
    /// `CURRENT` names the latest publish, and reloading recovers every
    /// retained version (density: versions are the publish sequence).
    #[test]
    fn registry_dir_files_always_match_the_retained_set(
        n_published in 1u64..8,
        retain in 1u64..4,
        corrupt_one in any::<bool>(),
    ) {
        let tmp = TempDir::new("registry");
        let dir = tmp.path();
        let sink = RegistryDir::create(dir).unwrap();
        let engine = cached_engine();

        use cs2p_core::registry::RegistryPersistence;
        use cs2p_core::ModelVersion;
        let mut retained: Vec<u64> = Vec::new();
        for v in 1..=n_published {
            sink.publish_version(ModelVersion(v), &engine);
            retained.push(v);
            while retained.len() as u64 > retain {
                sink.collect_version(ModelVersion(retained.remove(0)));
            }
            // The invariant holds after *every* step, not just at the end.
            let (engines, current) = RegistryDir::load(dir).unwrap();
            let versions: Vec<u64> = engines.iter().map(|(ev, _)| *ev).collect();
            prop_assert_eq!(&versions, &retained, "publish {} files", v);
            prop_assert_eq!(current, Some(v), "publish {} pointer", v);
        }

        if corrupt_one {
            // Scribble over the *current* bundle: the loader must skip it
            // without panicking, and the dangling pointer must filter to
            // `None` rather than name a version that cannot be served.
            let current = *retained.last().unwrap();
            std::fs::write(dir.join(format!("v{current}.json")), b"{not json").unwrap();
            let (engines, loaded_current) = RegistryDir::load(dir).unwrap();
            let versions: Vec<u64> = engines.iter().map(|(ev, _)| *ev).collect();
            let survivors: Vec<u64> =
                retained.iter().copied().filter(|&v| v != current).collect();
            prop_assert_eq!(versions, survivors, "corrupt bundle must be skipped");
            prop_assert_eq!(loaded_current, None, "dangling pointer must filter out");
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end crash/recovery layer
// ---------------------------------------------------------------------

/// One step of the deterministic request stream. Every step appends
/// exactly one WAL record (see the module docs), so step index == commit
/// index at `commit_every_records = 1`.
#[derive(Clone)]
enum Step {
    Predict(PredictRequest),
    Log(u64),
}

const SESSIONS: [u64; 3] = [7, 8, 9];

/// The full stream: 3 sessions × 4 interleaved epochs, then a `/log`
/// departure (a `Remove` record), a re-registration of the departed
/// session (a second `Register` for the same id), and one more update.
fn request_stream() -> Vec<Step> {
    let mut steps = Vec::new();
    for epoch in 0..4u64 {
        for (i, &sid) in SESSIONS.iter().enumerate() {
            steps.push(Step::Predict(PredictRequest {
                session_id: sid,
                features: (epoch == 0).then(|| vec![i as u32 % 2]),
                measured_mbps: (epoch > 0).then_some(1.5 + 0.25 * epoch as f64 + 0.1 * i as f64),
                horizon: 2,
            }));
        }
    }
    steps.push(Step::Log(8));
    steps.push(Step::Predict(PredictRequest {
        session_id: 8,
        features: Some(vec![1]),
        measured_mbps: None,
        horizon: 2,
    }));
    steps.push(Step::Predict(PredictRequest {
        session_id: 7,
        features: None,
        measured_mbps: Some(3.25),
        horizon: 2,
    }));
    steps
}

fn drive(client: &mut HttpClient, step: &Step) -> Response {
    let resp = match step {
        Step::Predict(preq) => client
            .send(&Request::new(
                "POST",
                "/predict",
                serde_json::to_vec(preq).unwrap(),
            ))
            .unwrap(),
        Step::Log(id) => {
            let log = SessionLog {
                session_id: *id,
                strategy: "CS2P+MPC".to_string(),
                qoe: 1.0,
                avg_bitrate_kbps: 1200.0,
                good_ratio: 0.9,
                rebuffer_seconds: 0.4,
                startup_delay_seconds: 0.5,
                throughput_pairs: vec![],
                bitrates_kbps: vec![],
            };
            client
                .send(&Request::new(
                    "POST",
                    "/log",
                    serde_json::to_vec(&log).unwrap(),
                ))
                .unwrap()
        }
    };
    assert!(
        (200..300).contains(&resp.status),
        "every step of the stream must succeed, got {}: {}",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );
    resp
}

fn persist_server(dir: &Path, persist: PersistConfig) -> ServerHandle {
    let config = ServeConfig {
        n_shards: 2,
        n_workers: 1,
        max_sessions: 64,
        session_ttl_requests: None,
        ..ServeConfig::default()
    };
    ServerHandle::open_or_recover(dir, cached_engine(), "127.0.0.1:0", config, persist).unwrap()
}

fn strict_persist(hook: Option<Arc<CrashPlan>>) -> PersistConfig {
    PersistConfig {
        commit_every_records: 1,
        snapshot_every_records: 0, // no periodic compaction: commit k == step k
        fsync_data: false,         // page-cache durability is enough for a test kill
        fault_hook: hook.map(|h| h as Arc<dyn cs2p_net::WalFaultHook>),
        ..PersistConfig::default()
    }
}

/// Probes a server with a post-recovery continuation: two rounds over
/// every session (features supplied so an unknown session re-registers
/// identically on both sides) plus an ops-surface read. Returns the raw
/// response bytes — the comparison is byte-exact, so prediction floats,
/// `initial` flags, cluster sizes, and pinned model versions all have to
/// match to the bit.
fn probe(addr: std::net::SocketAddr) -> Vec<(u16, Vec<u8>)> {
    let mut client = HttpClient::new(addr);
    let mut out = Vec::new();
    for round in 0..2u64 {
        for (i, &sid) in SESSIONS.iter().enumerate() {
            let preq = PredictRequest {
                session_id: sid,
                features: Some(vec![i as u32 % 2]),
                measured_mbps: Some(2.0 + 0.5 * round as f64 + 0.125 * i as f64),
                horizon: 2,
            };
            let resp = client
                .send(&Request::new(
                    "POST",
                    "/predict",
                    serde_json::to_vec(&preq).unwrap(),
                ))
                .unwrap();
            out.push((resp.status, resp.body.to_vec()));
        }
    }
    out
}

/// Runs the full stream into a durable server that crashes (via `plan`)
/// somewhere inside it, recovers from the directory, and asserts the
/// recovered server is response-byte-identical to a control server that
/// was only ever fed the first `committed` steps.
fn crash_and_compare(plan: Arc<CrashPlan>, committed: usize, label: &str) {
    let steps = request_stream();

    // Crashed run: the WAL dies mid-stream but the process keeps serving
    // from memory — every request must still succeed.
    let dir = TempDir::new("crash");
    let server = persist_server(dir.path(), strict_persist(Some(Arc::clone(&plan))));
    let mut client = HttpClient::new(server.addr());
    for step in &steps {
        drive(&mut client, step);
    }
    if committed < steps.len() {
        assert!(plan.killed(), "{label}: the crash plan never fired");
        assert!(
            server.persist_stats().unwrap().dead,
            "{label}: WAL must be dead after the crash"
        );
    }
    drop(client);
    server.shutdown();

    // Control: an identical server fed only the committed prefix.
    let control_dir = TempDir::new("control");
    let control = persist_server(control_dir.path(), strict_persist(None));
    let mut control_client = HttpClient::new(control.addr());
    for step in &steps[..committed] {
        drive(&mut control_client, step);
    }
    drop(control_client);

    // Recovery, then the byte-exact comparison.
    let recovered = persist_server(dir.path(), strict_persist(None));
    let got = probe(recovered.addr());
    let want = probe(control.addr());
    assert_eq!(
        got, want,
        "{label}: recovered server diverged from the committed-prefix control"
    );
    recovered.shutdown();
    control.shutdown();
}

/// Kill cleanly at *every* commit point of the stream (and one past the
/// end — a plan that never fires), plus a torn final commit at every
/// point: the acceptance bar for the durability layer.
#[test]
fn crash_at_every_commit_point_recovers_the_committed_prefix_exactly() {
    let total = request_stream().len();
    for k in 0..=total {
        crash_and_compare(
            CrashPlan::kill_at_commit(k as u64),
            k,
            &format!("kill at commit {k}"),
        );
    }
    for k in 0..total {
        // A torn commit k leaves a strict prefix of record k's frame on
        // disk: recovery truncates it, so the durable state is still
        // exactly k steps.
        crash_and_compare(
            CrashPlan::torn_at_commit(k as u64, 0x7EA5 + k as u64),
            k,
            &format!("torn at commit {k}"),
        );
    }
}

/// The graceful path: shutdown flushes, so reopening recovers the whole
/// stream — and a second reopen (recovery-of-a-recovery, now snapshot-
/// based after the startup compaction) is just as exact.
#[test]
fn graceful_shutdown_then_reopen_recovers_everything() {
    let steps = request_stream();
    let dir = TempDir::new("graceful");
    let server = persist_server(dir.path(), strict_persist(None));
    let mut client = HttpClient::new(server.addr());
    for step in &steps {
        drive(&mut client, step);
    }
    drop(client);
    server.shutdown();

    let control_dir = TempDir::new("graceful-control");
    let control = persist_server(control_dir.path(), strict_persist(None));
    let mut control_client = HttpClient::new(control.addr());
    for step in &steps {
        drive(&mut control_client, step);
    }
    drop(control_client);
    let want = probe(control.addr());
    control.shutdown();

    for reopen in 0..2 {
        let recovered = persist_server(dir.path(), strict_persist(None));
        // The probe mutates sessions, so only the first reopen can be
        // compared against the never-restarted control; the second
        // proves recovery-of-a-recovery still serves and stays live.
        if reopen == 0 {
            let got = probe(recovered.addr());
            assert_eq!(got, want, "reopen after graceful shutdown diverged");
        } else {
            let mut client = HttpClient::new(recovered.addr());
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        recovered.shutdown();
    }
}
