//! Reusable invariant checkers.
//!
//! Each function asserts one cross-cutting property the workspace
//! guarantees; tests in several crates call these rather than re-encoding
//! the property locally.

use cs2p_core::engine::{EngineConfig, PredictionEngine};
use cs2p_core::model_io::ModelBundle;
use cs2p_core::{Dataset, ThroughputPredictor};

/// Training must be a pure function of (dataset, config): the number of
/// worker threads must not change a single bit of the resulting model.
///
/// Serializes the bundle trained by `train_sequential` and by `train`
/// with each thread count in `thread_counts`, and requires byte-identical
/// JSON (stronger than structural equality — even field order and float
/// formatting must agree).
pub fn assert_thread_count_independence(
    dataset: &Dataset,
    config: &EngineConfig,
    thread_counts: &[usize],
) {
    let (sequential, _) =
        PredictionEngine::train_sequential(dataset, config).expect("sequential training");
    let baseline = ModelBundle::from_engine(&sequential)
        .to_json()
        .expect("serialize sequential bundle");

    for &n_threads in thread_counts {
        let threaded_config = EngineConfig {
            n_threads,
            ..config.clone()
        };
        let (engine, _) =
            PredictionEngine::train(dataset, &threaded_config).expect("threaded training");
        let json = ModelBundle::from_engine(&engine)
            .to_json()
            .expect("serialize threaded bundle");
        assert_eq!(
            json, baseline,
            "training with n_threads={n_threads} diverged from train_sequential"
        );
    }
}

/// A model bundle must survive serialize → deserialize → predict with
/// *exact* (bitwise) prediction equality. Runs Algorithm 1 over the first
/// `n_sessions` sessions of `test`, `n_epochs` epochs each.
pub fn assert_bundle_roundtrip(
    engine: &PredictionEngine,
    test: &Dataset,
    n_sessions: usize,
    n_epochs: usize,
) {
    let json = ModelBundle::from_engine(engine).to_json().expect("to_json");
    let rebuilt = ModelBundle::from_json(&json)
        .expect("from_json")
        .into_engine();
    // Serializing the rebuilt engine must reproduce the document too.
    let rebuilt_json = ModelBundle::from_engine(&rebuilt)
        .to_json()
        .expect("re-serialize");
    assert_eq!(
        json, rebuilt_json,
        "bundle JSON not stable under round-trip"
    );

    for s in test.sessions().iter().take(n_sessions) {
        let mut a = engine.predictor(&s.features);
        let mut b = rebuilt.predictor(&s.features);
        assert_eq!(
            a.predict_initial(),
            b.predict_initial(),
            "initial prediction diverged after round-trip"
        );
        for &w in s.throughput.iter().take(n_epochs) {
            a.observe(w);
            b.observe(w);
            assert_eq!(
                a.predict_next(),
                b.predict_next(),
                "midstream prediction diverged after round-trip"
            );
        }
    }
}

/// Serving must be concurrency-transparent: K client threads streaming
/// interleaved sessions against a sharded multi-worker server must get
/// *bit-identical* per-session prediction sequences to a single-client
/// run against a single-worker server.
///
/// Starts one baseline server (1 worker, 1 client, **singleton**
/// `/predict` POSTs — `batch` is stripped from the baseline config) and
/// then, for every worker count in `worker_counts`, a fresh server
/// driven with `config.n_clients` concurrent clients; all runs replay
/// the same seeded workload (see [`crate::loadgen`]). When `config.batch`
/// is set, the runs under test ship `/predict_batch` frames, so this
/// additionally proves the batched path bit-equivalent to sequential
/// singleton serving. The server under test is `scenarios::tiny_engine`
/// with generous queue/session bounds so no request is ever rejected —
/// a 503'd measurement would legitimately change a session's filter
/// sequence.
pub fn assert_serving_concurrency_independence(
    worker_counts: &[usize],
    config: &crate::loadgen::LoadConfig,
) {
    use crate::loadgen::{run_load, LoadConfig};
    use cs2p_net::{serve_with, ServeConfig};

    fn roomy(n_workers: usize) -> ServeConfig {
        ServeConfig {
            n_workers,
            queue_depth: 4096,
            max_sessions: 1 << 20,
            session_ttl_requests: None,
            ..ServeConfig::default()
        }
    }

    let baseline_server =
        serve_with(crate::scenarios::tiny_engine(), "127.0.0.1:0", roomy(1)).expect("baseline");
    let baseline_config = LoadConfig {
        n_clients: 1,
        batch: None,
        ..config.clone()
    };
    let baseline = run_load(baseline_server.addr(), &baseline_config);
    baseline_server.shutdown();
    assert_eq!(
        baseline.ok,
        baseline_config.total_requests(),
        "baseline run must not drop requests (rejected={}, errors={})",
        baseline.rejected,
        baseline.errors
    );

    for &n_workers in worker_counts {
        let server = serve_with(
            crate::scenarios::tiny_engine(),
            "127.0.0.1:0",
            roomy(n_workers),
        )
        .unwrap_or_else(|e| panic!("server with {n_workers} workers: {e}"));
        let report = run_load(server.addr(), config);
        server.shutdown();
        assert_eq!(
            report.ok,
            config.total_requests(),
            "run with n_workers={n_workers} dropped requests (rejected={}, errors={})",
            report.rejected,
            report.errors
        );
        assert_eq!(
            report.predictions, baseline.predictions,
            "per-session predictions diverged with n_workers={n_workers}, \
             n_clients={}",
            config.n_clients
        );
    }
}

/// The playback simulator must be deterministic: the same trace,
/// predictor construction, and ABR must give the same outcome twice.
///
/// `run` builds and executes one playback and returns its outcome; the
/// checker simply calls it twice and requires equality, so any closure
/// capturing only deterministic state can be checked.
pub fn assert_simulator_deterministic<F>(mut run: F)
where
    F: FnMut() -> cs2p_abr::SessionOutcome,
{
    let first = run();
    let second = run();
    assert_eq!(first, second, "simulator outcome changed between runs");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use cs2p_abr::{simulate, FixedBitrate, SimConfig};
    use cs2p_core::NoisyOracle;

    #[test]
    fn thread_independence_holds_on_the_two_regime_dataset() {
        let d = scenarios::two_regime_dataset(30, 11);
        let config = scenarios::two_regime_config();
        assert_thread_count_independence(&d, &config, &[1, 2]);
    }

    #[test]
    fn bundle_roundtrip_holds_on_the_two_regime_dataset() {
        let d = scenarios::two_regime_dataset(30, 12);
        let (engine, _) = PredictionEngine::train(&d, &scenarios::two_regime_config()).unwrap();
        assert_bundle_roundtrip(&engine, &d, 10, 5);
    }

    #[test]
    fn fixed_bitrate_playback_is_deterministic() {
        let trace = scenarios::adequate_trace(60, 5.0, 4);
        assert_simulator_deterministic(|| {
            let mut oracle = NoisyOracle::new(trace.clone(), 0.1, 7);
            let mut abr = FixedBitrate::new(1);
            simulate(&trace, 6.0, &mut oracle, &mut abr, &SimConfig::default())
        });
    }
}
