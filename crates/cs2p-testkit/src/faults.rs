//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded schedule of transport faults keyed by
//! connection sequence number. Installed as a
//! [`cs2p_net::TransportWrapper`] (client side via
//! `HttpClient::with_transport_wrapper`, server side via
//! `ServeConfig::transport_wrapper`), it wraps each scheduled
//! connection's read/write halves in a `FaultyStream` that injects
//! exactly one fault at a byte-deterministic point:
//!
//! - **connection reset** mid-response ([`FaultAction::ResetAfterReadBytes`]);
//! - **partial write + reset** mid-request ([`FaultAction::ResetAfterWriteBytes`]);
//! - **frame truncation** — bytes silently dropped while the connection
//!   stays open ([`FaultAction::TruncateWritesAfter`]);
//! - **frame corruption** — one byte XOR `0xFF`
//!   ([`FaultAction::CorruptWriteByte`]);
//! - **slow-client byte-dribbling** — writes capped at one byte
//!   ([`FaultAction::DribbleWrites`]);
//! - **injected delay** through the injectable clock
//!   ([`FaultAction::DelayReads`]).
//!
//! Every fault that actually *fires* is counted per class in the plan's
//! shared [`FaultTally`], which is what lets a chaos run assert the
//! accounting identity *faults injected == faults observed + survived*.
//! Forced store evictions — the sixth fault class — go through
//! [`cs2p_net::ServerHandle::force_evict`] rather than the transport and
//! are scheduled by [`run_chaos`].
//!
//! [`run_chaos`] drives the loadgen workload (same payloads, same
//! round-robin session partitioning as [`crate::loadgen::run_load`])
//! through seeded per-client fault plans with the production client
//! retry path, and returns a [`ChaosReport`] with everything the
//! `chaos_soak` suite needs to check the invariants. Thresholds in
//! seeded plans are kept below the size of the first request/response on
//! a connection, so an armed error fault always fires mid-frame — never
//! ambiguously at a frame boundary.

use crate::loadgen::{LoadConfig, LoadReport};
use cs2p_net::http::Request;
use cs2p_net::protocol::{
    BatchPredictRequest, BatchPredictResponse, PredictRequest, PredictResponse,
};
use cs2p_net::{BoxTransport, HttpClient, RetryPolicy, ServerHandle, TransportWrapper};
use cs2p_obs::ManualClock;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One fault, applied to one connection. Byte thresholds are absolute
/// offsets into that connection's read or write stream, so the firing
/// point is deterministic for a deterministic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Read half: fail with `ConnectionReset` once this many bytes have
    /// been read (a reset mid-response; the connection goes dead).
    ResetAfterReadBytes(u64),
    /// Write half: fail with `BrokenPipe` once this many bytes have been
    /// written (a partial write mid-request; the connection goes dead).
    ResetAfterWriteBytes(u64),
    /// Write half: silently drop every byte after the first N while the
    /// connection stays open — frame truncation. The peer is left
    /// waiting for bytes that never come.
    TruncateWritesAfter(u64),
    /// Write half: XOR `0xFF` into the byte at this absolute write
    /// offset — frame corruption. Offsets 0..4 hit the HTTP method and
    /// always produce an unparseable (non-UTF-8) request line.
    CorruptWriteByte(u64),
    /// Write half: cap every write at one byte (slow dribble), advancing
    /// the plan's manual clock by this many µs per write when one is
    /// installed.
    DribbleWrites {
        /// Clock advance per dribbled write (0 = byte-capping only).
        advance_us_per_write: u64,
    },
    /// Read half: advance the plan's manual clock before every read —
    /// injected delay. Server-side, with the plan clock shared with
    /// `ServeConfig::clock`, an advance larger than the slow-peer budget
    /// deterministically forces a slow-peer abort.
    DelayReads {
        /// Clock advance per read call.
        advance_us_per_read: u64,
    },
}

/// Monotone per-class counts of faults that actually fired, shared
/// between all `FaultyStream`s of one or more [`FaultPlan`]s.
#[derive(Debug, Default)]
pub struct FaultTally {
    resets_read: AtomicU64,
    resets_write: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
    dribbles: AtomicU64,
    delays: AtomicU64,
}

/// A point-in-time copy of a [`FaultTally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connections reset mid-read.
    pub resets_read: u64,
    /// Connections reset mid-write.
    pub resets_write: u64,
    /// Connections whose writes were truncated.
    pub truncations: u64,
    /// Connections with a corrupted byte actually sent.
    pub corruptions: u64,
    /// Connections that dribbled at least one write.
    pub dribbles: u64,
    /// Connections that injected at least one read delay.
    pub delays: u64,
}

impl FaultCounts {
    /// Faults that must each surface as exactly one client-visible
    /// transport failure (resets and truncations).
    pub fn transport_failures(&self) -> u64 {
        self.resets_read + self.resets_write + self.truncations
    }

    /// All error-class faults (transport failures plus corruptions).
    pub fn error_class_total(&self) -> u64 {
        self.transport_failures() + self.corruptions
    }

    /// Faults a healthy stack survives without any failure (dribbles and
    /// in-budget delays).
    pub fn survivable_total(&self) -> u64 {
        self.dribbles + self.delays
    }
}

impl FaultTally {
    /// Copies the current counts.
    pub fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            resets_read: self.resets_read.load(Ordering::Relaxed),
            resets_write: self.resets_write.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            dribbles: self.dribbles.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }
}

/// A deterministic fault schedule: at most one [`FaultAction`] per
/// connection sequence number. Implements [`TransportWrapper`], so it
/// plugs straight into `ServeConfig` or `HttpClient`; connections with
/// no scheduled fault pass through unwrapped.
pub struct FaultPlan {
    scripts: BTreeMap<u64, FaultAction>,
    clock: Option<Arc<ManualClock>>,
    tally: Arc<FaultTally>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan (every connection passes through untouched).
    pub fn new() -> Self {
        FaultPlan {
            scripts: BTreeMap::new(),
            clock: None,
            tally: Arc::new(FaultTally::default()),
        }
    }

    /// Schedules `action` on connection `conn_seq` (replacing any
    /// previous action for that connection).
    pub fn fault(mut self, conn_seq: u64, action: FaultAction) -> Self {
        self.scripts.insert(conn_seq, action);
        self
    }

    /// Installs the manual clock that `DribbleWrites`/`DelayReads`
    /// advance — share it with `ServeConfig::clock` to drive the
    /// server's slow-peer deadline deterministically.
    pub fn with_clock(mut self, clock: Arc<ManualClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Shares a tally across several plans (e.g. one per chaos client).
    pub fn with_tally(mut self, tally: Arc<FaultTally>) -> Self {
        self.tally = tally;
        self
    }

    /// The tally this plan's fired faults are counted in.
    pub fn tally(&self) -> Arc<FaultTally> {
        Arc::clone(&self.tally)
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.scripts.len()
    }

    /// A seeded random plan over connections `0..n_conns`: each is
    /// faulted with probability `chance_percent`, drawing uniformly from
    /// the reset/truncate/corrupt/dribble classes. Thresholds stay below
    /// the first frame's size (requests ≥ ~110 bytes, responses ≥ ~90),
    /// so a fired fault always lands mid-frame — see the module docs for
    /// why that keeps chaos accounting exact.
    pub fn seeded(seed: u64, n_conns: u64, chance_percent: u8) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA_017_7AB);
        let mut plan = FaultPlan::new();
        for conn in 0..n_conns {
            if rng.gen_range(0..100u8) >= chance_percent.min(100) {
                continue;
            }
            let action = match rng.gen_range(0..5u8) {
                0 => FaultAction::ResetAfterReadBytes(rng.gen_range(5..60)),
                1 => FaultAction::ResetAfterWriteBytes(rng.gen_range(5..90)),
                2 => FaultAction::TruncateWritesAfter(rng.gen_range(5..90)),
                3 => FaultAction::CorruptWriteByte(rng.gen_range(0..4)),
                _ => FaultAction::DribbleWrites {
                    advance_us_per_write: 0,
                },
            };
            plan.scripts.insert(conn, action);
        }
        plan
    }
}

impl TransportWrapper for FaultPlan {
    fn wrap(
        &self,
        conn_seq: u64,
        read: BoxTransport,
        write: BoxTransport,
    ) -> (BoxTransport, BoxTransport) {
        let Some(&action) = self.scripts.get(&conn_seq) else {
            return (read, write);
        };
        let state = Arc::new(ConnState {
            action,
            fired: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            read_bytes: AtomicU64::new(0),
            written_bytes: AtomicU64::new(0),
            tally: Arc::clone(&self.tally),
            clock: self.clock.clone(),
        });
        (
            Box::new(FaultyStream {
                inner: read,
                state: Arc::clone(&state),
            }),
            Box::new(FaultyStream {
                inner: write,
                state,
            }),
        )
    }
}

/// State shared by the two halves of one faulted connection.
struct ConnState {
    action: FaultAction,
    /// The fault fired (counted exactly once per connection).
    fired: AtomicBool,
    /// A reset fault fired: every further operation on either half fails.
    dead: AtomicBool,
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
    tally: Arc<FaultTally>,
    clock: Option<Arc<ManualClock>>,
}

impl ConnState {
    /// Counts the fault into `counter` the first time it fires.
    fn fire(&self, counter: &AtomicU64) {
        if !self.fired.swap(true, Ordering::Relaxed) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn injected_err(kind: io::ErrorKind) -> io::Error {
        io::Error::new(kind, "injected fault")
    }
}

/// One wrapped half of a faulted connection. Which faults apply is
/// decided by the operation (`read` vs `write`), so the same type serves
/// both halves.
struct FaultyStream {
    inner: BoxTransport,
    state: Arc<ConnState>,
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let s = &self.state;
        if s.dead.load(Ordering::Relaxed) {
            return Err(ConnState::injected_err(io::ErrorKind::ConnectionReset));
        }
        match s.action {
            FaultAction::ResetAfterReadBytes(limit) => {
                let done = s.read_bytes.load(Ordering::Relaxed);
                if done >= limit {
                    s.fire(&s.tally.resets_read);
                    s.dead.store(true, Ordering::Relaxed);
                    return Err(ConnState::injected_err(io::ErrorKind::ConnectionReset));
                }
                // Never read past the threshold, so the reset lands at a
                // byte-exact, workload-independent point.
                let cap = buf.len().min((limit - done) as usize);
                let n = self.inner.read(&mut buf[..cap])?;
                s.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            FaultAction::DelayReads {
                advance_us_per_read,
            } => {
                if let Some(clock) = &s.clock {
                    clock.advance(advance_us_per_read);
                }
                s.fire(&s.tally.delays);
                self.inner.read(buf)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let s = &self.state;
        if s.dead.load(Ordering::Relaxed) {
            return Err(ConnState::injected_err(io::ErrorKind::BrokenPipe));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match s.action {
            FaultAction::ResetAfterWriteBytes(limit) => {
                let done = s.written_bytes.load(Ordering::Relaxed);
                if done >= limit {
                    s.fire(&s.tally.resets_write);
                    s.dead.store(true, Ordering::Relaxed);
                    return Err(ConnState::injected_err(io::ErrorKind::BrokenPipe));
                }
                let cap = buf.len().min((limit - done) as usize);
                let n = self.inner.write(&buf[..cap])?;
                s.written_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            FaultAction::TruncateWritesAfter(limit) => {
                let done = s.written_bytes.load(Ordering::Relaxed);
                if done >= limit {
                    // Claim success, deliver nothing; the connection
                    // stays open so the peer waits for the missing bytes.
                    s.fire(&s.tally.truncations);
                    s.written_bytes
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    return Ok(buf.len());
                }
                let cap = buf.len().min((limit - done) as usize);
                let n = self.inner.write(&buf[..cap])?;
                s.written_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            FaultAction::CorruptWriteByte(offset) => {
                let done = s.written_bytes.load(Ordering::Relaxed);
                let end = done + buf.len() as u64;
                let n = if (done..end).contains(&offset) {
                    let mut copy = buf.to_vec();
                    copy[(offset - done) as usize] ^= 0xFF;
                    let n = self.inner.write(&copy)?;
                    if done + n as u64 > offset {
                        s.fire(&s.tally.corruptions);
                    }
                    n
                } else {
                    self.inner.write(buf)?
                };
                s.written_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            FaultAction::DribbleWrites {
                advance_us_per_write,
            } => {
                if let Some(clock) = &s.clock {
                    clock.advance(advance_us_per_write);
                }
                s.fire(&s.tally.dribbles);
                let n = self.inner.write(&buf[..1])?;
                s.written_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(ConnState::injected_err(io::ErrorKind::BrokenPipe));
        }
        self.inner.flush()
    }
}

/// Shape of a [`run_chaos`] run: the loadgen workload plus the fault
/// schedule parameters. Everything is derived from `load.seed`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The underlying workload (payloads, sessions, partitioning are
    /// identical to [`crate::loadgen::run_load`] with this config).
    pub load: LoadConfig,
    /// Percent of clients that get a fault plan (the rest stay clean;
    /// their sessions must come out bit-identical to a fault-free run).
    pub chaotic_client_percent: u8,
    /// Connections `0..n` of each chaotic client eligible for a fault.
    pub faulty_conns_per_client: u64,
    /// Per-connection fault probability for chaotic clients.
    pub fault_chance_percent: u8,
    /// Force-evict each chaotic client's sessions right before this
    /// epoch's request (must be ≥ 1); `None` disables forced evictions.
    pub evict_before_epoch: Option<usize>,
    /// Client retry policy (seed is re-derived per client).
    pub retry: RetryPolicy,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            load: LoadConfig::default(),
            chaotic_client_percent: 50,
            faulty_conns_per_client: 4,
            fault_chance_percent: 60,
            evict_before_epoch: Some(2),
            retry: RetryPolicy {
                max_attempts: 6,
                base_backoff: std::time::Duration::from_micros(500),
                max_backoff: std::time::Duration::from_millis(5),
                seed: 0,
            },
        }
    }
}

/// What a [`run_chaos`] run did and saw, with everything needed for the
/// fault-accounting identity.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Per-request outcomes and per-session predictions (same shape as a
    /// loadgen report).
    pub load: LoadReport,
    /// Error statuses (400/405) observed — each corresponds to one fired
    /// corruption.
    pub error_statuses: u64,
    /// `force_evict` calls that actually evicted a session.
    pub forced_evictions: u64,
    /// Requests abandoned after exhausting every retry layer.
    pub gave_up: u64,
    /// Client indices that ran with a fault plan.
    pub chaotic_clients: Vec<usize>,
    /// Sessions owned by clean clients — these must be bit-identical to
    /// a fault-free run.
    pub clean_sessions: Vec<u64>,
    /// Fired-fault counts across all clients.
    pub fired: FaultCounts,
}

/// Hard cap on harness-level resends of one logical request (on top of
/// the client's own transport retries).
const MAX_HARNESS_ATTEMPTS: u32 = 8;

/// Runs the loadgen workload against `server` with seeded per-client
/// fault plans and forced mid-session evictions, retrying every request
/// until it succeeds (or the attempt caps run out — counted, never
/// panicking). Clean clients send byte-for-byte the same traffic as
/// [`crate::loadgen::run_load`] with `config.load`.
pub fn run_chaos(server: &ServerHandle, config: &ChaosConfig) -> ChaosReport {
    let addr = server.addr();
    let n_clients = config.load.n_clients.max(1);
    let tally = Arc::new(FaultTally::default());
    let chaotic: Vec<bool> = (0..n_clients)
        .map(|idx| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.load.seed ^ (idx as u64).wrapping_mul(0xC4A0_5EED_0000_0001),
            );
            rng.gen_range(0..100u8) < config.chaotic_client_percent
        })
        .collect();

    let mut report = ChaosReport::default();
    let partial: Vec<ChaosReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|idx| {
                let tally = Arc::clone(&tally);
                let is_chaotic = chaotic[idx];
                scope.spawn(move || run_chaos_client(server, addr, config, idx, is_chaotic, tally))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client panicked"))
            .collect()
    });
    for p in partial {
        report.load.sent += p.load.sent;
        report.load.ok += p.load.ok;
        report.load.rejected += p.load.rejected;
        report.load.reinit += p.load.reinit;
        report.load.errors += p.load.errors;
        report.load.predictions.extend(p.load.predictions);
        report.error_statuses += p.error_statuses;
        report.forced_evictions += p.forced_evictions;
        report.gave_up += p.gave_up;
    }
    for (idx, &is_chaotic) in chaotic.iter().enumerate() {
        let sessions = (0..config.load.n_sessions as u64)
            .filter(|s| (*s as usize) % n_clients == idx)
            .map(|s| config.load.session_id_base + s);
        if is_chaotic {
            report.chaotic_clients.push(idx);
        } else {
            report.clean_sessions.extend(sessions);
        }
    }
    report.fired = tally.snapshot();
    report
}

fn run_chaos_client(
    server: &ServerHandle,
    addr: std::net::SocketAddr,
    config: &ChaosConfig,
    client_idx: usize,
    is_chaotic: bool,
    tally: Arc<FaultTally>,
) -> ChaosReport {
    let mut report = ChaosReport::default();
    let mut client = HttpClient::new(addr).with_retry(RetryPolicy {
        seed: config.retry.seed ^ (client_idx as u64) << 17,
        ..config.retry.clone()
    });
    if is_chaotic {
        let plan = FaultPlan::seeded(
            config.load.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            config.faulty_conns_per_client,
            config.fault_chance_percent,
        )
        .with_tally(tally);
        client = client.with_transport_wrapper(Arc::new(plan));
    }

    let sessions: Vec<u64> = (0..config.load.n_sessions as u64)
        .filter(|s| (*s as usize) % config.load.n_clients.max(1) == client_idx)
        .map(|s| config.load.session_id_base + s)
        .collect();
    let observations: BTreeMap<u64, Vec<f64>> = sessions
        .iter()
        .map(|&id| (id, config.load.observations_of(id)))
        .collect();

    if config.load.batch.is_some() {
        run_chaos_client_batched(
            server,
            config,
            client_idx,
            is_chaotic,
            &mut client,
            &sessions,
            &observations,
            &mut report,
        );
        return report;
    }

    for epoch in 0..config.load.epochs_per_session {
        for &id in &sessions {
            if is_chaotic && epoch > 0 && config.evict_before_epoch == Some(epoch) {
                // Forced store eviction mid-session: the next request for
                // this session must come back 404 and re-register.
                if server.force_evict(id) {
                    report.forced_evictions += 1;
                }
            }
            let preq = PredictRequest {
                session_id: id,
                features: (epoch == 0).then(|| LoadConfig::features_of(id)),
                measured_mbps: (epoch > 0).then(|| observations[&id][epoch - 1]),
                horizon: config.load.horizon,
            };
            drive_request(&mut client, &preq, id, &mut report);
        }
    }
    report
}

/// The batched chaos client: the same logical entries as the singleton
/// path, chunked into `/predict_batch` frames by the loadgen's seeded
/// size distribution (same seed derivation, so frame boundaries match a
/// fault-free batched run). Faults fire *mid-frame*: a killed frame is
/// resent whole — safe, because an error-class fault prevents the server
/// from applying any entry (a reset mid-response can double-apply, which
/// only chaotic sessions see, exactly like the singleton path). Forced
/// evictions land right before the frame carrying the victim's
/// `evict_before_epoch` entry, so the eviction surfaces as a per-entry
/// 404 inside a 200 frame; the entry is then replayed as a singleton
/// re-registration carrying the same measurement.
#[allow(clippy::too_many_arguments)]
fn run_chaos_client_batched(
    server: &ServerHandle,
    config: &ChaosConfig,
    client_idx: usize,
    is_chaotic: bool,
    client: &mut HttpClient,
    sessions: &[u64],
    observations: &BTreeMap<u64, Vec<f64>>,
    report: &mut ChaosReport,
) {
    let spec = config.load.batch.as_ref().expect("batched driver");
    let lo = spec.min_entries.max(1);
    let hi = spec.max_entries.max(lo);
    // Same derivation as loadgen's batched mode: frame boundaries are a
    // pure function of (seed, client index).
    let mut sizes =
        ChaCha8Rng::seed_from_u64(config.load.seed ^ ((client_idx as u64) << 24) ^ 0xBA7C_F3A3);

    // The client's whole entry stream, epoch-major, tagged with the
    // epoch so eviction scheduling can find the victims per frame.
    let stream: Vec<(usize, PredictRequest)> = (0..config.load.epochs_per_session)
        .flat_map(|epoch| {
            sessions.iter().map(move |&id| {
                (
                    epoch,
                    PredictRequest {
                        session_id: id,
                        features: (epoch == 0).then(|| LoadConfig::features_of(id)),
                        measured_mbps: (epoch > 0).then(|| observations[&id][epoch - 1]),
                        horizon: config.load.horizon,
                    },
                )
            })
        })
        .collect();

    let mut i = 0;
    while i < stream.len() {
        let n = sizes.gen_range(lo..=hi).min(stream.len() - i);
        let frame = &stream[i..i + n];
        i += n;

        if is_chaotic {
            if let Some(evict_epoch) = config.evict_before_epoch {
                for (k, (epoch, entry)) in frame.iter().enumerate() {
                    // Only evict when the victim has no earlier-epoch
                    // entry in this same frame: evicting under such an
                    // entry would 404 a request the schedule never meant
                    // to hit, breaking the one-reinit-per-eviction
                    // identity.
                    let earlier_in_frame = frame[..k]
                        .iter()
                        .any(|(_, e)| e.session_id == entry.session_id);
                    if *epoch == evict_epoch
                        && !earlier_in_frame
                        && server.force_evict(entry.session_id)
                    {
                        report.forced_evictions += 1;
                    }
                }
            }
        }
        drive_batch_frame(client, frame, report);
    }
}

/// Sends one batch frame until the server answers it 200, then books
/// every entry: a 200 entry records its prediction; a 404 entry (the
/// session was force-evicted) books a re-registration and replays as a
/// singleton request carrying the same measurement plus features.
fn drive_batch_frame(
    client: &mut HttpClient,
    frame: &[(usize, PredictRequest)],
    report: &mut ChaosReport,
) {
    let breq = BatchPredictRequest {
        entries: frame.iter().map(|(_, e)| e.clone()).collect(),
    };
    let body = breq.to_json_bytes();
    for _ in 0..MAX_HARNESS_ATTEMPTS {
        match client.send(&Request::new("POST", "/predict_batch", body.clone())) {
            Ok(resp) if resp.status == 200 => {
                let Ok(bresp) = serde_json::from_slice::<BatchPredictResponse>(&resp.body) else {
                    report.load.errors += breq.entries.len() as u64;
                    return;
                };
                if bresp.results.len() != breq.entries.len() {
                    report.load.errors += breq.entries.len() as u64;
                    return;
                }
                report.load.sent += breq.entries.len() as u64;
                // Sessions already re-registered while booking *this*
                // frame: their later in-frame entries were answered 404
                // by the same response, but replaying them is a plain
                // resend, not another re-registration.
                let mut reregistered = std::collections::BTreeSet::new();
                for (entry, result) in breq.entries.iter().zip(&bresp.results) {
                    match (result.status, &result.response) {
                        (200, Some(presp)) => {
                            report.load.ok += 1;
                            report
                                .load
                                .predictions
                                .entry(entry.session_id)
                                .or_default()
                                .push(presp.predictions_mbps.clone());
                        }
                        (404, _) if entry.measured_mbps.is_some() => {
                            let replay = if reregistered.insert(entry.session_id) {
                                report.load.reinit += 1;
                                PredictRequest {
                                    features: Some(LoadConfig::features_of(entry.session_id)),
                                    ..entry.clone()
                                }
                            } else {
                                entry.clone()
                            };
                            drive_request(client, &replay, entry.session_id, report);
                        }
                        _ => report.load.errors += 1,
                    }
                }
                return;
            }
            Ok(resp) if resp.status == 503 => {
                report.load.rejected += 1;
                client.note_backpressure();
                client.reset_connection();
            }
            Ok(_) => {
                // A corrupted frame's 400/405: the whole frame was
                // refused unapplied — resend it on a fresh connection.
                report.error_statuses += 1;
                client.reset_connection();
            }
            Err(_) => {
                client.reset_connection();
            }
        }
    }
    report.gave_up += 1;
}

/// Sends one logical request until it yields a 200, absorbing 404
/// re-registration, 503 backpressure, corrupted-frame error statuses,
/// and post-retry transport failures.
fn drive_request(
    client: &mut HttpClient,
    preq: &PredictRequest,
    id: u64,
    report: &mut ChaosReport,
) {
    let mut preq = preq.clone();
    for _ in 0..MAX_HARNESS_ATTEMPTS {
        report.load.sent += 1;
        let body = match serde_json::to_vec(&preq) {
            Ok(b) => b,
            Err(_) => {
                report.load.errors += 1;
                return;
            }
        };
        match client.send(&Request::new("POST", "/predict", body)) {
            Ok(resp) if resp.status == 200 => {
                match serde_json::from_slice::<PredictResponse>(&resp.body) {
                    Ok(presp) => {
                        report.load.ok += 1;
                        report
                            .load
                            .predictions
                            .entry(id)
                            .or_default()
                            .push(presp.predictions_mbps);
                    }
                    Err(_) => report.load.errors += 1,
                }
                return;
            }
            Ok(resp) if resp.status == 404 && preq.measured_mbps.is_some() => {
                // Evicted server-side: re-register, keeping the pending
                // measurement so the fresh filter still sees it.
                report.load.reinit += 1;
                preq.features = Some(LoadConfig::features_of(id));
            }
            Ok(resp) if resp.status == 503 => {
                report.load.rejected += 1;
                client.note_backpressure();
                client.reset_connection();
            }
            Ok(_) => {
                // 400/405 from a corrupted frame; the server closed the
                // connection after answering, so start a fresh one.
                report.error_statuses += 1;
                client.reset_connection();
            }
            Err(_) => {
                // The client's own retries were exhausted (counted in
                // client.retry.*); reconnect and try again at this layer.
                client.reset_connection();
            }
        }
    }
    report.gave_up += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs2p_obs::Clock;
    use std::io::Cursor;

    /// In-memory transport half: reads from a cursor, records writes.
    struct MemStream {
        input: Cursor<Vec<u8>>,
        written: Arc<parking_lot::Mutex<Vec<u8>>>,
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn wrapped(
        plan: &FaultPlan,
        conn_seq: u64,
        input: &[u8],
    ) -> (BoxTransport, BoxTransport, Arc<parking_lot::Mutex<Vec<u8>>>) {
        let written = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mk = |w: &Arc<parking_lot::Mutex<Vec<u8>>>| -> BoxTransport {
            Box::new(MemStream {
                input: Cursor::new(input.to_vec()),
                written: Arc::clone(w),
            })
        };
        let (r, w) = plan.wrap(conn_seq, mk(&written), mk(&written));
        (r, w, written)
    }

    #[test]
    fn unscheduled_connections_pass_through() {
        let plan = FaultPlan::new().fault(3, FaultAction::ResetAfterReadBytes(0));
        let (mut r, mut w, written) = wrapped(&plan, 0, b"hello");
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 5);
        w.write_all(b"world").unwrap();
        assert_eq!(&*written.lock(), b"world");
        assert_eq!(plan.tally().snapshot(), FaultCounts::default());
    }

    #[test]
    fn reset_after_read_bytes_fires_once_at_the_threshold() {
        let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterReadBytes(3));
        let (mut r, _w, _) = wrapped(&plan, 0, b"abcdef");
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 3, "capped at the threshold");
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Sticky: the connection stays dead, but the tally counts once.
        assert!(r.read(&mut buf).is_err());
        assert_eq!(plan.tally().snapshot().resets_read, 1);
    }

    #[test]
    fn reset_after_write_bytes_kills_both_halves() {
        let plan = FaultPlan::new().fault(0, FaultAction::ResetAfterWriteBytes(4));
        let (mut r, mut w, written) = wrapped(&plan, 0, b"input");
        assert_eq!(w.write(b"abcdefgh").unwrap(), 4, "partial write");
        assert_eq!(
            w.write(b"efgh").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(&*written.lock(), b"abcd");
        let mut buf = [0u8; 4];
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset,
            "read half must die with the write half"
        );
        assert_eq!(plan.tally().snapshot().resets_write, 1);
    }

    #[test]
    fn truncation_swallows_silently_and_leaves_reads_alive() {
        let plan = FaultPlan::new().fault(0, FaultAction::TruncateWritesAfter(2));
        let (mut r, mut w, written) = wrapped(&plan, 0, b"in");
        w.write_all(b"abcdef").unwrap(); // claims success
        w.flush().unwrap();
        assert_eq!(&*written.lock(), b"ab", "only the first 2 bytes got out");
        let mut buf = [0u8; 2];
        assert_eq!(r.read(&mut buf).unwrap(), 2, "reads keep working");
        assert_eq!(plan.tally().snapshot().truncations, 1);
    }

    #[test]
    fn corruption_flips_exactly_the_scheduled_byte() {
        let plan = FaultPlan::new().fault(0, FaultAction::CorruptWriteByte(6));
        let (_r, mut w, written) = wrapped(&plan, 0, b"");
        w.write_all(b"POST").unwrap(); // bytes 0..4
        w.write_all(b" /predict").unwrap(); // bytes 4..13; offset 6 = 'p'
        let out = written.lock().clone();
        assert_eq!(&out[..4], b"POST");
        assert_eq!(out[6], b'p' ^ 0xFF);
        assert_eq!(out[5], b'/');
        assert_eq!(out[7], b'r');
        assert_eq!(plan.tally().snapshot().corruptions, 1);
    }

    #[test]
    fn dribble_caps_writes_at_one_byte_and_advances_the_clock() {
        let clock = Arc::new(ManualClock::new());
        let plan = FaultPlan::new()
            .fault(
                0,
                FaultAction::DribbleWrites {
                    advance_us_per_write: 10,
                },
            )
            .with_clock(Arc::clone(&clock));
        let (_r, mut w, written) = wrapped(&plan, 0, b"");
        w.write_all(b"abc").unwrap(); // write_all loops over 1-byte writes
        assert_eq!(&*written.lock(), b"abc");
        assert_eq!(clock.now_micros(), 30);
        assert_eq!(plan.tally().snapshot().dribbles, 1, "counted once per conn");
    }

    #[test]
    fn delay_reads_advances_the_clock_per_read() {
        let clock = Arc::new(ManualClock::new());
        let plan = FaultPlan::new()
            .fault(
                0,
                FaultAction::DelayReads {
                    advance_us_per_read: 100,
                },
            )
            .with_clock(Arc::clone(&clock));
        let (mut r, _w, _) = wrapped(&plan, 0, b"xyz");
        let mut one = [0u8; 1];
        assert_eq!(r.read(&mut one).unwrap(), 1);
        assert_eq!(r.read(&mut one).unwrap(), 1);
        assert_eq!(clock.now_micros(), 200);
        assert_eq!(plan.tally().snapshot().delays, 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(9, 16, 60);
        let b = FaultPlan::seeded(9, 16, 60);
        let c = FaultPlan::seeded(10, 16, 60);
        assert_eq!(a.scripts, b.scripts);
        assert_ne!(a.scripts, c.scripts, "different seed, different plan");
        assert!(!a.is_empty(), "60% over 16 conns should schedule faults");
        assert_eq!(FaultPlan::seeded(9, 16, 0).len(), 0);
        assert_eq!(FaultPlan::seeded(9, 16, 100).len(), 16);
    }

    #[test]
    fn shared_tally_aggregates_across_plans() {
        let tally = Arc::new(FaultTally::default());
        for seed in 0..2 {
            let plan = FaultPlan::new()
                .fault(0, FaultAction::ResetAfterReadBytes(0))
                .with_tally(Arc::clone(&tally));
            let (mut r, _w, _) = wrapped(&plan, 0, b"x");
            let mut buf = [0u8; 1];
            assert!(r.read(&mut buf).is_err(), "seed {seed}");
        }
        assert_eq!(tally.snapshot().resets_read, 2);
        assert_eq!(tally.snapshot().transport_failures(), 2);
    }
}
