//! Golden-fixture regression harness.
//!
//! A golden test serializes a value to JSON and compares it against a
//! fixture checked in under `crates/cs2p-testkit/fixtures/`. Comparison
//! is structural and tolerance-aware: numbers may differ by a tiny
//! relative epsilon (so a libm or instruction-scheduling difference does
//! not fail the suite), everything else must match exactly.
//!
//! Regeneration policy (also documented in TESTING.md): run the test
//! with `UPDATE_GOLDEN=1` to rewrite the fixture from current behaviour,
//! then review the diff like any other code change.

use serde::Value;
use std::path::PathBuf;

/// Relative tolerance for comparing numbers inside fixtures.
pub const REL_TOLERANCE: f64 = 1e-9;

/// Absolute floor below which numeric differences are ignored.
pub const ABS_TOLERANCE: f64 = 1e-12;

/// Directory holding the checked-in fixtures.
pub fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

/// Serializes `value` and checks it against the fixture `name`
/// (`fixtures/<name>.json`). Honors `UPDATE_GOLDEN=1`.
pub fn check_golden_value<T: serde::Serialize>(name: &str, value: &T) {
    let json = serde_json::to_string(value).expect("golden value serializes");
    check_golden(name, &json);
}

/// Checks a pre-serialized JSON document against the fixture `name`.
///
/// Panics with a precise node path on mismatch; with regeneration
/// instructions if the fixture is missing.
pub fn check_golden(name: &str, actual_json: &str) {
    let path = fixtures_dir().join(format!("{name}.json"));
    let actual = serde_json::parse(actual_json)
        .unwrap_or_else(|e| panic!("golden `{name}`: actual output is not valid JSON: {e}"));

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(fixtures_dir()).expect("create fixtures dir");
        std::fs::write(&path, actual_json).expect("write golden fixture");
        eprintln!("golden `{name}`: fixture regenerated at {}", path.display());
        return;
    }

    let expected_text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden `{name}`: fixture {} is missing.\n\
             Generate it with: UPDATE_GOLDEN=1 cargo test -p <crate> {name}",
            path.display()
        )
    });
    let expected = serde_json::parse(&expected_text)
        .unwrap_or_else(|e| panic!("golden `{name}`: fixture is not valid JSON: {e}"));

    if let Err(diff) = approx_eq(&expected, &actual, "$") {
        panic!(
            "golden `{name}` drifted from {}:\n  {diff}\n\
             If the change is intended, regenerate with UPDATE_GOLDEN=1 and review the diff.",
            path.display()
        );
    }
}

/// Structural comparison with numeric tolerance. Returns the first
/// difference as a human-readable `path: explanation`.
pub fn approx_eq(expected: &Value, actual: &Value, path: &str) -> Result<(), String> {
    match (expected, actual) {
        (Value::Null, Value::Null) => Ok(()),
        (Value::Bool(a), Value::Bool(b)) if a == b => Ok(()),
        (Value::Str(a), Value::Str(b)) if a == b => Ok(()),
        (a, b) if is_number(a) && is_number(b) => {
            let (x, y) = (as_f64(a), as_f64(b));
            if numbers_close(x, y) {
                Ok(())
            } else {
                Err(format!("{path}: number {x} != {y}"))
            }
        }
        (Value::Array(a), Value::Array(b)) => {
            if a.len() != b.len() {
                return Err(format!("{path}: array length {} != {}", a.len(), b.len()));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                approx_eq(x, y, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        (Value::Object(a), Value::Object(b)) => {
            if a.len() != b.len() {
                return Err(format!("{path}: object size {} != {}", a.len(), b.len()));
            }
            // Field order is deterministic (declaration order), so walk
            // pairwise — a reorder is a real schema change worth failing.
            for ((ka, va), (kb, vb)) in a.iter().zip(b) {
                if ka != kb {
                    return Err(format!("{path}: key `{ka}` != `{kb}`"));
                }
                approx_eq(va, vb, &format!("{path}.{ka}"))?;
            }
            Ok(())
        }
        (a, b) => Err(format!("{path}: {} != {}", a.kind(), b.kind())),
    }
}

fn is_number(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::UInt(_) | Value::Float(_))
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        _ => unreachable!("checked by is_number"),
    }
}

fn numbers_close(x: f64, y: f64) -> bool {
    if x == y {
        return true;
    }
    if x.is_nan() && y.is_nan() {
        return true;
    }
    let diff = (x - y).abs();
    diff <= ABS_TOLERANCE || diff <= REL_TOLERANCE * x.abs().max(y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::parse(s).unwrap()
    }

    #[test]
    fn tolerance_accepts_tiny_numeric_drift() {
        let a = parse(r#"{"x":[1.0,2.0],"y":"s"}"#);
        let b = parse(r#"{"x":[1.0000000000001,2.0],"y":"s"}"#);
        assert!(approx_eq(&a, &b, "$").is_ok());
    }

    #[test]
    fn real_differences_are_reported_with_a_path() {
        let a = parse(r#"{"x":[1.0,2.0]}"#);
        let b = parse(r#"{"x":[1.0,2.5]}"#);
        let err = approx_eq(&a, &b, "$").unwrap_err();
        assert!(err.contains("$.x[1]"), "{err}");

        let c = parse(r#"{"x":1}"#);
        let d = parse(r#"{"y":1}"#);
        assert!(approx_eq(&c, &d, "$").is_err());

        let e = parse("[1,2]");
        let f = parse("[1,2,3]");
        assert!(approx_eq(&e, &f, "$").unwrap_err().contains("length"));
    }

    #[test]
    fn int_float_cross_representation_compares_numerically() {
        assert!(approx_eq(&parse("3"), &parse("3.0"), "$").is_ok());
        assert!(approx_eq(&parse("null"), &parse("null"), "$").is_ok());
        assert!(approx_eq(&parse("null"), &parse("0.0"), "$").is_err());
    }
}
