//! Crash harness for the durability layer: a seeded process-death model
//! over `cs2p-net`'s WAL commit points, plus a scoped temp directory.
//!
//! A "crash" here is in-process: a [`CrashPlan`] installed as the
//! server's [`WalFaultHook`] kills the WAL at an exact commit point —
//! everything committed before it is on disk, everything after is
//! silently dropped, exactly the state a `kill -9` (or a torn page on
//! power loss, via [`CrashPlan::torn_at_commit`]) leaves behind. The
//! server keeps serving from memory until shut down, which lets a test
//! drive a known request stream past the kill point and then recover
//! with `ServerHandle::open_or_recover`, comparing against a control
//! server that was only fed the committed prefix.
//!
//! Determinism: the kill point is either explicit or derived from a seed
//! (ChaCha8), and the commit counter is the WAL's own — the same request
//! stream with the same `commit_every_records` crashes in the same place
//! on every run.

use cs2p_net::persist::{CommitOutcome, WalFaultHook};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A process-unique scratch directory removed on drop. Std-only (the
/// workspace vendors no `tempfile`): `$TMPDIR/cs2p-<tag>-<pid>-<seq>`.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh empty directory tagged `tag`.
    pub fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "cs2p-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

enum CrashMode {
    /// Let every commit through (a control plan; also useful to count
    /// commit points before choosing where to crash on the next run).
    Observe,
    /// Die before commit `at` reaches the disk.
    KillAt { at: u64 },
    /// Write a seeded prefix of commit `at`'s batch, then die.
    TornAt { at: u64, seed: u64 },
}

/// A deterministic crash plan over WAL commit points (see the module
/// docs). Install via `PersistConfig::fault_hook`.
pub struct CrashPlan {
    mode: CrashMode,
    commits: AtomicU64,
    killed: AtomicBool,
}

impl CrashPlan {
    /// A plan that never crashes but counts commit points — run the
    /// workload once under this to learn the commit count, then crash a
    /// second run anywhere inside it.
    pub fn observe() -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            mode: CrashMode::Observe,
            commits: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        })
    }

    /// Kills the process model at commit point `at` (0-based): commits
    /// `0..at` reach the disk, commit `at` and everything after are lost.
    pub fn kill_at_commit(at: u64) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            mode: CrashMode::KillAt { at },
            commits: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        })
    }

    /// Like [`kill_at_commit`](Self::kill_at_commit), but commit `at`
    /// tears: a seeded strict prefix of its bytes reaches the disk — the
    /// torn-write shape recovery must truncate, never trip over.
    pub fn torn_at_commit(at: u64, seed: u64) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            mode: CrashMode::TornAt { at, seed },
            commits: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        })
    }

    /// A seeded crash somewhere in `[0, max_commits)`: half the seeds
    /// kill clean, half tear the final commit. Use after an
    /// [`observe`](Self::observe) run has measured `max_commits`.
    pub fn seeded(seed: u64, max_commits: u64) -> Arc<CrashPlan> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A5_11D0);
        let at = rng.gen_range(0..max_commits.max(1));
        if rng.gen_range(0..2u8) == 0 {
            Self::kill_at_commit(at)
        } else {
            Self::torn_at_commit(at, rng.gen_range(0..u64::MAX))
        }
    }

    /// Commit points this plan has seen (attempted commits, including
    /// the one it killed).
    pub fn commits_seen(&self) -> u64 {
        self.commits.load(Ordering::SeqCst)
    }

    /// Whether the crash has fired yet.
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }
}

impl WalFaultHook for CrashPlan {
    fn on_commit(&self, commit_index: u64, batch: &[u8]) -> CommitOutcome {
        self.commits.fetch_add(1, Ordering::SeqCst);
        match self.mode {
            CrashMode::Observe => CommitOutcome::Write,
            CrashMode::KillAt { at } if commit_index == at => {
                self.killed.store(true, Ordering::SeqCst);
                CommitOutcome::Kill
            }
            CrashMode::TornAt { at, seed } if commit_index == at => {
                self.killed.store(true, Ordering::SeqCst);
                // A strict prefix: tearing all of the batch would be a
                // clean commit, tearing 0 bytes is a plain kill — both
                // are covered by the other modes.
                let len = if batch.len() > 1 {
                    ChaCha8Rng::seed_from_u64(seed).gen_range(1..batch.len())
                } else {
                    0
                };
                CommitOutcome::ShortWrite(len)
            }
            _ => CommitOutcome::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_removed() {
        let first = TempDir::new("t");
        let second = TempDir::new("t");
        assert_ne!(first.path(), second.path());
        let kept = first.path().to_path_buf();
        assert!(kept.is_dir());
        drop(first);
        assert!(!kept.exists());
    }

    #[test]
    fn kill_plan_fires_exactly_once_at_its_commit() {
        let plan = CrashPlan::kill_at_commit(2);
        assert_eq!(plan.on_commit(0, b"a"), CommitOutcome::Write);
        assert_eq!(plan.on_commit(1, b"b"), CommitOutcome::Write);
        assert!(!plan.killed());
        assert_eq!(plan.on_commit(2, b"c"), CommitOutcome::Kill);
        assert!(plan.killed());
        assert_eq!(plan.commits_seen(), 3);
    }

    #[test]
    fn torn_plan_writes_a_strict_prefix() {
        for seed in 0..32u64 {
            let plan = CrashPlan::torn_at_commit(0, seed);
            let batch = vec![0u8; 64];
            match plan.on_commit(0, &batch) {
                CommitOutcome::ShortWrite(n) => assert!(n >= 1 && n < batch.len()),
                other => panic!("expected a short write, got {other:?}"),
            }
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..16u64 {
            let a = CrashPlan::seeded(seed, 10);
            let b = CrashPlan::seeded(seed, 10);
            let batch = vec![1u8; 32];
            for i in 0..10 {
                assert_eq!(
                    a.on_commit(i, &batch),
                    b.on_commit(i, &batch),
                    "seed {seed}"
                );
            }
            assert!(a.killed(), "every seeded plan crashes within range");
        }
    }
}
