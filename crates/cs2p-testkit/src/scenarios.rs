//! Deterministic scenario builders.
//!
//! Every function here is a pure function of its arguments: the same call
//! yields the same world, dataset, or model in every test, on every run.
//! Tests across the workspace share these instead of hand-rolling their
//! own generators, so "the small two-regime dataset" or "the e2e
//! materials" mean the same thing everywhere.

use cs2p_core::engine::{EngineConfig, PredictionEngine};
use cs2p_core::{Dataset, FeatureSchema, FeatureVector, Session};
use cs2p_ml::hmm::{train, Hmm, TrainConfig};
use cs2p_trace::synth::{generate, SynthConfig};
use cs2p_trace::world::WorldConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A compact world for property tests and smoke runs: a couple of ISPs
/// and servers, small prefix table, deterministic in `seed`.
pub fn small_world(seed: u64) -> WorldConfig {
    WorldConfig {
        n_isps: 2,
        n_provinces: 2,
        cities_per_province: 1,
        n_servers: 2,
        n_prefixes: 24,
        ases_per_isp: 2,
        n_states: 3,
        seed,
        drift: 0.0,
    }
}

/// The synthesis config used by compact scenarios: `n_sessions` sessions
/// over two days in [`small_world`]`(seed)`.
pub fn small_synth(n_sessions: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        n_sessions,
        seed,
        world: small_world(seed),
        ..Default::default()
    }
}

/// Two ISPs with clearly separated throughput regimes (≈2 Mbps vs
/// ≈8 Mbps); the city feature is pure noise. The canonical dataset for
/// "does clustering separate what should be separated" tests.
pub fn two_regime_dataset(n_per_isp: usize, seed: u64) -> Dataset {
    let schema = FeatureSchema::new(vec!["isp", "city"]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sessions = Vec::new();
    for isp in 0..2u32 {
        let base = if isp == 0 { 2.0 } else { 8.0 };
        for k in 0..n_per_isp {
            let city = rng.gen_range(0..4u32);
            let tp: Vec<f64> = (0..20)
                .map(|_| (base + rng.gen_range(-0.3..0.3f64)).max(0.05))
                .collect();
            sessions.push(Session::new(
                (isp as u64) * 10_000 + k as u64,
                FeatureVector(vec![isp, city]),
                k as u64 * 30,
                6,
                tp,
            ));
        }
    }
    Dataset::new(schema, sessions)
}

/// The engine configuration matching [`two_regime_dataset`]: one time
/// window, 2 HMM states, thresholds sized for a few dozen sessions.
pub fn two_regime_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.cluster.min_cluster_size = 10;
    config.cluster.candidate_windows = vec![cs2p_core::TimeWindow::All];
    config.cluster.max_est_sessions = 10;
    config.hmm.n_states = 2;
    config.hmm.max_iters = 15;
    config.max_train_sequences = 100;
    config.min_sequence_epochs = 2;
    config
}

/// The 40-session, two-ISP dataset behind [`tiny_engine`]: ISP 0 sits at
/// `1.0 + shift` Mbps, ISP 1 at `5.0 + shift`, constant traces. A nonzero
/// `shift` models the regime drifting between model refreshes — retrain
/// on `tiny_dataset(shift)` and the cluster medians move by `shift`.
pub fn tiny_dataset(shift: f64) -> Dataset {
    let schema = FeatureSchema::new(vec!["isp"]);
    let sessions: Vec<Session> = (0..40)
        .map(|k| {
            let isp = (k % 2) as u32;
            let tp = if isp == 0 { 1.0 } else { 5.0 } + shift;
            Session::new(k, FeatureVector(vec![isp]), k * 50, 6, vec![tp; 8])
        })
        .collect();
    Dataset::new(schema, sessions)
}

/// The training configuration matching [`tiny_dataset`] (also the right
/// `RefreshConfig::train_config` for servers built on [`tiny_engine`]).
pub fn tiny_train_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.cluster.min_cluster_size = 5;
    config.hmm.n_states = 2;
    config.hmm.max_iters = 10;
    config
}

/// The 40-session, two-ISP engine used by server/client failure tests:
/// ISP 0 sits at 1 Mbps, ISP 1 at 5 Mbps, constant traces, trains in
/// milliseconds.
pub fn tiny_engine() -> PredictionEngine {
    PredictionEngine::train(&tiny_dataset(0.0), &tiny_train_config())
        .expect("tiny engine trains")
        .0
}

/// Everything the end-to-end tests share: a generated two-day dataset,
/// its temporal train/test split (train on day 0, test on day 1), and an
/// engine trained on the train half only.
pub struct TrainedScenario {
    /// Day-0 sessions (training).
    pub train: Dataset,
    /// Day-1 sessions (held out).
    pub test: Dataset,
    /// Engine trained on `train` with `config`.
    pub engine: PredictionEngine,
    /// The exact training configuration used.
    pub config: EngineConfig,
}

impl TrainedScenario {
    /// The workspace's end-to-end materials: 2 000 sessions, seed 42,
    /// `EngineConfig::small_data()` with 12 EM iterations. Big enough for
    /// the statistical assertions, small enough to train in seconds.
    pub fn e2e() -> Self {
        Self::generate(2_000, 42)
    }

    /// A smaller variant for golden fixtures and per-crate tests.
    pub fn small() -> Self {
        Self::generate(600, 9)
    }

    /// `n_sessions` over two default-world days with master `seed`,
    /// split at day 1, trained with `small_data` + 12 EM iterations.
    pub fn generate(n_sessions: usize, seed: u64) -> Self {
        let (dataset, _world) = generate(&SynthConfig {
            n_sessions,
            seed,
            ..Default::default()
        });
        let (train, test) = dataset.split_at_day(1);
        let mut config = EngineConfig::small_data();
        config.hmm.max_iters = 12;
        let (engine, _) = PredictionEngine::train(&train, &config).expect("training failed");
        TrainedScenario {
            train,
            test,
            engine,
            config,
        }
    }

    /// Per-session prediction trace on a held-out session: the sequence
    /// of `(prediction_before_epoch, actual)` pairs Algorithm 1 produces.
    /// This is what the golden prediction-trace fixtures record.
    pub fn prediction_trace(&self, session_index: usize) -> Vec<(Option<f64>, f64)> {
        use cs2p_core::ThroughputPredictor;
        let s = self.test.get(session_index);
        let mut p = self.engine.predictor(&s.features);
        let mut out = Vec::new();
        let mut pred = p.predict_initial();
        for &actual in &s.throughput {
            out.push((pred, actual));
            p.observe(actual);
            pred = p.predict_next();
        }
        out
    }
}

/// A reference HMM with known structure: sequences are emitted by a
/// sticky two-state process (≈2 Mbps and ≈8 Mbps), then a model is
/// trained on them. Returns the trained model and the training sequences.
pub fn reference_hmm(seed: u64) -> (Hmm, Vec<Vec<f64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4852_4D4D); // "HRMM"
    let mut seqs = Vec::new();
    for _ in 0..8 {
        let mut state = rng.gen_range(0..2u32);
        let seq: Vec<f64> = (0..30)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    state = 1 - state;
                }
                let base = if state == 0 { 2.0 } else { 8.0 };
                (base + rng.gen_range(-0.4..0.4f64)).max(0.05)
            })
            .collect();
        seqs.push(seq);
    }
    let cfg = TrainConfig {
        n_states: 2,
        max_iters: 20,
        ..Default::default()
    };
    let (hmm, _report) = train(&seqs, &cfg).expect("reference HMM trains");
    (hmm, seqs)
}

/// A deterministic "adequate link" throughput trace (Mbps), mildly noisy
/// around `base_mbps`, for playback tests that should not stall.
pub fn adequate_trace(len: usize, base_mbps: f64, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5452_4143); // "TRAC"
    (0..len)
        .map(|_| (base_mbps * (1.0 + rng.gen_range(-0.15..0.15f64))).max(0.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(two_regime_dataset(20, 5), two_regime_dataset(20, 5));
        assert_eq!(adequate_trace(50, 5.0, 3), adequate_trace(50, 5.0, 3));
        let (a, _) = reference_hmm(1);
        let (b, _) = reference_hmm(1);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn two_regime_dataset_has_both_regimes() {
        let d = two_regime_dataset(30, 1);
        assert_eq!(d.len(), 60);
        let lows = d
            .sessions()
            .iter()
            .filter(|s| s.features.get(0) == 0)
            .count();
        assert_eq!(lows, 30);
    }

    #[test]
    fn small_scenario_splits_cleanly() {
        let sc = TrainedScenario::small();
        assert!(!sc.train.is_empty());
        assert!(!sc.test.is_empty());
        assert!(sc.train.sessions().iter().all(|s| s.start_time < 86_400));
        assert!(sc.test.sessions().iter().all(|s| s.start_time >= 86_400));
        let trace = sc.prediction_trace(0);
        assert_eq!(trace.len(), sc.test.get(0).n_epochs());
        assert!(trace[0].0.is_some(), "initial prediction must exist");
    }
}
