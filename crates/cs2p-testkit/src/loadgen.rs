//! Deterministic in-process load generator for the prediction server.
//!
//! Drives a running `cs2p-net` server with K client threads streaming
//! interleaved sessions over keep-alive connections, reproducing the
//! paper's serving workload (one `/predict` POST per session per epoch)
//! at test scale. Everything observable is seeded:
//!
//! - each session's throughput observations come from
//!   `ChaCha8(seed ⊕ session_id)`, so session S sends the same byte
//!   sequence no matter which client thread carries it or how many
//!   clients run;
//! - sessions are partitioned round-robin over the clients, and each
//!   client walks its sessions epoch-major, so per-session request
//!   *order* is preserved while requests from different sessions
//!   interleave freely;
//! - optional open-loop pacing (`max_gap_us`) draws seeded inter-request
//!   gaps, perturbing arrival timing without touching payloads.
//!
//! Because the server's per-session HMM state depends only on that
//! session's own observation order, the per-session prediction sequences
//! in [`LoadReport::predictions`] must be *bit-identical* across client
//! counts and server worker counts — the property
//! [`crate::invariants::assert_serving_concurrency_independence`] checks.
//!
//! The generated features are `[session_id % 2]`, matching the one-column
//! (`isp`) schema of [`crate::scenarios::tiny_engine`].

use cs2p_net::http::{Request, Response};
use cs2p_net::protocol::{PredictRequest, PredictResponse};
use cs2p_net::HttpClient;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Workload shape for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads (each holds one keep-alive connection).
    pub n_clients: usize,
    /// Distinct sessions, partitioned round-robin over the clients.
    pub n_sessions: usize,
    /// Requests per session (the first carries features, the rest a
    /// measured throughput).
    pub epochs_per_session: usize,
    /// Prediction horizon requested per POST.
    pub horizon: usize,
    /// Master seed for all observation sequences and pacing.
    pub seed: u64,
    /// Upper bound (exclusive) on the seeded inter-request gap drawn
    /// before each POST; 0 disables pacing (closed loop).
    pub max_gap_us: u64,
    /// First session id (ids are `base..base + n_sessions`).
    pub session_id_base: u64,
    /// When set, every client enables end-to-end request tracing
    /// ([`HttpClient::with_trace_seed`]) with a per-client seed derived
    /// from this one — each request carries an `x-trace-id` the server
    /// scopes over its `serve.request` span and events.
    pub trace_seed: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            n_clients: 4,
            n_sessions: 8,
            epochs_per_session: 5,
            horizon: 2,
            seed: 7,
            max_gap_us: 0,
            session_id_base: 1_000,
            trace_seed: None,
        }
    }
}

impl LoadConfig {
    /// Total requests this workload will send.
    pub fn total_requests(&self) -> u64 {
        (self.n_sessions * self.epochs_per_session) as u64
    }

    /// The feature vector session `id` registers with (matches the
    /// single-column schema of [`crate::scenarios::tiny_engine`]).
    pub fn features_of(id: u64) -> Vec<u32> {
        vec![(id % 2) as u32]
    }

    /// The deterministic observation sequence session `id` reports
    /// (epoch 1 onward; epoch 0 carries features instead).
    pub fn observations_of(&self, id: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let base = if id.is_multiple_of(2) { 1.0 } else { 5.0 };
        (1..self.epochs_per_session)
            .map(|_| base * rng.gen_range(0.7..1.3))
            .collect()
    }
}

/// What one [`run_load`] run did and saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests sent (including ones that were rejected or failed).
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 backpressure responses.
    pub rejected: u64,
    /// 404 "unknown session" answers (the server evicted the session);
    /// each one was followed by a re-registration request.
    pub reinit: u64,
    /// Transport errors and unexpected statuses.
    pub errors: u64,
    /// Per-session prediction vectors, in that session's epoch order.
    pub predictions: BTreeMap<u64, Vec<Vec<f64>>>,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.reinit += other.reinit;
        self.errors += other.errors;
        self.predictions.extend(other.predictions);
    }
}

/// Runs the workload against a server at `addr` and returns the merged
/// report. Panics only on client-side bugs, never on server refusals —
/// 503s and transport errors are counted, so overload scenarios can
/// assert on them.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let n_clients = config.n_clients.max(1);
    let mut report = LoadReport::default();
    let partial: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|client_idx| scope.spawn(move || run_client(addr, config, client_idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    for p in partial {
        report.merge(p);
    }
    report
}

fn run_client(addr: SocketAddr, config: &LoadConfig, client_idx: usize) -> LoadReport {
    let mut client = HttpClient::new(addr);
    if let Some(trace_seed) = config.trace_seed {
        // Per-client derivation keeps the id streams disjoint while the
        // whole run stays a function of one seed.
        client = client.with_trace_seed(trace_seed ^ ((client_idx as u64) << 17));
    }
    let mut pacing = ChaCha8Rng::seed_from_u64(config.seed ^ (client_idx as u64) << 32);
    let mut report = LoadReport::default();
    let sessions: Vec<u64> = (0..config.n_sessions as u64)
        .filter(|s| (*s as usize) % config.n_clients.max(1) == client_idx)
        .map(|s| config.session_id_base + s)
        .collect();
    let observations: BTreeMap<u64, Vec<f64>> = sessions
        .iter()
        .map(|&id| (id, config.observations_of(id)))
        .collect();

    for epoch in 0..config.epochs_per_session {
        for &id in &sessions {
            if config.max_gap_us > 0 {
                let gap = pacing.gen_range(0..config.max_gap_us);
                std::thread::sleep(Duration::from_micros(gap));
            }
            let preq = PredictRequest {
                session_id: id,
                features: (epoch == 0).then(|| LoadConfig::features_of(id)),
                measured_mbps: (epoch > 0).then(|| observations[&id][epoch - 1]),
                horizon: config.horizon,
            };
            report.sent += 1;
            match post_predict(&mut client, &preq) {
                Ok(resp) if resp.status == 200 => {
                    match serde_json::from_slice::<PredictResponse>(&resp.body) {
                        Ok(presp) => {
                            report.ok += 1;
                            report
                                .predictions
                                .entry(id)
                                .or_default()
                                .push(presp.predictions_mbps);
                        }
                        Err(_) => report.errors += 1,
                    }
                }
                Ok(resp) if resp.status == 503 => {
                    report.rejected += 1;
                    // The server closes a 503'd connection.
                    client.reset_connection();
                }
                Ok(resp) if resp.status == 404 && epoch > 0 => {
                    // Evicted under churn: exercise the clean re-init
                    // path by re-registering with features.
                    report.reinit += 1;
                    let re = PredictRequest {
                        features: Some(LoadConfig::features_of(id)),
                        ..preq.clone()
                    };
                    report.sent += 1;
                    match post_predict(&mut client, &re) {
                        Ok(r2) if r2.status == 200 => {
                            match serde_json::from_slice::<PredictResponse>(&r2.body) {
                                Ok(presp) => {
                                    report.ok += 1;
                                    report
                                        .predictions
                                        .entry(id)
                                        .or_default()
                                        .push(presp.predictions_mbps);
                                }
                                Err(_) => report.errors += 1,
                            }
                        }
                        _ => report.errors += 1,
                    }
                }
                Ok(_) => report.errors += 1,
                Err(_) => report.errors += 1,
            }
        }
    }
    report
}

fn post_predict(client: &mut HttpClient, preq: &PredictRequest) -> std::io::Result<Response> {
    let body = serde_json::to_vec(preq)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    client.send(&Request::new("POST", "/predict", body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::tiny_engine;
    use cs2p_net::serve;

    #[test]
    fn workload_payloads_are_deterministic() {
        let config = LoadConfig::default();
        assert_eq!(config.observations_of(3), config.observations_of(3));
        assert_ne!(config.observations_of(3), config.observations_of(4));
        assert_eq!(LoadConfig::features_of(6), vec![0]);
        assert_eq!(LoadConfig::features_of(7), vec![1]);
    }

    #[test]
    fn load_run_counts_and_records_every_session() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let config = LoadConfig {
            n_clients: 2,
            n_sessions: 4,
            epochs_per_session: 3,
            ..LoadConfig::default()
        };
        let report = run_load(server.addr(), &config);
        assert_eq!(report.sent, config.total_requests());
        assert_eq!(report.ok, report.sent, "errors: {}", report.errors);
        assert_eq!(report.predictions.len(), 4);
        for (id, preds) in &report.predictions {
            assert_eq!(preds.len(), 3, "session {id}");
            for p in preds {
                assert_eq!(p.len(), config.horizon);
            }
        }
        assert_eq!(server.predictions_served(), report.ok);
        server.shutdown();
    }

    #[test]
    fn paced_run_sends_the_same_payloads_as_closed_loop() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let closed = LoadConfig {
            n_clients: 1,
            n_sessions: 2,
            epochs_per_session: 3,
            ..LoadConfig::default()
        };
        let paced = LoadConfig {
            max_gap_us: 200,
            ..closed.clone()
        };
        let a = run_load(server.addr(), &closed);
        // Fresh server so session state restarts identically.
        let server2 = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let b = run_load(server2.addr(), &paced);
        assert_eq!(a.predictions, b.predictions);
        server.shutdown();
        server2.shutdown();
    }
}
