//! Deterministic in-process load generator for the prediction server.
//!
//! Drives a running `cs2p-net` server with K client threads streaming
//! interleaved sessions over keep-alive connections, reproducing the
//! paper's serving workload (one `/predict` POST per session per epoch)
//! at test scale. Everything observable is seeded:
//!
//! - each session's throughput observations come from
//!   `ChaCha8(seed ⊕ session_id)`, so session S sends the same byte
//!   sequence no matter which client thread carries it or how many
//!   clients run;
//! - sessions are partitioned round-robin over the clients, and each
//!   client walks its sessions epoch-major, so per-session request
//!   *order* is preserved while requests from different sessions
//!   interleave freely;
//! - optional open-loop pacing (`max_gap_us`) draws seeded inter-request
//!   gaps, perturbing arrival timing without touching payloads.
//!
//! Because the server's per-session HMM state depends only on that
//! session's own observation order, the per-session prediction sequences
//! in [`LoadReport::predictions`] must be *bit-identical* across client
//! counts and server worker counts — the property
//! [`crate::invariants::assert_serving_concurrency_independence`] checks.
//!
//! The generated features are `[session_id % 2]`, matching the one-column
//! (`isp`) schema of [`crate::scenarios::tiny_engine`].

use cs2p_net::http::{Request, Response};
use cs2p_net::protocol::{
    BatchPredictRequest, BatchPredictResponse, Degradation, PredictRequest, PredictResponse,
};
use cs2p_net::HttpClient;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Workload shape for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads (each holds one keep-alive connection).
    pub n_clients: usize,
    /// Distinct sessions, partitioned round-robin over the clients.
    pub n_sessions: usize,
    /// Requests per session (the first carries features, the rest a
    /// measured throughput).
    pub epochs_per_session: usize,
    /// Prediction horizon requested per POST.
    pub horizon: usize,
    /// Master seed for all observation sequences and pacing.
    pub seed: u64,
    /// Upper bound (exclusive) on the seeded inter-request gap drawn
    /// before each POST; 0 disables pacing (closed loop).
    pub max_gap_us: u64,
    /// First session id (ids are `base..base + n_sessions`).
    pub session_id_base: u64,
    /// When set, every client enables end-to-end request tracing
    /// ([`HttpClient::with_trace_seed`]) with a per-client seed derived
    /// from this one — each request carries an `x-trace-id` the server
    /// scopes over its `serve.request` span and events.
    pub trace_seed: Option<u64>,
    /// When set, each client ships its entries as `POST /predict_batch`
    /// frames instead of singleton `/predict` POSTs. Frame sizes are
    /// drawn from the spec's seeded distribution; per-session entry
    /// order is unchanged, so [`LoadReport::predictions`] must stay
    /// bit-identical to the singleton run.
    pub batch: Option<BatchSpec>,
}

/// Frame-size distribution for batch mode: each frame's entry count is
/// drawn uniformly from `min_entries..=max_entries` by a ChaCha RNG
/// seeded from the workload's master seed and the client index — the
/// frame boundaries are as reproducible as the payloads they carry.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// Smallest frame the generator emits (clamped to at least 1).
    pub min_entries: usize,
    /// Largest frame the generator emits (the final frame of a client's
    /// stream may be smaller — it takes whatever entries remain).
    pub max_entries: usize,
}

impl BatchSpec {
    /// Every frame carries exactly `n` entries (final remainder aside).
    pub fn fixed(n: usize) -> Self {
        BatchSpec {
            min_entries: n,
            max_entries: n,
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            n_clients: 4,
            n_sessions: 8,
            epochs_per_session: 5,
            horizon: 2,
            seed: 7,
            max_gap_us: 0,
            session_id_base: 1_000,
            trace_seed: None,
            batch: None,
        }
    }
}

impl LoadConfig {
    /// Total requests this workload will send.
    pub fn total_requests(&self) -> u64 {
        (self.n_sessions * self.epochs_per_session) as u64
    }

    /// The feature vector session `id` registers with (matches the
    /// single-column schema of [`crate::scenarios::tiny_engine`]).
    pub fn features_of(id: u64) -> Vec<u32> {
        vec![(id % 2) as u32]
    }

    /// The deterministic observation sequence session `id` reports
    /// (epoch 1 onward; epoch 0 carries features instead).
    pub fn observations_of(&self, id: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let base = if id.is_multiple_of(2) { 1.0 } else { 5.0 };
        (1..self.epochs_per_session)
            .map(|_| base * rng.gen_range(0.7..1.3))
            .collect()
    }
}

/// What one [`run_load`] run did and saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests sent (including ones that were rejected or failed).
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 backpressure responses.
    pub rejected: u64,
    /// 404 "unknown session" answers (the server evicted the session);
    /// each one was followed by a re-registration request.
    pub reinit: u64,
    /// Transport errors and unexpected statuses.
    pub errors: u64,
    /// 200 answers served at the server's Degraded ladder level
    /// (cluster-prior predictions; see `cs2p_net::AdmissionLevel`).
    pub degraded: u64,
    /// 200 answers served at the Fallback ladder level (harmonic-mean
    /// predictions from the session's own recent measurements).
    pub fallback: u64,
    /// Per-session prediction vectors, in that session's epoch order.
    pub predictions: BTreeMap<u64, Vec<Vec<f64>>>,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.reinit += other.reinit;
        self.errors += other.errors;
        self.degraded += other.degraded;
        self.fallback += other.fallback;
        self.predictions.extend(other.predictions);
    }

    /// Books one 200 answer's degradation provenance.
    fn note_degradation(&mut self, degradation: Option<Degradation>) {
        match degradation {
            Some(Degradation::Degraded) => self.degraded += 1,
            Some(Degradation::Fallback) => self.fallback += 1,
            None => {}
        }
    }
}

/// Runs the workload against a server at `addr` and returns the merged
/// report. Panics only on client-side bugs, never on server refusals —
/// 503s and transport errors are counted, so overload scenarios can
/// assert on them.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let n_clients = config.n_clients.max(1);
    let mut report = LoadReport::default();
    let partial: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|client_idx| scope.spawn(move || run_client(addr, config, client_idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    for p in partial {
        report.merge(p);
    }
    report
}

fn run_client(addr: SocketAddr, config: &LoadConfig, client_idx: usize) -> LoadReport {
    let mut client = HttpClient::new(addr);
    if let Some(trace_seed) = config.trace_seed {
        // Per-client derivation keeps the id streams disjoint while the
        // whole run stays a function of one seed.
        client = client.with_trace_seed(trace_seed ^ ((client_idx as u64) << 17));
    }
    let mut pacing = ChaCha8Rng::seed_from_u64(config.seed ^ (client_idx as u64) << 32);
    let mut report = LoadReport::default();
    let sessions: Vec<u64> = (0..config.n_sessions as u64)
        .filter(|s| (*s as usize) % config.n_clients.max(1) == client_idx)
        .map(|s| config.session_id_base + s)
        .collect();
    let observations: BTreeMap<u64, Vec<f64>> = sessions
        .iter()
        .map(|&id| (id, config.observations_of(id)))
        .collect();

    if let Some(spec) = &config.batch {
        run_client_batched(
            &mut client,
            config,
            client_idx,
            &sessions,
            &observations,
            spec,
            &mut pacing,
            &mut report,
        );
        return report;
    }

    for epoch in 0..config.epochs_per_session {
        for &id in &sessions {
            if config.max_gap_us > 0 {
                let gap = pacing.gen_range(0..config.max_gap_us);
                std::thread::sleep(Duration::from_micros(gap));
            }
            let preq = PredictRequest {
                session_id: id,
                features: (epoch == 0).then(|| LoadConfig::features_of(id)),
                measured_mbps: (epoch > 0).then(|| observations[&id][epoch - 1]),
                horizon: config.horizon,
            };
            report.sent += 1;
            match post_predict(&mut client, &preq) {
                Ok(resp) if resp.status == 200 => {
                    match serde_json::from_slice::<PredictResponse>(&resp.body) {
                        Ok(presp) => {
                            report.ok += 1;
                            report.note_degradation(presp.degradation);
                            report
                                .predictions
                                .entry(id)
                                .or_default()
                                .push(presp.predictions_mbps);
                        }
                        Err(_) => report.errors += 1,
                    }
                }
                Ok(resp) if resp.status == 503 => {
                    report.rejected += 1;
                    // The server closes a 503'd connection.
                    client.reset_connection();
                }
                Ok(resp) if resp.status == 404 && epoch > 0 => {
                    // Evicted under churn: exercise the clean re-init
                    // path by re-registering with features.
                    reregister(&mut client, &mut report, &preq);
                }
                Ok(_) => report.errors += 1,
                Err(_) => report.errors += 1,
            }
        }
    }
    report
}

/// The batched twin of the singleton loop in `run_client`: the client's
/// whole epoch-major entry stream is chunked into `/predict_batch`
/// frames whose sizes come from the spec's seeded ChaCha distribution.
/// A frame may span epochs (and then carries two entries for one
/// session, processed server-side in frame order), so per-session entry
/// order — and therefore the prediction sequences — is exactly the
/// singleton run's.
#[allow(clippy::too_many_arguments)]
fn run_client_batched(
    client: &mut HttpClient,
    config: &LoadConfig,
    client_idx: usize,
    sessions: &[u64],
    observations: &BTreeMap<u64, Vec<f64>>,
    spec: &BatchSpec,
    pacing: &mut ChaCha8Rng,
    report: &mut LoadReport,
) {
    let mut sizes =
        ChaCha8Rng::seed_from_u64(config.seed ^ ((client_idx as u64) << 24) ^ 0xBA7C_F3A3);
    let lo = spec.min_entries.max(1);
    let hi = spec.max_entries.max(lo);
    let stream: Vec<(u64, usize)> = (0..config.epochs_per_session)
        .flat_map(|epoch| sessions.iter().map(move |&id| (id, epoch)))
        .collect();

    let mut i = 0;
    while i < stream.len() {
        let n = sizes.gen_range(lo..=hi).min(stream.len() - i);
        let entries: Vec<PredictRequest> = stream[i..i + n]
            .iter()
            .map(|&(id, epoch)| PredictRequest {
                session_id: id,
                features: (epoch == 0).then(|| LoadConfig::features_of(id)),
                measured_mbps: (epoch > 0).then(|| observations[&id][epoch - 1]),
                horizon: config.horizon,
            })
            .collect();
        i += n;
        if config.max_gap_us > 0 {
            let gap = pacing.gen_range(0..config.max_gap_us);
            std::thread::sleep(Duration::from_micros(gap));
        }
        report.sent += n as u64;
        let breq = BatchPredictRequest { entries };
        // Direct writer: one preallocated buffer, no serde Value tree.
        let body = breq.to_json_bytes();
        let entries = breq.entries;
        match client.send(&Request::new("POST", "/predict_batch", body)) {
            Ok(resp) if resp.status == 200 => {
                match serde_json::from_slice::<BatchPredictResponse>(&resp.body) {
                    Ok(bresp) if bresp.results.len() == entries.len() => {
                        for (preq, r) in entries.iter().zip(&bresp.results) {
                            match (r.status, &r.response) {
                                (200, Some(presp)) => {
                                    report.ok += 1;
                                    report.note_degradation(presp.degradation);
                                    report
                                        .predictions
                                        .entry(preq.session_id)
                                        .or_default()
                                        .push(presp.predictions_mbps.clone());
                                }
                                // 404 on a non-registration entry:
                                // evicted under churn; replay it with
                                // features, like the singleton path.
                                (404, _) if preq.features.is_none() => {
                                    reregister(client, report, preq);
                                }
                                _ => report.errors += 1,
                            }
                        }
                    }
                    _ => report.errors += n as u64,
                }
            }
            Ok(resp) if resp.status == 503 => {
                // Whole-frame backpressure: the server rejected it
                // before touching any entry, and closed the connection.
                report.rejected += n as u64;
                client.reset_connection();
            }
            _ => report.errors += n as u64,
        }
    }
}

/// Replays one evicted entry as a singleton `/predict` carrying
/// features, counting the 404 as a `reinit` and the replay as a fresh
/// `sent` request.
fn reregister(client: &mut HttpClient, report: &mut LoadReport, preq: &PredictRequest) {
    report.reinit += 1;
    let re = PredictRequest {
        features: Some(LoadConfig::features_of(preq.session_id)),
        ..preq.clone()
    };
    report.sent += 1;
    match post_predict(client, &re) {
        Ok(r2) if r2.status == 200 => match serde_json::from_slice::<PredictResponse>(&r2.body) {
            Ok(presp) => {
                report.ok += 1;
                report.note_degradation(presp.degradation);
                report
                    .predictions
                    .entry(preq.session_id)
                    .or_default()
                    .push(presp.predictions_mbps);
            }
            Err(_) => report.errors += 1,
        },
        _ => report.errors += 1,
    }
}

fn post_predict(client: &mut HttpClient, preq: &PredictRequest) -> std::io::Result<Response> {
    let body = serde_json::to_vec(preq)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    client.send(&Request::new("POST", "/predict", body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::tiny_engine;
    use cs2p_net::serve;

    #[test]
    fn workload_payloads_are_deterministic() {
        let config = LoadConfig::default();
        assert_eq!(config.observations_of(3), config.observations_of(3));
        assert_ne!(config.observations_of(3), config.observations_of(4));
        assert_eq!(LoadConfig::features_of(6), vec![0]);
        assert_eq!(LoadConfig::features_of(7), vec![1]);
    }

    #[test]
    fn load_run_counts_and_records_every_session() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let config = LoadConfig {
            n_clients: 2,
            n_sessions: 4,
            epochs_per_session: 3,
            ..LoadConfig::default()
        };
        let report = run_load(server.addr(), &config);
        assert_eq!(report.sent, config.total_requests());
        assert_eq!(report.ok, report.sent, "errors: {}", report.errors);
        assert_eq!(report.predictions.len(), 4);
        for (id, preds) in &report.predictions {
            assert_eq!(preds.len(), 3, "session {id}");
            for p in preds {
                assert_eq!(p.len(), config.horizon);
            }
        }
        assert_eq!(server.predictions_served(), report.ok);
        server.shutdown();
    }

    #[test]
    fn batched_run_matches_singleton_predictions() {
        // The core differential property at loadgen level: chunking the
        // entry stream into seeded variable-size frames must not change
        // a single per-session prediction.
        let singleton = LoadConfig {
            n_clients: 2,
            n_sessions: 6,
            epochs_per_session: 4,
            ..LoadConfig::default()
        };
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let a = run_load(server.addr(), &singleton);
        server.shutdown();
        for (min_e, max_e) in [(1, 1), (3, 3), (2, 7)] {
            let batched = LoadConfig {
                batch: Some(BatchSpec {
                    min_entries: min_e,
                    max_entries: max_e,
                }),
                ..singleton.clone()
            };
            let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
            let b = run_load(server.addr(), &batched);
            server.shutdown();
            assert_eq!(b.ok, b.sent, "batched run shed load: {b:?}");
            assert_eq!(
                a.predictions, b.predictions,
                "batch frames {min_e}..={max_e} changed predictions"
            );
        }
    }

    #[test]
    fn batch_frame_sizes_are_seed_deterministic() {
        // Same seed, same frame boundaries: two batched runs against
        // fresh servers must produce identical reports end to end.
        let config = LoadConfig {
            n_clients: 2,
            n_sessions: 5,
            epochs_per_session: 3,
            batch: Some(BatchSpec {
                min_entries: 1,
                max_entries: 4,
            }),
            ..LoadConfig::default()
        };
        let server1 = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let a = run_load(server1.addr(), &config);
        server1.shutdown();
        let server2 = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let b = run_load(server2.addr(), &config);
        server2.shutdown();
        assert_eq!(a, b);
    }

    #[test]
    fn paced_run_sends_the_same_payloads_as_closed_loop() {
        let server = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let closed = LoadConfig {
            n_clients: 1,
            n_sessions: 2,
            epochs_per_session: 3,
            ..LoadConfig::default()
        };
        let paced = LoadConfig {
            max_gap_us: 200,
            ..closed.clone()
        };
        let a = run_load(server.addr(), &closed);
        // Fresh server so session state restarts identically.
        let server2 = serve(tiny_engine(), "127.0.0.1:0").unwrap();
        let b = run_load(server2.addr(), &paced);
        assert_eq!(a.predictions, b.predictions);
        server.shutdown();
        server2.shutdown();
    }
}
