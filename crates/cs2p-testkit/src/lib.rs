//! Test support shared by every crate in the workspace.
//!
//! Three pillars, mirroring how the test suite is organized (see
//! TESTING.md at the repository root):
//!
//! - [`scenarios`]: deterministic scenario builders — fixed-seed synthetic
//!   worlds, canned datasets with stable train/test splits, pre-trained
//!   reference models. Two calls with the same arguments produce
//!   identical values on every platform and every run.
//! - [`golden`]: a golden-fixture regression harness. Serialized models
//!   and prediction traces are compared against JSON files checked in
//!   under `crates/cs2p-testkit/fixtures/`; set `UPDATE_GOLDEN=1` to
//!   regenerate them.
//! - [`invariants`]: reusable assertions for properties that many crates
//!   care about — thread-count independence of training, model-bundle
//!   round-trips, simulator determinism, concurrency-transparency of the
//!   prediction server.
//! - [`loadgen`]: a deterministic in-process load generator driving a
//!   running `cs2p-net` server with K client threads and seeded
//!   per-session workloads (see TESTING.md).
//!
//! This crate is a dev-dependency of the other crates; never depend on it
//! from library code.

pub mod golden;
pub mod invariants;
pub mod loadgen;
pub mod scenarios;

pub use golden::{check_golden, check_golden_value};
pub use scenarios::TrainedScenario;
