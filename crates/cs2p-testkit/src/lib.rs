//! Test support shared by every crate in the workspace.
//!
//! Three pillars, mirroring how the test suite is organized (see
//! TESTING.md at the repository root):
//!
//! - [`scenarios`]: deterministic scenario builders — fixed-seed synthetic
//!   worlds, canned datasets with stable train/test splits, pre-trained
//!   reference models. Two calls with the same arguments produce
//!   identical values on every platform and every run.
//! - [`golden`]: a golden-fixture regression harness. Serialized models
//!   and prediction traces are compared against JSON files checked in
//!   under `crates/cs2p-testkit/fixtures/`; set `UPDATE_GOLDEN=1` to
//!   regenerate them.
//! - [`invariants`]: reusable assertions for properties that many crates
//!   care about — thread-count independence of training, model-bundle
//!   round-trips, simulator determinism, concurrency-transparency of the
//!   prediction server.
//! - [`loadgen`]: a deterministic in-process load generator driving a
//!   running `cs2p-net` server with K client threads and seeded
//!   per-session workloads (see TESTING.md).
//! - [`faults`]: deterministic fault injection — a seeded [`faults::FaultPlan`]
//!   transport wrapper (resets, truncation, corruption, dribbling,
//!   injected delay), forced store evictions, and the
//!   [`faults::run_chaos`] harness that drives the loadgen workload
//!   through it for the chaos soak suites.
//! - [`crash`]: the durability crash harness — a seeded [`crash::CrashPlan`]
//!   killing (or tearing) the WAL at exact commit points, and the
//!   [`crash::TempDir`] scratch directory the recovery suites persist
//!   into.
//!
//! This crate is a dev-dependency of the library crates; production code
//! must never depend on it. Harness crates (`cs2p-eval`'s `chaos-bench`)
//! may use [`faults`] directly — it is test infrastructure either way.

pub mod crash;
pub mod faults;
pub mod golden;
pub mod invariants;
pub mod loadgen;
pub mod scenarios;

pub use golden::{check_golden, check_golden_value};
pub use scenarios::TrainedScenario;
