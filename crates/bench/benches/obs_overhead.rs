//! Instrumentation overhead of `cs2p-obs` on the training hot path.
//!
//! Times Baum–Welch EM (the most telemetry-dense code in the workspace:
//! one event per iteration plus run counters) in three registry states:
//!
//! 1. `disabled` — the global registry off, every obs call returning
//!    after one relaxed atomic load (the default for library users);
//! 2. `enabled-no-sink` — metrics tables updated, no sink attached;
//! 3. `enabled-memory-sink` — full record dispatch into a `MemorySink`
//!    (the `--metrics` configuration, minus the file write).
//!
//! OBSERVABILITY.md documents the headline number: `disabled` must stay
//! within 5% of a build with no observer attached at all — which is the
//! same thing, since the registry starts disabled.
//!
//! Two further groups cover the observability additions on the serving
//! path: `quantile-sketch` times `quantile_observe` (the streaming
//! p50/p90/p99 sketch behind `/ops` and the quality monitor) in each
//! registry state, and the headline table gains end-to-end serving rows
//! with request tracing off and on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs2p_ml::hmm::{train, TrainConfig};
use cs2p_obs::{quantile_observe, MemorySink, QuantileSketch, Registry};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

fn training_set() -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    (0..24)
        .map(|_| {
            let mut state = 0usize;
            (0..50)
                .map(|_| {
                    if rng.gen::<f64>() < 0.08 {
                        state = 1 - state;
                    }
                    let base = if state == 0 { 1.2 } else { 4.8 };
                    base + rng.gen_range(-0.3..0.3)
                })
                .collect()
        })
        .collect()
}

fn config() -> TrainConfig {
    TrainConfig {
        n_states: 3,
        max_iters: 15,
        tol: 0.0, // run the full cap so every variant does identical work
        ..Default::default()
    }
}

/// Median wall time of `reps` training runs, in nanoseconds.
fn median_train_nanos(sequences: &[Vec<f64>], cfg: &TrainConfig, reps: usize) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(train(black_box(sequences), cfg));
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn obs_overhead(c: &mut Criterion) {
    let sequences = training_set();
    let cfg = config();
    let registry = Registry::global();

    let mut group = c.benchmark_group("train-em-obs");
    group.sample_size(10);

    registry.set_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| train(black_box(&sequences), &cfg))
    });

    registry.set_enabled(true);
    group.bench_function("enabled-no-sink", |b| {
        b.iter(|| train(black_box(&sequences), &cfg))
    });

    let sink = Arc::new(MemorySink::new());
    registry.add_sink(sink.clone());
    group.bench_function("enabled-memory-sink", |b| {
        b.iter(|| {
            sink.clear();
            train(black_box(&sequences), &cfg)
        })
    });
    registry.clear_sinks();
    group.finish();

    // Headline numbers for OBSERVABILITY.md: overhead relative to disabled.
    const REPS: usize = 15;
    registry.set_enabled(false);
    let base = median_train_nanos(&sequences, &cfg, REPS);
    registry.set_enabled(true);
    let no_sink = median_train_nanos(&sequences, &cfg, REPS);
    let sink = Arc::new(MemorySink::new());
    registry.add_sink(sink.clone());
    let with_sink = median_train_nanos(&sequences, &cfg, REPS);
    registry.clear_sinks();
    registry.set_enabled(false);

    let pct = |t: u128| (t as f64 / base as f64 - 1.0) * 100.0;
    println!("[obs-overhead] EM training, median of {REPS} runs:");
    println!(
        "  disabled            {:>10.3} ms (baseline)",
        base as f64 / 1e6
    );
    println!(
        "  enabled, no sink    {:>10.3} ms ({:+.1}%)",
        no_sink as f64 / 1e6,
        pct(no_sink)
    );
    println!(
        "  enabled, mem sink   {:>10.3} ms ({:+.1}%)",
        with_sink as f64 / 1e6,
        pct(with_sink)
    );
}

/// `quantile_observe` per call: the raw sketch as the floor, then the
/// named-registry path disabled (one atomic load) and enabled (lock +
/// bucket increment).
fn quantile_sketch(c: &mut Criterion) {
    let registry = Registry::global();
    let values: Vec<f64> = {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        (0..1024).map(|_| rng.gen_range(0.01..500.0)).collect()
    };

    let mut group = c.benchmark_group("quantile-sketch");
    group.bench_function("raw-sketch-1024", |b| {
        b.iter(|| {
            let mut sketch = QuantileSketch::new();
            for &v in &values {
                sketch.observe(black_box(v));
            }
            black_box(sketch.snapshot())
        })
    });
    registry.set_enabled(false);
    group.bench_function("registry-disabled-1024", |b| {
        b.iter(|| {
            for &v in &values {
                quantile_observe("bench.quantile", black_box(v));
            }
        })
    });
    registry.set_enabled(true);
    group.bench_function("registry-enabled-1024", |b| {
        b.iter(|| {
            for &v in &values {
                quantile_observe("bench.quantile", black_box(v));
            }
        })
    });
    registry.set_enabled(false);
    group.finish();
}

/// Median wall time of one small loadgen run (2 clients × 8 sessions ×
/// 5 epochs) against a fresh server, in nanoseconds. Server startup and
/// shutdown stay outside the timed region.
fn median_serve_nanos(trace: bool, reps: usize) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|rep| {
            let server = cs2p_net::serve(tiny_engine(), "127.0.0.1:0").expect("bench server");
            let config = LoadConfig {
                n_clients: 2,
                n_sessions: 8,
                epochs_per_session: 5,
                trace_seed: trace.then_some(0xBE5E ^ rep as u64),
                ..LoadConfig::default()
            };
            let start = Instant::now();
            let report = run_load(server.addr(), &config);
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(report.ok, report.sent, "bench workload must not shed");
            server.shutdown();
            elapsed
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Headline serving rows: end-to-end request cost with tracing off/on,
/// in each registry state. Tracing adds one header and a thread-local
/// scope per request; the disabled-registry delta is the whole cost a
/// production deployment pays for trace-ready clients.
fn serve_tracing_overhead(_c: &mut Criterion) {
    const REPS: usize = 15;
    let registry = Registry::global();

    registry.set_enabled(false);
    let untraced = median_serve_nanos(false, REPS);
    let traced = median_serve_nanos(true, REPS);
    registry.set_enabled(true);
    let sink = Arc::new(MemorySink::new());
    registry.add_sink(sink.clone());
    let traced_sink = median_serve_nanos(true, REPS);
    registry.clear_sinks();
    registry.set_enabled(false);

    let pct = |t: u128| (t as f64 / untraced as f64 - 1.0) * 100.0;
    println!("[obs-overhead] serving 40 requests, median of {REPS} runs:");
    println!(
        "  untraced, disabled  {:>10.3} ms (baseline)",
        untraced as f64 / 1e6
    );
    println!(
        "  traced, disabled    {:>10.3} ms ({:+.1}%)",
        traced as f64 / 1e6,
        pct(traced)
    );
    println!(
        "  traced, mem sink    {:>10.3} ms ({:+.1}%)",
        traced_sink as f64 / 1e6,
        pct(traced_sink)
    );
}

criterion_group!(
    obs_overhead_group,
    obs_overhead,
    quantile_sketch,
    serve_tracing_overhead
);
criterion_main!(obs_overhead_group);
