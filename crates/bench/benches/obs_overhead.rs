//! Instrumentation overhead of `cs2p-obs` on the training hot path.
//!
//! Times Baum–Welch EM (the most telemetry-dense code in the workspace:
//! one event per iteration plus run counters) in three registry states:
//!
//! 1. `disabled` — the global registry off, every obs call returning
//!    after one relaxed atomic load (the default for library users);
//! 2. `enabled-no-sink` — metrics tables updated, no sink attached;
//! 3. `enabled-memory-sink` — full record dispatch into a `MemorySink`
//!    (the `--metrics` configuration, minus the file write).
//!
//! OBSERVABILITY.md documents the headline number: `disabled` must stay
//! within 5% of a build with no observer attached at all — which is the
//! same thing, since the registry starts disabled.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs2p_ml::hmm::{train, TrainConfig};
use cs2p_obs::{MemorySink, Registry};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

fn training_set() -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    (0..24)
        .map(|_| {
            let mut state = 0usize;
            (0..50)
                .map(|_| {
                    if rng.gen::<f64>() < 0.08 {
                        state = 1 - state;
                    }
                    let base = if state == 0 { 1.2 } else { 4.8 };
                    base + rng.gen_range(-0.3..0.3)
                })
                .collect()
        })
        .collect()
}

fn config() -> TrainConfig {
    TrainConfig {
        n_states: 3,
        max_iters: 15,
        tol: 0.0, // run the full cap so every variant does identical work
        ..Default::default()
    }
}

/// Median wall time of `reps` training runs, in nanoseconds.
fn median_train_nanos(sequences: &[Vec<f64>], cfg: &TrainConfig, reps: usize) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(train(black_box(sequences), cfg));
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn obs_overhead(c: &mut Criterion) {
    let sequences = training_set();
    let cfg = config();
    let registry = Registry::global();

    let mut group = c.benchmark_group("train-em-obs");
    group.sample_size(10);

    registry.set_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| train(black_box(&sequences), &cfg))
    });

    registry.set_enabled(true);
    group.bench_function("enabled-no-sink", |b| {
        b.iter(|| train(black_box(&sequences), &cfg))
    });

    let sink = Arc::new(MemorySink::new());
    registry.add_sink(sink.clone());
    group.bench_function("enabled-memory-sink", |b| {
        b.iter(|| {
            sink.clear();
            train(black_box(&sequences), &cfg)
        })
    });
    registry.clear_sinks();
    group.finish();

    // Headline numbers for OBSERVABILITY.md: overhead relative to disabled.
    const REPS: usize = 15;
    registry.set_enabled(false);
    let base = median_train_nanos(&sequences, &cfg, REPS);
    registry.set_enabled(true);
    let no_sink = median_train_nanos(&sequences, &cfg, REPS);
    let sink = Arc::new(MemorySink::new());
    registry.add_sink(sink.clone());
    let with_sink = median_train_nanos(&sequences, &cfg, REPS);
    registry.clear_sinks();
    registry.set_enabled(false);

    let pct = |t: u128| (t as f64 / base as f64 - 1.0) * 100.0;
    println!("[obs-overhead] EM training, median of {REPS} runs:");
    println!(
        "  disabled            {:>10.3} ms (baseline)",
        base as f64 / 1e6
    );
    println!(
        "  enabled, no sink    {:>10.3} ms ({:+.1}%)",
        no_sink as f64 / 1e6,
        pct(no_sink)
    );
    println!(
        "  enabled, mem sink   {:>10.3} ms ({:+.1}%)",
        with_sink as f64 / 1e6,
        pct(with_sink)
    );
}

criterion_group!(obs_overhead_group, obs_overhead);
criterion_main!(obs_overhead_group);
