//! Regenerates the QoE experiments (Table 1, Figure 2, §7.3's midstream
//! and initial comparisons, the §7.5 pilot) and times each.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_bench::materials;
use cs2p_eval::experiments::{pilot, qoe};
use std::hint::black_box;

fn bench_qoe(c: &mut Criterion) {
    let m = materials();
    let mut g = c.benchmark_group("qoe");
    g.sample_size(10);

    let r = qoe::table1(m, 30);
    for row in &r.rows {
        println!(
            "[table1] {:<22} init {:>5.0} kbps, wasted {:>4.1}, avg {:>5.0} kbps",
            row.strategy, row.initial_bitrate_kbps, row.wasted_chunks, row.avg_bitrate_kbps
        );
    }
    g.bench_function("table1_initial_selection", |b| {
        b.iter(|| black_box(qoe::table1(m, 30)))
    });

    let levels = [0.0, 0.2, 0.5, 1.0];
    let r = qoe::fig2(m, &levels, 15);
    println!(
        "[fig2] MPC n-QoE at error 0/0.2/0.5/1.0: {:.3}/{:.3}/{:.3}/{:.3}; BB {:.3}",
        r.mpc_nqoe[0], r.mpc_nqoe[1], r.mpc_nqoe[2], r.mpc_nqoe[3], r.bb_nqoe
    );
    g.bench_function("fig2_error_sweep", |b| {
        b.iter(|| black_box(qoe::fig2(m, &levels, 15)))
    });

    let r = qoe::qoe_mid(m, 25);
    println!(
        "[qoe-mid] median n-QoE: CS2P {:.3}, GHM {:.3}, HM {:.3}, LS {:.3}, BB {:.3}",
        r.median_nqoe("CS2P").unwrap_or(f64::NAN),
        r.median_nqoe("GHM").unwrap_or(f64::NAN),
        r.median_nqoe("HM").unwrap_or(f64::NAN),
        r.median_nqoe("LS").unwrap_or(f64::NAN),
        r.median_nqoe("BB").unwrap_or(f64::NAN)
    );
    g.bench_function("qoe_mid_predictor_comparison", |b| {
        b.iter(|| black_box(qoe::qoe_mid(m, 25)))
    });

    let r = qoe::qoe_init(m, 60);
    for row in &r.rows {
        println!(
            "[qoe-init] {:<14} init {:>5.0} kbps, sustainable {:>5.1}%, vs best {:.3}",
            row.strategy,
            row.initial_bitrate_kbps,
            row.sustainable_fraction * 100.0,
            row.bitrate_vs_best
        );
    }
    g.bench_function("qoe_init_selection_quality", |b| {
        b.iter(|| black_box(qoe::qoe_init(m, 60)))
    });

    let r = pilot::pilot(m, 12);
    println!(
        "[pilot] QoE {:+.1}%, bitrate {:+.1}%, rebuffer corr {:.3}, {} HTTP predictions",
        r.qoe_improvement * 100.0,
        r.bitrate_improvement * 100.0,
        r.rebuffer_correlation(),
        r.predictions_served
    );
    g.bench_function("pilot_real_server_loop", |b| {
        b.iter(|| black_box(pilot::pilot(m, 6)))
    });
    g.finish();
}

criterion_group!(qoe_benches, bench_qoe);
criterion_main!(qoe_benches);
