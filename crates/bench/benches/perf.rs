//! Performance claims of §5.3 and §6:
//!
//! - a midstream prediction is "two matrix multiplication operations" and
//!   takes well under 10 ms;
//! - a client model fits in <5 KB;
//! - the prediction server sustains hundreds of predictions per second
//!   (the paper's Node.js server: ~500/s).

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_bench::materials;
use cs2p_core::{ClientModel, ThroughputPredictor};
use cs2p_net::{serve, PredictRequest, PredictResponse};
use std::hint::black_box;
use std::time::Instant;

fn bench_prediction_latency(c: &mut Criterion) {
    let m = materials();
    let model = m
        .engine
        .models()
        .iter()
        .max_by_key(|mo| mo.n_sessions)
        .unwrap();

    // Model size claim.
    let cm = ClientModel {
        model: model.clone(),
    };
    println!(
        "[perf] client model wire size: {} bytes ({} HMM states) — paper bound 5120",
        cm.wire_size(),
        model.hmm.n_states()
    );
    assert!(cm.wire_size() < 5 * 1024);

    c.bench_function("predict_next_single", |b| {
        let mut p = cs2p_core::Cs2pPredictor::new(model);
        p.observe(2.0);
        b.iter(|| black_box(p.predict_next()))
    });

    c.bench_function("observe_and_predict_cycle", |b| {
        let mut p = cs2p_core::Cs2pPredictor::new(model);
        b.iter(|| {
            p.observe(black_box(2.0));
            black_box(p.predict_next())
        })
    });

    c.bench_function("predict_ahead_8", |b| {
        let mut p = cs2p_core::Cs2pPredictor::new(model);
        p.observe(2.0);
        b.iter(|| black_box(p.predict_ahead(8)))
    });
}

fn bench_fast_mpc(c: &mut Criterion) {
    use cs2p_abr::{AbrAlgorithm, AbrContext, FastMpc, FastMpcConfig, Mpc, VideoSpec};

    let video = VideoSpec::envivio();
    let start = Instant::now();
    let mut fast = FastMpc::precompute(&video, FastMpcConfig::default());
    println!(
        "[perf] FastMPC table: {} entries ({} bytes), precomputed in {:.2}s",
        fast.table_len(),
        fast.table_bytes(),
        start.elapsed().as_secs_f64()
    );

    let predictions = vec![Some(2.3); 5];
    let ctx = AbrContext {
        chunk_index: 10,
        buffer_seconds: 13.7,
        last_level: Some(2),
        predictions_mbps: &predictions,
        last_actual_mbps: Some(2.1),
        video: &video,
    };
    let mut exact = Mpc::default();
    c.bench_function("mpc_exact_decision", |b| {
        b.iter(|| black_box(exact.select_level(&ctx)))
    });
    c.bench_function("fast_mpc_table_lookup", |b| {
        b.iter(|| black_box(fast.select_level(&ctx)))
    });
}

fn bench_training(c: &mut Criterion) {
    let m = materials();
    let sequences: Vec<Vec<f64>> = m
        .train
        .sessions()
        .iter()
        .filter(|s| s.n_epochs() >= 5)
        .take(60)
        .map(|s| s.throughput.clone())
        .collect();
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("baum_welch_60_sequences_5_states", |b| {
        let cfg = cs2p_ml::hmm::TrainConfig {
            n_states: 5,
            max_iters: 15,
            ..Default::default()
        };
        b.iter(|| black_box(cs2p_ml::hmm::train(&sequences, &cfg)))
    });
    g.finish();
}

fn bench_server_throughput(c: &mut Criterion) {
    let m = materials();
    let server = serve(m.engine.clone(), "127.0.0.1:0").expect("server");
    let addr = server.addr();
    let features = m.train.get(0).features.0.clone();

    // One-shot throughput measurement with 4 concurrent keep-alive
    // clients, mirroring the paper's "500 predictions per second" check.
    let threads = 4;
    let per_thread = 500u64;
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let features = features.clone();
            std::thread::spawn(move || {
                let mut client = cs2p_net::HttpClient::new(addr);
                for i in 0..per_thread {
                    let req = PredictRequest {
                        session_id: t * 1_000_000 + i,
                        features: Some(features.clone()),
                        measured_mbps: None,
                        horizon: 1,
                    };
                    let _: PredictResponse = client.post_json("/predict", &req).expect("predict");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rate = (threads * per_thread) as f64 / elapsed;
    println!(
        "[perf] server throughput: {rate:.0} predictions/s over {threads} connections \
         (paper's Node.js server: ~500/s)"
    );

    // Latency of one round trip (keep-alive, midstream prediction).
    let mut client = cs2p_net::HttpClient::new(addr);
    let reg = PredictRequest {
        session_id: 777,
        features: Some(features.clone()),
        measured_mbps: None,
        horizon: 1,
    };
    let _: PredictResponse = client.post_json("/predict", &reg).unwrap();
    let mut g = c.benchmark_group("server");
    g.sample_size(50);
    g.bench_function("http_predict_roundtrip", |b| {
        b.iter(|| {
            let req = PredictRequest {
                session_id: 777,
                features: None,
                measured_mbps: Some(2.0),
                horizon: 8,
            };
            let resp: PredictResponse = client.post_json("/predict", &req).expect("predict");
            black_box(resp)
        })
    });
    g.finish();
    server.shutdown();
}

criterion_group!(
    perf,
    bench_prediction_latency,
    bench_fast_mpc,
    bench_training,
    bench_server_throughput
);
criterion_main!(perf);
