//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. clustering vs the global model (CS2P vs GHM);
//! 2. stateful HMM vs stateless per-cluster median midstream;
//! 3. HMM state count;
//! 4. per-session calibration on/off;
//! 5. Gaussian vs log-normal emissions;
//! 6. MPC horizon.
//!
//! Each prints its comparison once; Criterion times the headline variant.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_bench::materials;
use cs2p_core::{Cs2pPredictor, ThroughputPredictor};
use cs2p_eval::runner::{midstream_errors, per_session_medians};
use cs2p_ml::hmm::{train, TrainConfig};
use cs2p_ml::stats;
use std::hint::black_box;

fn median_err<'a, F>(m: &'a cs2p_eval::Materials, indices: &[usize], factory: F) -> f64
where
    F: FnMut(&'a cs2p_core::Session) -> Box<dyn ThroughputPredictor + 'a>,
{
    let per_session = midstream_errors(&m.test, indices, factory);
    stats::median(&per_session_medians(&per_session)).unwrap_or(f64::NAN)
}

fn ablation_clustering_and_calibration(c: &mut Criterion) {
    let m = materials();
    let indices = m.long_test_sessions(5);
    let engine = &m.engine;

    let cs2p = median_err(m, &indices, |s| Box::new(engine.predictor(&s.features)));
    let uncal = median_err(m, &indices, |s| {
        Box::new(Cs2pPredictor::without_calibration(
            engine.lookup(&s.features),
        ))
    });
    let ghm = median_err(m, &indices, |_| Box::new(engine.global_predictor()));
    let median_only = median_err(m, &indices, |s| {
        Box::new(MedianOnly {
            value: engine.lookup(&s.features).initial_median,
        })
    });
    println!("[ablation] midstream median error:");
    println!("  CS2P (clustered, calibrated)    {cs2p:.4}");
    println!("  CS2P w/o calibration            {uncal:.4}");
    println!("  GHM (no clustering)             {ghm:.4}");
    println!("  cluster median only (stateless) {median_only:.4}");

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("midstream_eval_cs2p", |b| {
        b.iter(|| {
            black_box(median_err(m, &indices, |s| {
                Box::new(engine.predictor(&s.features))
            }))
        })
    });
    g.finish();
}

/// Stateless ablation: always predict the cluster's median.
struct MedianOnly {
    value: f64,
}

impl ThroughputPredictor for MedianOnly {
    fn name(&self) -> &str {
        "cluster-median"
    }
    fn predict_initial(&mut self) -> Option<f64> {
        Some(self.value)
    }
    fn predict_ahead(&mut self, _k: usize) -> Option<f64> {
        Some(self.value)
    }
    fn observe(&mut self, _w: f64) {}
    fn reset(&mut self) {}
}

fn ablation_state_count_and_emissions(c: &mut Criterion) {
    let m = materials();
    let sequences: Vec<Vec<f64>> = m
        .train
        .sessions()
        .iter()
        .filter(|s| s.n_epochs() >= 8)
        .take(80)
        .map(|s| s.throughput.clone())
        .collect();
    let held_out: Vec<&Vec<f64>> = m
        .test
        .sessions()
        .iter()
        .filter(|s| s.n_epochs() >= 8)
        .take(60)
        .map(|s| &s.throughput)
        .collect();

    println!("[ablation] held-out one-step error by state count (Gaussian):");
    for n in [2usize, 4, 6, 8] {
        let cfg = TrainConfig {
            n_states: n,
            max_iters: 15,
            ..Default::default()
        };
        if let Some((hmm, _)) = train(&sequences, &cfg) {
            let err = cs2p_ml::hmm::one_step_error(&hmm, &held_out).unwrap_or(f64::NAN);
            println!("  N={n}: {err:.4}");
        }
    }

    println!("[ablation] emission family at N=5:");
    for family in [
        cs2p_ml::hmm::EmissionFamily::Gaussian,
        cs2p_ml::hmm::EmissionFamily::LogNormal,
    ] {
        let cfg = TrainConfig {
            n_states: 5,
            max_iters: 15,
            family,
            ..Default::default()
        };
        if let Some((hmm, _)) = train(&sequences, &cfg) {
            let err = cs2p_ml::hmm::one_step_error(&hmm, &held_out).unwrap_or(f64::NAN);
            println!("  {family:?}: {err:.4}");
        }
    }

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("train_hmm_5_states", |b| {
        let cfg = TrainConfig {
            n_states: 5,
            max_iters: 15,
            ..Default::default()
        };
        b.iter(|| black_box(train(&sequences, &cfg)))
    });
    g.finish();
}

fn ablation_mpc_horizon(c: &mut Criterion) {
    use cs2p_abr::{simulate, Mpc, MpcConfig, QoeParams, RobustMpc, SimConfig};
    let m = materials();
    let qoe = QoeParams {
        mu_startup: 0.0,
        ..Default::default()
    };
    let cfg = SimConfig {
        qoe,
        prediction_seeded_start: false,
        ..Default::default()
    };
    let mut indices = m.long_test_sessions(20);
    indices.truncate(25);

    println!("[ablation] mean QoE by MPC horizon (CS2P predictions):");
    for h in [1usize, 3, 5, 8] {
        let mut qoes = Vec::new();
        for &i in &indices {
            let s = m.test.get(i);
            let mut p = m.engine.predictor(&s.features);
            let mut mpc = Mpc::new(MpcConfig {
                horizon: h,
                ..Default::default()
            });
            let o = simulate(&s.throughput, 6.0, &mut p, &mut mpc, &cfg);
            qoes.push(o.qoe(&qoe));
        }
        println!("  h={h}: {:.0}", stats::mean(&qoes).unwrap());
    }

    // MPC vs RobustMPC under the same predictions (the authors' own
    // robustness companion, as the extension algorithm).
    let mut plain = Vec::new();
    let mut robust = Vec::new();
    for &i in &indices {
        let s = m.test.get(i);
        let mut p = m.engine.predictor(&s.features);
        let mut mpc = Mpc::default();
        plain.push(simulate(&s.throughput, 6.0, &mut p, &mut mpc, &cfg).qoe(&qoe));
        let mut p = m.engine.predictor(&s.features);
        let mut rmpc = RobustMpc::default();
        robust.push(simulate(&s.throughput, 6.0, &mut p, &mut rmpc, &cfg).qoe(&qoe));
    }
    println!(
        "[ablation] CS2P+MPC mean QoE {:.0} vs CS2P+RobustMPC {:.0}",
        stats::mean(&plain).unwrap(),
        stats::mean(&robust).unwrap()
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("simulate_session_mpc_h5", |b| {
        let s = m.test.get(indices[0]);
        b.iter(|| {
            let mut p = m.engine.predictor(&s.features);
            let mut mpc = Mpc::default();
            black_box(simulate(&s.throughput, 6.0, &mut p, &mut mpc, &cfg))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_clustering_and_calibration,
    ablation_state_count_and_emissions,
    ablation_mpc_horizon
);
criterion_main!(ablations);
