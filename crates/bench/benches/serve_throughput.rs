//! Serving throughput: the sharded worker-pool server vs the legacy
//! thread-per-connection server it replaced.
//!
//! Drives both with the testkit's deterministic closed-loop load
//! generator at 1, 8, and 64 concurrent clients, then prints a headline
//! requests/second table and runs an overload scenario (1 worker, 1-deep
//! queue, 16 clients) that must shed load with 503s — never panic,
//! deadlock, or drop a request unaccounted.
//!
//! The ≥3× speedup target from the serving-layer redesign applies to an
//! 8-core host; this bench reports whatever the current machine gives
//! and asserts nothing about the ratio, so it stays meaningful on the
//! 1-core CI box.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_net::{serve_legacy, serve_with, ServeConfig};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::net::SocketAddr;
use std::time::Instant;

const CLIENT_COUNTS: [usize; 3] = [1, 8, 64];

fn workload(n_clients: usize) -> LoadConfig {
    LoadConfig {
        n_clients,
        // One session per client keeps per-connection request streams
        // independent; 4 epochs exercises the keep-alive path.
        n_sessions: n_clients.max(4),
        epochs_per_session: 4,
        horizon: 2,
        seed: 97,
        max_gap_us: 0,
        session_id_base: 50_000,
        trace_seed: None,
        batch: None,
    }
}

fn sharded_config() -> ServeConfig {
    ServeConfig {
        n_workers: 8,
        n_shards: 8,
        queue_depth: 1024,
        max_connections: 4096,
        ..ServeConfig::default()
    }
}

fn run_and_check(addr: SocketAddr, config: &LoadConfig) {
    let report = run_load(addr, config);
    assert_eq!(
        report.ok,
        config.total_requests(),
        "bench workload must not shed load (rejected {}, errors {})",
        report.rejected,
        report.errors
    );
}

fn serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve-throughput");
    group.sample_size(10);

    for &n_clients in &CLIENT_COUNTS {
        let config = workload(n_clients);

        let legacy = serve_legacy(tiny_engine(), "127.0.0.1:0").unwrap();
        group.bench_function(&format!("legacy/{n_clients}"), |b| {
            b.iter(|| run_and_check(legacy.addr(), &config))
        });
        legacy.shutdown();

        let sharded = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
        group.bench_function(&format!("sharded/{n_clients}"), |b| {
            b.iter(|| run_and_check(sharded.addr(), &config))
        });
        sharded.shutdown();
    }
    group.finish();

    headline_table();
    overload_scenario();
}

/// One-shot rps comparison, printed for DESIGN.md / eval cross-checks.
fn headline_table() {
    println!("[serve-throughput] closed-loop requests/second (one-shot):");
    println!("  clients      legacy     sharded       ratio");
    for &n_clients in &CLIENT_COUNTS {
        let config = workload(n_clients);
        let legacy = serve_legacy(tiny_engine(), "127.0.0.1:0").unwrap();
        let legacy_rps = measure_rps(legacy.addr(), &config);
        legacy.shutdown();
        let sharded = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
        let sharded_rps = measure_rps(sharded.addr(), &config);
        sharded.shutdown();
        println!(
            "  {:>7} {:>11.0} {:>11.0} {:>10.2}x",
            n_clients,
            legacy_rps,
            sharded_rps,
            sharded_rps / legacy_rps
        );
    }
}

fn measure_rps(addr: SocketAddr, config: &LoadConfig) -> f64 {
    // Warm up connections and session state once.
    run_and_check(addr, config);
    let start = Instant::now();
    run_and_check(addr, config);
    config.total_requests() as f64 / start.elapsed().as_secs_f64()
}

/// Overload must degrade with 503s, never a panic, deadlock, or silent
/// drop — the bench doubles as a smoke test for the backpressure path.
fn overload_scenario() {
    let server = serve_with(
        tiny_engine(),
        "127.0.0.1:0",
        ServeConfig {
            n_workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = run_load(server.addr(), &workload(16));
    assert_eq!(
        report.ok + report.rejected + report.reinit + report.errors,
        report.sent
    );
    assert!(report.ok > 0, "overloaded server made no progress");
    let stats = server.shutdown();
    println!(
        "[serve-throughput] overload: {} ok, {} rejected (503), {} errors; server rejected {}",
        report.ok, report.rejected, report.errors, stats.rejected
    );
}

criterion_group!(serve_throughput_group, serve_throughput);
criterion_main!(serve_throughput_group);
