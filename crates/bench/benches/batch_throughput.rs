//! Batched prediction serving: `/predict_batch` frames vs singleton
//! `/predict` POSTs over the identical workload and worker pool.
//!
//! The batch path exists to amortize — one HTTP round trip, one request
//! frame, and one shard-lock acquisition per *group* instead of per
//! entry. This bench drives the same seeded entry stream (sessions ×
//! epochs) in both modes through the testkit load generator and prints a
//! headline entries/second table.
//!
//! The headline assertion: at batch size 64 the batched mode must clear
//! at least 2× the singleton entries/second on the same sharded pool.
//! Unlike the worker-scaling target of `serve_throughput`, this ratio
//! comes from round-trip amortization, not parallelism, so it holds on
//! the 1-core CI box too.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_net::{serve_with, ServeConfig};
use cs2p_testkit::loadgen::{run_load, BatchSpec, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::net::SocketAddr;
use std::time::Instant;

const BATCH_SIZES: [usize; 3] = [1, 7, 64];

/// Each client walks 64 sessions through 4 epochs: 256 entries per
/// client, enough for batch-64 frames to fill completely.
fn workload(n_clients: usize, batch: Option<usize>) -> LoadConfig {
    LoadConfig {
        n_clients,
        n_sessions: n_clients * 64,
        epochs_per_session: 4,
        horizon: 2,
        seed: 211,
        max_gap_us: 0,
        session_id_base: 70_000,
        trace_seed: None,
        batch: batch.map(BatchSpec::fixed),
    }
}

fn sharded_config() -> ServeConfig {
    ServeConfig {
        n_workers: 8,
        n_shards: 8,
        queue_depth: 1024,
        max_connections: 4096,
        max_sessions: 1 << 20,
        session_ttl_requests: None,
        ..ServeConfig::default()
    }
}

fn run_and_check(addr: SocketAddr, config: &LoadConfig) {
    let report = run_load(addr, config);
    assert_eq!(
        report.ok,
        config.total_requests(),
        "bench workload must not shed load (rejected {}, errors {})",
        report.rejected,
        report.errors
    );
}

fn measure_eps(addr: SocketAddr, config: &LoadConfig) -> f64 {
    // Warm up connections and session state once.
    run_and_check(addr, config);
    let start = Instant::now();
    run_and_check(addr, config);
    config.total_requests() as f64 / start.elapsed().as_secs_f64()
}

fn batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch-throughput");
    group.sample_size(10);

    for &batch in &BATCH_SIZES {
        let config = workload(2, (batch > 1).then_some(batch));
        let server = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
        group.bench_function(&format!("batch/{batch}"), |b| {
            b.iter(|| run_and_check(server.addr(), &config))
        });
        server.shutdown();
    }
    group.finish();

    headline_table();
}

/// One-shot entries/second per (clients, batch size), printed for
/// DESIGN.md / eval cross-checks, with the ≥2× amortization assertion
/// at batch 64.
fn headline_table() {
    println!("[batch-throughput] closed-loop predict entries/second (one-shot):");
    println!("  clients   singleton     batch-7    batch-64   64/1 ratio");
    for &n_clients in &[1usize, 4] {
        let mut eps = Vec::new();
        for &batch in &BATCH_SIZES {
            let config = workload(n_clients, (batch > 1).then_some(batch));
            let server = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
            eps.push(measure_eps(server.addr(), &config));
            server.shutdown();
        }
        let ratio = eps[2] / eps[0];
        println!(
            "  {:>7} {:>11.0} {:>11.0} {:>11.0} {:>11.2}x",
            n_clients, eps[0], eps[1], eps[2], ratio
        );
        assert!(
            ratio >= 2.0,
            "batch-64 must amortize to >=2x singleton entries/second, got {ratio:.2}x \
             ({:.0} vs {:.0} eps at {n_clients} clients)",
            eps[2],
            eps[0]
        );
    }
}

criterion_group!(batch_throughput_group, batch_throughput);
criterion_main!(batch_throughput_group);
