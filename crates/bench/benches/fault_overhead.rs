//! Fault-injection hook overhead: the `transport_wrapper` seam in
//! `ServeConfig` must be free when unset and cheap when set.
//!
//! Three cases over the same deterministic closed-loop workload:
//!
//! - `plain`: no wrapper installed — the production default, where every
//!   socket read/write dispatches straight on `TcpStream`.
//! - `passthrough`: an empty `FaultPlan` installed server-side. Every
//!   connection takes the `dyn`-dispatch path but no fault ever fires,
//!   isolating the cost of the wrapper seam itself.
//! - `chaos`: the `run_chaos` harness with its default fault mix, as a
//!   one-shot print only — recovery latency is workload-dependent and
//!   belongs in `cs2p-eval chaos-bench`, not a criterion assertion.
//!
//! Nothing here asserts a ratio; the point is a number to watch so the
//! seam never silently grows a hot-path cost.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_net::{serve_with, ServeConfig};
use cs2p_testkit::faults::{run_chaos, ChaosConfig, FaultPlan};
use cs2p_testkit::loadgen::{run_load, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

fn workload() -> LoadConfig {
    LoadConfig {
        n_clients: 4,
        n_sessions: 8,
        epochs_per_session: 4,
        horizon: 2,
        seed: 131,
        max_gap_us: 0,
        session_id_base: 60_000,
        trace_seed: None,
        batch: None,
    }
}

fn server_config() -> ServeConfig {
    ServeConfig {
        n_workers: 4,
        n_shards: 4,
        queue_depth: 1024,
        ..ServeConfig::default()
    }
}

fn run_and_check(addr: SocketAddr, config: &LoadConfig) {
    let report = run_load(addr, config);
    assert_eq!(
        report.ok,
        config.total_requests(),
        "overhead workload must not shed load (rejected {}, errors {})",
        report.rejected,
        report.errors
    );
}

fn fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault-overhead");
    group.sample_size(10);
    let config = workload();

    let plain = serve_with(tiny_engine(), "127.0.0.1:0", server_config()).unwrap();
    group.bench_function("plain", |b| b.iter(|| run_and_check(plain.addr(), &config)));
    plain.shutdown();

    let wrapped_config = ServeConfig {
        transport_wrapper: Some(Arc::new(FaultPlan::new())),
        ..server_config()
    };
    let wrapped = serve_with(tiny_engine(), "127.0.0.1:0", wrapped_config).unwrap();
    group.bench_function("passthrough", |b| {
        b.iter(|| run_and_check(wrapped.addr(), &config))
    });
    wrapped.shutdown();

    group.finish();

    headline_table();
}

/// One-shot print: plain vs passthrough rps side by side, plus a chaos
/// run so regressions in recovery cost show up in bench logs.
fn headline_table() {
    println!("[fault-overhead] closed-loop requests/second (one-shot):");
    let config = workload();

    let plain = serve_with(tiny_engine(), "127.0.0.1:0", server_config()).unwrap();
    let plain_rps = measure_rps(plain.addr(), &config);
    plain.shutdown();

    let wrapped_config = ServeConfig {
        transport_wrapper: Some(Arc::new(FaultPlan::new())),
        ..server_config()
    };
    let wrapped = serve_with(tiny_engine(), "127.0.0.1:0", wrapped_config).unwrap();
    let wrapped_rps = measure_rps(wrapped.addr(), &config);
    wrapped.shutdown();

    println!(
        "  plain {plain_rps:>11.0}   passthrough {wrapped_rps:>11.0}   ratio {:>6.3}x",
        wrapped_rps / plain_rps
    );

    // Short reaping window, as in chaos_soak: truncated frames are only
    // detected when the read times out, and the production 10 s default
    // would dominate the elapsed number.
    let chaos_config = ServeConfig {
        read_timeout: std::time::Duration::from_millis(150),
        ..server_config()
    };
    let chaos_server = serve_with(tiny_engine(), "127.0.0.1:0", chaos_config).unwrap();
    let start = Instant::now();
    let report = run_chaos(
        &chaos_server,
        &ChaosConfig {
            load: config,
            ..ChaosConfig::default()
        },
    );
    let elapsed = start.elapsed().as_secs_f64();
    chaos_server.shutdown();
    assert_eq!(
        report.gave_up, 0,
        "chaos workload must recover every request"
    );
    println!(
        "  chaos: {} faults fired, {} evictions replayed, workload in {:.1} ms",
        report.fired.error_class_total() + report.fired.survivable_total(),
        report.forced_evictions,
        elapsed * 1e3
    );
}

fn measure_rps(addr: SocketAddr, config: &LoadConfig) -> f64 {
    run_and_check(addr, config);
    let start = Instant::now();
    run_and_check(addr, config);
    config.total_requests() as f64 / start.elapsed().as_secs_f64()
}

criterion_group!(fault_overhead_group, fault_overhead);
criterion_main!(fault_overhead_group);
