//! Durability overhead: the WAL-enabled server vs the in-memory server
//! over the identical batched workload, plus recovery latency.
//!
//! The durable server group-commits framed binary records (no fsync —
//! the bench isolates the encode/frame/append cost, not the disk), with
//! load-triggered compaction off so every iteration does the same work.
//! The headline table mirrors `cs2p-eval persist-bench`, which owns the
//! strict ≥0.8× CI gate; here the assertion is a looser smoke floor so
//! criterion runs on noisy boxes don't flake.
//!
//! The recovery benchmark replays a directory populated by a real
//! durable run (snapshot + WAL segments) through `persist::recover` —
//! the cold-start path `ServerHandle::open_or_recover` takes before it
//! can serve its first request.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_net::{serve_with, PersistConfig, ServeConfig, ServerHandle};
use cs2p_testkit::crash::TempDir;
use cs2p_testkit::loadgen::{run_load, BatchSpec, LoadConfig};
use cs2p_testkit::scenarios::tiny_engine;
use std::net::SocketAddr;
use std::time::Instant;

/// Each client walks 64 sessions through 4 epochs in batch-64 frames —
/// the amortized regime the 0.8× serving gate is defined over.
fn workload(n_clients: usize) -> LoadConfig {
    LoadConfig {
        n_clients,
        n_sessions: n_clients * 64,
        epochs_per_session: 4,
        horizon: 2,
        seed: 433,
        max_gap_us: 0,
        session_id_base: 80_000,
        trace_seed: None,
        batch: Some(BatchSpec::fixed(64)),
    }
}

fn sharded_config() -> ServeConfig {
    ServeConfig {
        n_workers: 8,
        n_shards: 8,
        queue_depth: 1024,
        max_connections: 4096,
        max_sessions: 1 << 20,
        session_ttl_requests: None,
        ..ServeConfig::default()
    }
}

/// Group commit every 64 records, no fsync, no load-triggered
/// compaction: the same cadence `cs2p-eval persist-bench` gates on.
fn durable_config() -> PersistConfig {
    PersistConfig {
        commit_every_records: 64,
        snapshot_every_records: 0,
        fsync_data: false,
        ..PersistConfig::default()
    }
}

fn run_and_check(addr: SocketAddr, config: &LoadConfig) {
    let report = run_load(addr, config);
    assert_eq!(
        report.ok, report.sent,
        "bench workload must not shed load (rejected {}, errors {})",
        report.rejected, report.errors
    );
}

fn measure_eps(addr: SocketAddr, config: &LoadConfig) -> f64 {
    run_and_check(addr, config); // warm connections and session state
    let start = Instant::now();
    run_and_check(addr, config);
    config.total_requests() as f64 / start.elapsed().as_secs_f64()
}

fn persist_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist-overhead");
    group.sample_size(10);

    let config = workload(2);
    let inmem = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
    group.bench_function("in-memory/batch-64", |b| {
        b.iter(|| run_and_check(inmem.addr(), &config))
    });
    inmem.shutdown();

    let dir = TempDir::new("persist-overhead");
    let durable = ServerHandle::open_or_recover(
        dir.path(),
        tiny_engine(),
        "127.0.0.1:0",
        sharded_config(),
        durable_config(),
    )
    .unwrap();
    group.bench_function("durable/batch-64", |b| {
        b.iter(|| run_and_check(durable.addr(), &config))
    });
    let wal = durable.persist_stats().expect("durable server has a WAL");
    durable.shutdown();
    assert!(!wal.dead, "bench WAL died: {wal:?}");
    group.finish();

    headline_table();
    recovery_latency();
}

/// One-shot entries/second, in-memory vs durable, printed for DESIGN.md
/// cross-checks. The smoke floor is deliberately looser than the 0.8×
/// CI gate in `cs2p-eval persist-bench` (criterion boxes are noisy).
fn headline_table() {
    println!("[persist-overhead] closed-loop batch-64 entries/second (one-shot):");
    println!("  clients      in-mem     durable       ratio");
    for &n_clients in &[1usize, 4] {
        let config = workload(n_clients);
        let inmem = serve_with(tiny_engine(), "127.0.0.1:0", sharded_config()).unwrap();
        let inmem_eps = measure_eps(inmem.addr(), &config);
        inmem.shutdown();

        let dir = TempDir::new("persist-overhead");
        let durable = ServerHandle::open_or_recover(
            dir.path(),
            tiny_engine(),
            "127.0.0.1:0",
            sharded_config(),
            durable_config(),
        )
        .unwrap();
        let durable_eps = measure_eps(durable.addr(), &config);
        durable.shutdown();

        let ratio = durable_eps / inmem_eps;
        println!(
            "  {:>7} {:>11.0} {:>11.0} {:>10.2}x",
            n_clients, inmem_eps, durable_eps, ratio
        );
        assert!(
            ratio >= 0.5,
            "durable serving collapsed to {ratio:.2}x in-memory at {n_clients} clients \
             ({durable_eps:.0} vs {inmem_eps:.0} eps)"
        );
    }
}

/// Recovery latency: populate a directory with a real durable run, then
/// time `persist::recover` — snapshot read + WAL replay — over it.
fn recovery_latency() {
    let dir = TempDir::new("persist-recover");
    let server = ServerHandle::open_or_recover(
        dir.path(),
        tiny_engine(),
        "127.0.0.1:0",
        sharded_config(),
        durable_config(),
    )
    .unwrap();
    let config = workload(4);
    run_and_check(server.addr(), &config);
    server.shutdown();

    let rounds = 20;
    let start = Instant::now();
    let mut sessions = 0;
    for _ in 0..rounds {
        let state = cs2p_net::persist::recover(dir.path(), 32).expect("recover populated dir");
        sessions = state.sessions.len();
    }
    let mean_ms = start.elapsed().as_secs_f64() * 1000.0 / rounds as f64;
    println!(
        "[persist-overhead] recover() of {sessions} sessions: {mean_ms:.2} ms mean over {rounds} rounds"
    );
    assert!(sessions > 0, "recovery found no sessions");
}

criterion_group!(persist_overhead_group, persist_overhead);
criterion_main!(persist_overhead_group);
