//! Regenerates every figure/table of the paper's dataset analysis and
//! prediction evaluation (Table 2, Figures 3–6, 8, 9a–c, the FCC result)
//! and reports how long each regeneration takes.
//!
//! Each bench prints its headline numbers once, so `cargo bench` output
//! doubles as a compact reproduction report.

use criterion::{criterion_group, criterion_main, Criterion};
use cs2p_bench::materials;
use cs2p_eval::experiments::{dataset_figs, prediction};
use std::hint::black_box;

fn bench_dataset_figs(c: &mut Criterion) {
    let m = materials();

    let r = dataset_figs::dataset_report(m);
    println!(
        "[table2/fig3] {} sessions, median duration {:.0}s, median epoch {:.2} Mbps",
        r.stats.n_sessions,
        r.stats.median_duration(),
        r.stats.median_throughput()
    );
    c.bench_function("table2_fig3_dataset_report", |b| {
        b.iter(|| black_box(dataset_figs::dataset_report(m)))
    });

    let r = dataset_figs::obs1(m);
    println!(
        "[obs1] CoV>=30%: {:.1}%, CoV>=50%: {:.1}%",
        r.cov_ge_30 * 100.0,
        r.cov_ge_50 * 100.0
    );
    let mut g = c.benchmark_group("dataset_analysis");
    g.sample_size(10);
    g.bench_function("obs1_variability", |b| {
        b.iter(|| black_box(dataset_figs::obs1(m)))
    });

    let r = dataset_figs::fig4(m);
    println!(
        "[fig4] example trace {} epochs, lag-1 autocorr {:.3}, {} scatter points",
        r.example_trace.len(),
        r.example_lag1_autocorr,
        r.scatter.len()
    );
    g.bench_function("fig4_stateful_behaviour", |b| {
        b.iter(|| black_box(dataset_figs::fig4(m)))
    });

    let r = dataset_figs::fig5(m);
    println!(
        "[fig5] cluster initial-throughput medians: {:?}",
        r.cdfs
            .iter()
            .map(|cdf| (cdf.median() * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    g.bench_function("fig5_cluster_cdfs", |b| {
        b.iter(|| black_box(dataset_figs::fig5(m)))
    });

    let r = dataset_figs::fig6(m);
    let (triple, best_single) = r.triple_vs_best_single();
    println!("[fig6] triple stddev {triple:.3} vs best single-feature {best_single:.3}");
    g.bench_function("fig6_feature_combinations", |b| {
        b.iter(|| black_box(dataset_figs::fig6(m)))
    });
    g.finish();
}

fn bench_prediction_figs(c: &mut Criterion) {
    let m = materials();

    let r = prediction::fig8(m);
    println!(
        "[fig8] {} states over cluster {}",
        r.states.len(),
        r.cluster
    );
    c.bench_function("fig8_example_hmm", |b| {
        b.iter(|| black_box(prediction::fig8(m)))
    });

    let r = prediction::fig9a(m);
    println!(
        "[fig9a] initial error medians: CS2P {:.3} vs LM-client {:.3} / LM-server {:.3}",
        r.median_of("CS2P").unwrap_or(f64::NAN),
        r.median_of("LM-client").unwrap_or(f64::NAN),
        r.median_of("LM-server").unwrap_or(f64::NAN)
    );
    let mut g = c.benchmark_group("slow_figures");
    g.sample_size(10);
    g.bench_function("fig9a_initial_error_cdf", |b| {
        b.iter(|| black_box(prediction::fig9a(m)))
    });

    let r = prediction::fig9b(m);
    println!(
        "[fig9b] midstream error medians: CS2P {:.3}, LS {:.3}, HM {:.3}, AR {:.3}, GHM {:.3} (improvement {:.1}%)",
        r.median_of("CS2P").unwrap_or(f64::NAN),
        r.median_of("LS").unwrap_or(f64::NAN),
        r.median_of("HM").unwrap_or(f64::NAN),
        r.median_of("AR").unwrap_or(f64::NAN),
        r.median_of("GHM").unwrap_or(f64::NAN),
        r.cs2p_median_improvement().unwrap_or(f64::NAN) * 100.0
    );
    g.bench_function("fig9b_midstream_error_cdf", |b| {
        b.iter(|| black_box(prediction::fig9b(m)))
    });

    let r = prediction::fig9c(m, 10);
    println!(
        "[fig9c] CS2P error at horizons 1/5/10: {:.3}/{:.3}/{:.3}",
        r.series_of("CS2P").map(|s| s[0]).unwrap_or(f64::NAN),
        r.series_of("CS2P").map(|s| s[4]).unwrap_or(f64::NAN),
        r.series_of("CS2P").map(|s| s[9]).unwrap_or(f64::NAN)
    );
    g.bench_function("fig9c_lookahead_horizon", |b| {
        b.iter(|| black_box(prediction::fig9c(m, 10)))
    });

    let r = prediction::fcc(m, 2_000);
    println!(
        "[fcc] initial error: FCC {:.3} vs iQiyi-like {:.3}",
        r.fcc_median_error, r.iqiyi_median_error
    );
    g.bench_function("fcc_rich_features", |b| {
        b.iter(|| black_box(prediction::fcc(m, 2_000)))
    });
    g.finish();
}

criterion_group!(figures, bench_dataset_figs, bench_prediction_figs);
criterion_main!(figures);
