//! Shared setup for the benchmark harness: one lazily-prepared set of
//! materials reused by every bench target, so Criterion timings measure
//! the experiments rather than dataset generation.

use cs2p_eval::{EvalConfig, Materials};
use std::sync::OnceLock;

/// Materials at the bench scale (smaller than the default experiment
/// scale so a full `cargo bench` stays in minutes).
pub fn materials() -> &'static Materials {
    static CELL: OnceLock<Materials> = OnceLock::new();
    CELL.get_or_init(|| Materials::prepare(EvalConfig::small()))
}
