//! Integration tests spanning the whole workspace: data generation →
//! training → prediction → adaptation → deployment.
//!
//! All scenario setup comes from `cs2p-testkit`; `TrainedScenario::e2e()`
//! is the canonical 2 000-session synthetic world with a day-based
//! train/test split.

use cs2p::abr::{simulate, Mpc, QoeParams, SimConfig};
use cs2p::core::{abs_normalized_error, ClientModel, ThroughputPredictor};
use cs2p::ml::stats;
use cs2p::net::{play_remote_session, serve, DashPlayer, Manifest, PlayerConfig};
use cs2p_testkit::{invariants, TrainedScenario};

#[test]
fn trained_engine_beats_last_sample_on_held_out_day() {
    let sc = TrainedScenario::e2e();
    let mut cs2p_errs = Vec::new();
    let mut ls_errs = Vec::new();
    for s in sc
        .test
        .sessions()
        .iter()
        .filter(|s| s.n_epochs() >= 8)
        .take(300)
    {
        let mut p = sc.engine.predictor(&s.features);
        let mut last = s.throughput[0];
        p.observe(last);
        let mut pe = Vec::new();
        let mut le = Vec::new();
        for t in 1..s.n_epochs() {
            let actual = s.throughput[t];
            pe.push(abs_normalized_error(p.predict_next().unwrap(), actual));
            le.push(abs_normalized_error(last, actual));
            p.observe(actual);
            last = actual;
        }
        cs2p_errs.push(stats::median(&pe).unwrap());
        ls_errs.push(stats::median(&le).unwrap());
    }
    let cs2p = stats::median(&cs2p_errs).unwrap();
    let ls = stats::median(&ls_errs).unwrap();
    assert!(
        cs2p < ls,
        "CS2P median error {cs2p:.4} should beat last-sample {ls:.4}"
    );
}

#[test]
fn model_bundle_survives_disk_and_reproduces_predictions() {
    let sc = TrainedScenario::e2e();
    invariants::assert_bundle_roundtrip(&sc.engine, &sc.test, 20, 5);
}

#[test]
fn client_model_fits_the_papers_size_budget() {
    let sc = TrainedScenario::e2e();
    for s in sc.test.sessions().iter().take(50) {
        let cm = ClientModel::for_client(&sc.engine, &s.features);
        assert!(
            cm.wire_size() < 5 * 1024,
            "client model {} bytes for features {:?}",
            cm.wire_size(),
            s.features.0
        );
    }
}

#[test]
fn cs2p_mpc_plays_video_without_heavy_stalls_on_adequate_links() {
    let sc = TrainedScenario::e2e();
    let cfg = SimConfig {
        prediction_seeded_start: false,
        ..Default::default()
    };
    let qoe = QoeParams::default();
    let mut good_ratios = Vec::new();
    for s in sc.test.sessions().iter() {
        if s.n_epochs() < 30 {
            continue;
        }
        let median = stats::median(&s.throughput).unwrap();
        if median < 1.5 {
            continue; // link can't sustain much of the ladder anyway
        }
        let mut p = sc.engine.predictor(&s.features);
        let mut mpc = Mpc::default();
        let outcome = simulate(&s.throughput, 6.0, &mut p, &mut mpc, &cfg);
        assert!(outcome.qoe(&qoe).is_finite());
        good_ratios.push(outcome.good_ratio());
        if good_ratios.len() >= 25 {
            break;
        }
    }
    assert!(
        good_ratios.len() >= 10,
        "too few adequate sessions in test split"
    );
    // Aggregate quality: mostly stall-free playback (individual sessions
    // may still hit midstream collapses no online algorithm survives).
    let mean_good = stats::mean(&good_ratios).unwrap();
    assert!(mean_good > 0.85, "mean good ratio {mean_good}");
    let bad = good_ratios.iter().filter(|&&g| g < 0.7).count();
    assert!(
        bad * 5 <= good_ratios.len(),
        "{bad}/{} sessions below 0.7 good ratio",
        good_ratios.len()
    );
}

#[test]
fn full_deployment_loop_over_real_sockets() {
    let sc = TrainedScenario::e2e();
    let server = serve(sc.engine.clone(), "127.0.0.1:0").expect("server start");
    let player = DashPlayer::new(
        Manifest::envivio(),
        PlayerConfig {
            prediction_seeded_start: false,
            ..Default::default()
        },
    );

    let mut n = 0;
    for s in sc
        .test
        .sessions()
        .iter()
        .filter(|s| s.n_epochs() >= 30)
        .take(5)
    {
        let log = play_remote_session(
            server.addr(),
            &player,
            &s.throughput,
            6.0,
            s.id,
            s.features.0.clone(),
        )
        .expect("remote session");
        assert_eq!(log.bitrates_kbps.len(), 43);
        assert!(log.qoe.is_finite());
        n += 1;
    }
    assert_eq!(server.logs().len(), n);
    // Each chunk costs at most ~2 HTTP round trips (register + predicts).
    assert!(server.predictions_served() >= (n * 43) as u64);
    server.shutdown();
}

#[test]
fn determinism_across_full_pipeline() {
    let run = || {
        let sc = TrainedScenario::small();
        let s = sc.test.get(0);
        let mut p = sc.engine.predictor(&s.features);
        let mut preds = vec![p.predict_initial().unwrap()];
        for &w in s.throughput.iter().take(10) {
            p.observe(w);
            preds.push(p.predict_next().unwrap());
        }
        preds
    };
    assert_eq!(run(), run());
}
