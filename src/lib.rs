//! # CS2P — Cross Session Stateful Predictor
//!
//! A full reproduction of *CS2P: Improving Video Bitrate Selection and
//! Adaptation with Data-Driven Throughput Prediction* (Sun, Yin, Jiang,
//! Sekar, Lin, Wang, Liu, Sinopoli — SIGCOMM 2016), as a Rust workspace.
//!
//! This facade crate re-exports every sub-crate so downstream users can
//! depend on `cs2p` alone:
//!
//! - [`ml`] — HMM/EM, CART, GBRT, SVR, AR, statistics (the ML substrate);
//! - [`core`] — session clustering, the Prediction Engine, Algorithm 1,
//!   every baseline predictor;
//! - [`trace`] — the synthetic ground-truth world and dataset generators;
//! - [`abr`] — the QoE model, playback simulator, ABR algorithms
//!   (BB/RB/FESTIVE/MPC), offline-optimal DP;
//! - [`net`] — the prediction server, HTTP client, and DASH player;
//! - [`obs`] — structured tracing, metrics, and profiling hooks
//!   (see `OBSERVABILITY.md`);
//! - [`eval`] — one experiment driver per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use cs2p::core::{EngineConfig, PredictionEngine, ThroughputPredictor};
//! use cs2p::trace::{generate, SynthConfig};
//!
//! // Generate a synthetic dataset over the ground-truth world.
//! let (dataset, _world) = generate(&SynthConfig {
//!     n_sessions: 800,
//!     ..Default::default()
//! });
//! let (train, test) = dataset.split_at_day(1);
//!
//! // Offline stage: cluster sessions and train per-cluster HMMs.
//! let mut config = EngineConfig::default();
//! config.cluster.min_cluster_size = 10;
//! config.hmm.n_states = 3;
//! config.hmm.max_iters = 10;
//! let (engine, _summary) = PredictionEngine::train(&train, &config).unwrap();
//!
//! // Online stage (Algorithm 1): initial + midstream prediction.
//! let session = test.get(0);
//! let mut predictor = engine.predictor(&session.features);
//! let initial = predictor.predict_initial().unwrap();
//! assert!(initial > 0.0);
//! for &w in &session.throughput {
//!     predictor.observe(w);
//!     let next = predictor.predict_next().unwrap();
//!     assert!(next > 0.0);
//! }
//! ```

pub use cs2p_abr as abr;
pub use cs2p_core as core;
pub use cs2p_eval as eval;
pub use cs2p_ml as ml;
pub use cs2p_net as net;
pub use cs2p_obs as obs;
pub use cs2p_trace as trace;
